#!/usr/bin/env python3
"""Build your own workload: define applications, mix them, compare policies.

Shows the full user-facing workflow on applications that do NOT ship with
the package: a synthetic key-value store (scattered reads, high bank
parallelism), a log writer (sequential, write heavy), and a compute kernel
(barely touches memory). This is the path a downstream user takes to ask
"would dynamic bank partitioning help *my* co-location?".

Run:  python examples/custom_workload.py
"""

from dataclasses import replace

from repro import (
    AppProfile,
    DynamicBankPartitioning,
    EqualBankPartitioning,
    Runner,
    SharedPolicy,
    generate_trace,
    summarize,
)
from repro.sim.system import System

HORIZON = 200_000

# Three custom applications, described only by their memory behaviour.
KV_STORE = AppProfile(
    name="kvstore",
    mpki=22.0,  # miss-heavy: random lookups over a big heap
    row_locality=0.15,  # almost no sequential runs
    streams=8,  # independent lookups in flight
    write_frac=0.10,
    footprint_mb=48,
    burst=8,  # high bank-level parallelism
)
LOG_WRITER = AppProfile(
    name="logwriter",
    mpki=18.0,  # streams appends through the cache
    row_locality=0.96,  # perfectly sequential
    streams=1,
    write_frac=0.7,
    footprint_mb=16,
    burst=3,
)
COMPUTE = AppProfile(
    name="compute",
    mpki=0.3,  # fits in cache
    row_locality=0.7,
    streams=2,
    write_frac=0.2,
    footprint_mb=2,
)

APPS = [KV_STORE, LOG_WRITER, COMPUTE, COMPUTE]
POLICIES = {
    "shared-frfcfs": SharedPolicy,
    "ebp": EqualBankPartitioning,
    "dbp": DynamicBankPartitioning,
}


def main() -> None:
    runner = Runner(horizon=HORIZON)
    config = replace(runner.config, num_cores=len(APPS))
    traces = [generate_trace(app, seed=7) for app in APPS]

    # Alone-run baselines for the slowdown metrics.
    alone = {}
    for index, app in enumerate(APPS):
        solo = System(
            replace(config, num_cores=1), [traces[index]], horizon=HORIZON
        )
        alone[index] = solo.run().threads[0].ipc
        print(f"{app.name:<10} alone IPC = {alone[index]:.3f}")

    print(f"\n{'policy':<14} {'WS':>7} {'MS':>7}   slowdowns")
    print("-" * 64)
    for name, policy_cls in POLICIES.items():
        system = System(config, traces, horizon=HORIZON, policy=policy_cls())
        result = system.run()
        shared = {t: result.threads[t].ipc for t in range(len(APPS))}
        metrics = summarize(alone, shared)
        downs = "  ".join(
            f"{APPS[t].name}={alone[t] / shared[t]:.2f}"
            for t in range(len(APPS))
        )
        print(
            f"{name:<14} {metrics.weighted_speedup:>7.3f} "
            f"{metrics.max_slowdown:>7.3f}   {downs}"
        )
    print(
        "\nWhat to look at: the kv-store needs many banks (burst=8), so the "
        "equal split\nhits it hardest — compare its slowdown under ebp vs "
        "dbp. The log writer is a\nstreamer (one hot row at a time), so DBP "
        "deliberately gives it few banks; the\ncompute kernels are pooled. "
        "Whether partitioning beats the unmanaged baseline\noverall depends "
        "on how much bank interference your co-location actually has —\n"
        "which is exactly the question this harness answers."
    )


if __name__ == "__main__":
    main()
