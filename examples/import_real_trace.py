#!/usr/bin/env python3
"""Import a real memory trace and run it against a synthetic app.

The repo's workloads are synthetic by default (SPEC traces are
proprietary), but the trace library accepts real dumps: ChampSim-style
``<instr-count> <address> <R|W>`` text, DRAMSim/Ramulator-style
``<address> <cycle> <op>`` text, or the library's own binary ``.rtrc``.
This example walks the whole escape hatch on the bundled sample capture:

1. import ``examples/data/sample_champsim.trace`` into a throwaway
   library directory,
2. characterize it alone (measured MPKI / row-buffer hit rate /
   bank-level parallelism) on the standard single-core FR-FCFS baseline,
3. run it head-to-head with synthetic ``lbm`` under equal (EBP) and
   dynamic (DBP) bank partitioning.

The same flow is one CLI line per step:

    repro-dbp traces import examples/data/sample_champsim.trace --name sample
    repro-dbp mix sample+lbm ebp dbp

Run:  python examples/import_real_trace.py
"""

import os
import tempfile

from repro.sim.runner import Runner
from repro.traces import TraceLibrary

HORIZON = 150_000
SAMPLE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "data", "sample_champsim.trace"
)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-trace-library-")
    library = TraceLibrary(os.path.join(workdir, "library"))

    # -- 1 + 2: parse, characterize alone, persist, register as an app ----
    entry = library.import_file(SAMPLE, name="sample", fmt="champsim")
    print(f"imported {SAMPLE}")
    print(f"  {entry.records} records / {entry.total_insts} instructions")
    print(f"  digest {entry.digest[:16]}…  (library: {library.root})")
    c = entry.characterization
    print(
        f"  measured alone: MPKI={c['mpki']:.2f} RBH={c['rbh']:.2f} "
        f"BLP={c['blp']:.2f} IPC={c['ipc_alone']:.3f}"
    )
    print(f"  class: {'intensive' if entry.intensive else 'light'}")

    # -- 3: the imported trace is now a first-class app name --------------
    runner = Runner(horizon=HORIZON)
    apps = ["sample", "lbm"]
    print(f"\n{'+'.join(apps)} under bank-partitioning approaches:")
    print(f"  {'approach':<8} {'WS':>7} {'HS':>7} {'MS':>7}")
    for approach in ("ebp", "dbp"):
        m = runner.run_apps(apps, approach).metrics
        print(
            f"  {approach:<8} {m.weighted_speedup:>7.3f} "
            f"{m.harmonic_speedup:>7.3f} {m.max_slowdown:>7.3f}"
        )
    print(
        "\nDBP assigns the sample trace its own bank partition sized by its"
        "\nmeasured intensity — the same decision it makes for synthetic apps."
    )


if __name__ == "__main__":
    main()
