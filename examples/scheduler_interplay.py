#!/usr/bin/env python3
"""The paper's second claim: partitioning and scheduling are orthogonal.

Sweeps a heavy mix across the cross product of {no partitioning, EBP, DBP}
x {FR-FCFS, TCM} and prints the 3x2 grid of weighted speedup and maximum
slowdown. The paper's DBP-TCM is the bottom-right cell; the grid shows the
two mechanisms composing rather than interfering.

Run:  python examples/scheduler_interplay.py
"""

from repro import Runner, get_mix
from repro.baselines import EqualBankPartitioning, SharedPolicy
from repro.core.dbp import DynamicBankPartitioning

HORIZON = 200_000

PARTITIONERS = {
    "shared": SharedPolicy,
    "ebp": EqualBankPartitioning,
    "dbp": DynamicBankPartitioning,
}
SCHEDULERS = ["frfcfs", "tcm"]


def main() -> None:
    runner = Runner(horizon=HORIZON)
    mix = get_mix("M2")
    print(f"mix {mix.name}: {' '.join(mix.apps)}\n")
    corner = "partition / sched"
    header = f"{corner:<18}" + "".join(f"{s:>22}" for s in SCHEDULERS)
    print(header)
    print("-" * len(header))
    for pname, policy_cls in PARTITIONERS.items():
        cells = []
        for scheduler in SCHEDULERS:
            result = runner.run_custom(
                list(mix.apps),
                policy_cls(),
                scheduler=scheduler,
                label=f"{pname}+{scheduler}",
                mix_name=mix.name,
            )
            m = result.metrics
            cells.append(
                f"WS {m.weighted_speedup:5.2f} MS {m.max_slowdown:5.2f}"
            )
        print(f"{pname:<18}" + "".join(f"{c:>22}" for c in cells))
    print(
        "\nRead down a column to see what partitioning adds under a fixed "
        "scheduler;\nread across a row to see what the scheduler adds under "
        "fixed partitioning.\nThe gains compose — the paper's DBP-TCM "
        "argument."
    )


if __name__ == "__main__":
    main()
