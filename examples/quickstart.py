#!/usr/bin/env python3
"""Quickstart: compare Dynamic Bank Partitioning against its baselines.

Runs one multiprogrammed mix (two memory-hogs plus two light apps) under
the unmanaged baseline, equal bank partitioning, and DBP, and prints the
paper's metrics. Takes well under a minute.

Run:  python examples/quickstart.py
"""

from repro import Runner, get_mix

HORIZON = 200_000  # simulated CPU cycles per run


def main() -> None:
    runner = Runner(horizon=HORIZON)
    mix = get_mix("M4")  # mcf + lbm (heavy), h264ref + gcc (light)
    print(f"mix {mix.name}: {' '.join(mix.apps)}")
    print(f"{'approach':<14} {'WS':>7} {'HS':>7} {'MS':>7}   per-app slowdowns")
    print("-" * 72)
    for approach in ("shared-frfcfs", "ebp", "dbp"):
        result = runner.run_mix(mix, approach)
        metrics = result.metrics
        downs = "  ".join(
            f"{mix.apps[t]}={s:.2f}" for t, s in metrics.slowdowns.items()
        )
        print(
            f"{approach:<14} {metrics.weighted_speedup:>7.3f} "
            f"{metrics.harmonic_speedup:>7.3f} "
            f"{metrics.max_slowdown:>7.3f}   {downs}"
        )
    print(
        "\nReading the table: WS = system throughput (higher is better), "
        "MS = maximum\nslowdown (lower is fairer). EBP isolates threads but "
        "boxes the bank-hungry mcf\ninto a fixed slice; DBP sizes each "
        "thread's bank allocation to its measured\nbank-level parallelism "
        "and pools the light threads, recovering both."
    )


if __name__ == "__main__":
    main()
