#!/usr/bin/env python3
"""Energy view: what do partitioning and page policy cost in DRAM energy?

Runs one heavy mix under {open, closed} page policies x {shared, DBP} and
prints the DRAM energy breakdown next to the performance metrics. Bank
partitioning protects row-buffer locality, which shows up here as fewer
activates — performance and activate energy move together.

Run:  python examples/energy_comparison.py
"""

from dataclasses import replace

from repro import Runner, get_mix
from repro.dram.power import estimate_energy
from repro.sim.system import System
from repro.core.integration import get_approach

HORIZON = 200_000


def run_case(runner, mix, approach, page_policy):
    spec = get_approach(approach)
    config = replace(runner.config, num_cores=len(mix.apps))
    config = config.with_scheduler(spec.scheduler, **spec.scheduler_params)
    config = replace(
        config, controller=replace(config.controller, page_policy=page_policy)
    )
    traces = [runner.trace_for(app) for app in mix.apps]
    system = System(
        config, traces, horizon=HORIZON, policy=spec.make_policy()
    )
    result = system.run()
    report = estimate_energy(system)
    total_ipc = sum(t.ipc for t in result.threads.values())
    return total_ipc, report


def main() -> None:
    runner = Runner(horizon=HORIZON)
    mix = get_mix("M1")
    print(f"mix {mix.name}: {' '.join(mix.apps)}\n")
    header = (
        f"{'case':<22} {'sum-IPC':>8} {'ACT mJ':>8} {'RD/WR mJ':>9} "
        f"{'total mJ':>9} {'nJ/instr':>9}"
    )
    print(header)
    print("-" * len(header))
    for approach in ("shared-frfcfs", "dbp"):
        for page_policy in ("open", "closed"):
            ipc, report = run_case(runner, mix, approach, page_policy)
            insts = ipc * HORIZON
            rw_mj = (report.read_nj + report.write_nj) / 1e6
            print(
                f"{approach + '/' + page_policy:<22} {ipc:>8.3f} "
                f"{report.activate_nj / 1e6:>8.3f} {rw_mj:>9.3f} "
                f"{report.total_nj / 1e6:>9.3f} "
                f"{report.total_nj / max(1, insts):>9.2f}"
            )
    print(
        "\nClosed-page pays for its precharges in activate energy; "
        "partitioning's row-hit\nprotection reduces activates. Energy per "
        "instruction folds performance and\npower into one number."
    )


if __name__ == "__main__":
    main()
