#!/usr/bin/env python3
"""Campaign execution: run an evaluation grid in parallel, resumably.

Plans a (mix x approach x seed) grid, executes it over worker processes,
and persists every result in the content-addressed store — run the script
twice and the second pass completes in milliseconds, served entirely from
disk. Equivalent CLI:

    repro-dbp --horizon 150000 campaign --mixes M4 M7 \
        --approaches shared-frfcfs ebp dbp --jobs 2 --store /tmp/dbp-store

Run:  python examples/campaign_sweep.py
"""

import os

from repro import CampaignSpec, ResultStore, run_campaign
from repro.campaign import ProgressPrinter, render_report

HORIZON = 150_000  # simulated CPU cycles per run
JOBS = min(4, os.cpu_count() or 1)
STORE_DIR = "/tmp/dbp-campaign-store"


def main() -> None:
    spec = CampaignSpec(
        name="example-sweep",
        mixes=("M4", "M7"),
        approaches=("shared-frfcfs", "ebp", "dbp"),
        seeds=(1,),
        horizons=(HORIZON,),
    )
    plan = spec.plan()
    store = ResultStore(STORE_DIR)
    print(f"{len(plan)} runs on {JOBS} worker(s), store at {store.root}\n")

    result = run_campaign(
        plan,
        jobs=JOBS,
        store=store,
        progress=ProgressPrinter(total=len(plan), jobs=JOBS),
    )

    print()
    print(render_report(result, store))
    print(
        "\nRun this script again: every run above will come back 'cached' —"
        "\nthe store key hashes the full input closure (config, apps, the"
        "\nresolved approach, seed, horizon), so identical runs are never"
        "\nsimulated twice, across processes or across days."
    )


if __name__ == "__main__":
    main()
