#!/usr/bin/env python3
"""Watch DBP think: per-epoch profiles, demands, and bank allocations.

Runs the all-heavy mix M1 under DBP and prints, at every repartitioning
epoch, what the profiler measured (MPKI / row-buffer hit rate / bank-level
parallelism), what demand the estimator derived, and which bank colors each
thread received. This is the paper's key loop — profile, estimate, allocate
— made visible.

Run:  python examples/inspect_dbp_decisions.py
"""

from dataclasses import replace

from repro import DBPConfig, DynamicBankPartitioning, Runner, get_mix
from repro.sim.system import System


class NarratedDBP(DynamicBankPartitioning):
    """DBP that prints its reasoning at every epoch."""

    def __init__(self, apps):
        # hysteresis_colors=0 so every estimated change is applied — this
        # example is about making the decision loop visible, not about
        # damping churn.
        super().__init__(DBPConfig(epoch_cycles=40_000, hysteresis_colors=0))
        self.apps = apps

    def on_epoch(self, snapshot, context):
        print(f"\n=== epoch @ cycle {snapshot.cycle} ===")
        demands = self.estimator.estimate(snapshot, context.num_threads)
        for t in range(context.num_threads):
            profile = snapshot.profile(t)
            demand = demands[t]
            kind = (
                f"intensive, wants {demand.banks} banks"
                if demand.intensive
                else "non-intensive -> pooled"
            )
            print(
                f"  {self.apps[t]:<12} mpki={profile.mpki:6.1f} "
                f"rbh={profile.rbh:.2f} blp={profile.blp:5.2f}  ({kind})"
            )
        super().on_epoch(snapshot, context)
        print("  allocation:", end=" ")
        for t in range(context.num_threads):
            print(f"{self.apps[t]}={self.last_allocation[t]}", end="  ")
        print()


def main() -> None:
    runner = Runner(horizon=250_000)
    mix = get_mix("M1")
    print(f"mix {mix.name}: {' '.join(mix.apps)} (all memory-intensive)")
    config = replace(runner.config, num_cores=len(mix.apps))
    traces = [runner.trace_for(app) for app in mix.apps]
    policy = NarratedDBP(mix.apps)
    system = System(config, traces, horizon=250_000, policy=policy)
    result = system.run()
    print("\nfinal per-thread results:")
    for t, thread in result.threads.items():
        print(
            f"  {thread.app:<12} ipc={thread.ipc:.3f} "
            f"reads={thread.reads} row-hit={thread.row_hit_rate:.2f}"
        )
    print(f"pages migrated over the run: {result.pages_migrated}")


if __name__ == "__main__":
    main()
