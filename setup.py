"""Setup shim for offline editable installs.

The environment has no network and no ``wheel`` package, so PEP 517
editable installs (which need ``bdist_wheel``) fail. This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .``, which falls back to it) work from the local
setuptools alone. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
