#!/usr/bin/env python3
"""Benchmark the auto-tuner: study throughput cold vs warm.

Runs the same seeded halving study twice against a fresh store:

* **cold** — every trial simulates (the store starts empty);
* **warm** — the identical study re-runs and every simulation is served
  from the content-addressed store (cache hits by construction).

The headline metric is **trials per minute**; the warm/cold ratio is the
cache-economics speedup the tuner's design rests on, so a collapse of
that ratio (e.g. a store-key change that stops repeated points from
hitting) shows up as a perf regression, not a feeling. ``--record``
appends a dated entry to ``benchmarks/BENCH_tuner.json`` in the perf
observatory's trajectory format (``results perf-trend`` ingests it and
CI gates on ``ci.min_ratio``).

Run:  PYTHONPATH=src python scripts/bench_tuner.py \
          --workdir /tmp/bench-tuner [--record]
"""

import argparse
import json
import os
import platform
import shutil
import sys
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.campaign.store import ResultStore  # noqa: E402
from repro.results.db import ResultIndex, index_path_for  # noqa: E402
from repro.tuner import run_study  # noqa: E402

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "benchmarks",
    "BENCH_tuner.json",
)

#: CI gate: the warm (all-cache-hits) re-run must be at least this many
#: times faster than the cold run. The real ratio is far higher (a cache
#: hit is a disk read; a miss is a simulation), so this only trips when
#: the cache economics actually break.
MIN_RATIO = 2.0


def run_once(workdir: str, budget: int, horizon: int, seed: int):
    """One study against the store under ``workdir``; returns (study, s)."""
    store = ResultStore(os.path.join(workdir, "store"))
    started = time.perf_counter()
    with ResultIndex(index_path_for(store.root)) as index:
        result = run_study(
            approach="dbp",
            strategy="halving",
            budget=budget,
            seed=seed,
            mixes=("M4",),
            horizon=horizon,
            store=store,
            index=index,
        )
    return result, time.perf_counter() - started


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default="/tmp/bench-tuner")
    parser.add_argument("--budget", type=int, default=8)
    parser.add_argument("--horizon", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the measurement JSON to PATH")
    parser.add_argument("--record", action="store_true",
                        help="append a trajectory entry to BENCH_tuner.json")
    args = parser.parse_args()

    if os.path.isdir(args.workdir):
        shutil.rmtree(args.workdir)
    os.makedirs(args.workdir)

    cold_result, cold_s = run_once(
        args.workdir, args.budget, args.horizon, args.seed
    )
    warm_result, warm_s = run_once(
        args.workdir, args.budget, args.horizon, args.seed
    )
    trials = len(cold_result.trials)
    cold_tpm = 60.0 * trials / cold_s
    warm_tpm = 60.0 * trials / warm_s
    ratio = warm_tpm / cold_tpm

    doc = {
        "benchmark": "tuner-study",
        "metric": "tuning trials per wall minute (warm = all cache hits)",
        "python": platform.python_version(),
        "trials": trials,
        "budget": args.budget,
        "horizon": args.horizon,
        "cold": {
            "seconds": round(cold_s, 4),
            "trials_per_min": round(cold_tpm, 1),
            "cache_hit_rate": round(cold_result.cache_hit_rate, 3),
        },
        "warm": {
            "seconds": round(warm_s, 4),
            "trials_per_min": round(warm_tpm, 1),
            "cache_hit_rate": round(warm_result.cache_hit_rate, 3),
        },
        "warm_over_cold": round(ratio, 3),
    }
    print(json.dumps(doc, indent=2))
    if warm_result.cache_hit_rate < 0.9:
        print(
            f"FAIL: warm cache-hit rate {warm_result.cache_hit_rate:.2f} "
            "< 0.90 — repeated points are re-simulating",
            file=sys.stderr,
        )
        return 1

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")

    if args.record:
        entry = {
            "date": time.strftime("%Y-%m-%d"),
            "kernel": "tuner",
            "cycles_per_sec_best": round(warm_tpm, 1),
            "speedup_vs_baseline": round(ratio, 3),
            "cache_hit_rate": round(warm_result.cache_hit_rate, 3),
            "trials": trials,
        }
        if os.path.isfile(DEFAULT_OUT):
            with open(DEFAULT_OUT) as handle:
                snapshot = json.load(handle)
        else:
            snapshot = {
                "benchmark": "tuner-study",
                "metric": (
                    "warm (all-cache-hit) tuning trials per wall minute; "
                    "speedup_vs_baseline is the warm/cold study ratio"
                ),
                "ci": {
                    "min_ratio": MIN_RATIO,
                    "note": (
                        "CI gates on the warm/cold ratio, not absolute "
                        "trials/min: shared runners make wall time noisy, "
                        "while the ratio only collapses when repeated "
                        "points stop hitting the content-addressed store "
                        "(the economics the tuner is built on)."
                    ),
                },
                "trajectory": [],
            }
        snapshot["trajectory"].append(entry)
        with open(DEFAULT_OUT, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"recorded trajectory entry in {os.path.normpath(DEFAULT_OUT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
