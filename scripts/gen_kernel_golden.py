#!/usr/bin/env python
"""Regenerate the kernel-equivalence golden fixture.

Runs the differential grid (approach x scheduler x page-policy) once and
writes every simulation-visible result — per-thread outcomes, command and
refresh totals, engine event counts, and the full metrics-registry
snapshot — to ``tests/data/kernel_golden.json``.

The committed fixture was generated from the pre-fast-path reference
implementation, so it pins both kernel paths to the seed semantics. Only
regenerate it deliberately, when a simulation-*visible* behaviour change is
intended (and say so in the commit):

    PYTHONPATH=src python scripts/gen_kernel_golden.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.kernelgrid import GRID, golden_document  # noqa: E402

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tests",
    "data",
    "kernel_golden.json",
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument(
        "--kernel",
        default=None,
        help="kernel path to generate with (default: the repo default)",
    )
    args = parser.parse_args()
    doc = golden_document(kernel=args.kernel)
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(doc['runs'])} grid runs ({len(GRID)} specs) to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
