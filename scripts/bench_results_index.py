#!/usr/bin/env python3
"""Benchmark the result index: sync and query throughput.

Builds a synthetic blob store (default 1000 entries — a realistic large
campaign: mixes x approaches x seeds), then measures:

* **cold sync** — first ``ResultIndex.sync`` over the blobs (JSON decode
  + upsert per entry);
* **warm re-sync** — the incremental no-change pass (one stat per entry,
  zero reads — this is what every campaign startup pays);
* **queries** — filtered ``rows()`` lookups, the ``pair_deltas`` view,
  and a full ``evaluate_gates`` pass over the built-in C1-C3 gates.

Writes the measurements as JSON (see ``benchmarks/BENCH_results_index.json``
for the committed baseline) so regressions in index or view performance
show up as a diff, not a feeling.

Run:  PYTHONPATH=src python scripts/bench_results_index.py \
          --workdir /tmp/bench --out benchmarks/BENCH_results_index.json
"""

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.campaign.store import STORE_VERSION, ResultStore  # noqa: E402
from repro.results import (  # noqa: E402
    ResultIndex,
    evaluate_gates,
    index_path_for,
    pair_deltas,
)

APPROACHES = ("ebp", "dbp", "tcm", "dbp-tcm", "mcp")


def synth_doc(n: int, mix: str, approach: str, seed: int):
    """One store entry document, deterministically varied by (n, approach)."""
    key = f"{n:064x}"
    # Metric shapes roughly matching real campaigns; dbp/dbp-tcm win so
    # the gate-evaluation benchmark exercises the pass paths.
    ws = 3.0 + (n % 17) * 0.01
    ms = 1.5 - (n % 13) * 0.01
    if approach in ("dbp", "dbp-tcm"):
        ws *= 1.05
        ms *= 0.88
    apps = ["lbm", "mcf", "gcc", "povray"]
    return {
        "version": STORE_VERSION,
        "key": key,
        "spec": {
            "mix": mix,
            "apps": apps,
            "approach": approach,
            "seed": seed,
            "horizon": 300_000,
            "target_insts": 2_000_000,
        },
        "wall_clock": 10.0,
        "result": {
            "metrics": {
                "mix": mix,
                "approach": approach,
                "apps": apps,
                "summary": {
                    "weighted_speedup": ws,
                    "harmonic_speedup": ws / 4.0,
                    "max_slowdown": ms,
                },
                "slowdowns": {str(t): 1.0 + t * 0.1 for t in range(4)},
            },
            "system": {},
            "alone_ipcs": {str(t): 1.0 for t in range(4)},
            "shared_ipcs": {str(t): 0.8 for t in range(4)},
        },
    }


def build_store(root: str, entries: int) -> int:
    n = 0
    while n < entries:
        mix = f"MIX{(n // len(APPROACHES)) % 40}"
        approach = APPROACHES[n % len(APPROACHES)]
        seed = 1 + (n // (len(APPROACHES) * 40))
        doc = synth_doc(n, mix, approach, seed)
        path = os.path.join(root, doc["key"][:2], doc["key"] + ".json")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            json.dump(doc, handle, sort_keys=True, indent=1)
        n += 1
    return n


def timed(fn, repeat: int = 1):
    best = float("inf")
    value = None
    for _ in range(repeat):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return value, best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", required=True)
    parser.add_argument("--entries", type=int, default=1000)
    parser.add_argument("--query-repeat", type=int, default=5)
    parser.add_argument("--out", default=None, help="write JSON report here")
    args = parser.parse_args()

    root = os.path.join(args.workdir, "store")
    _, build_secs = timed(lambda: build_store(root, args.entries))
    store = ResultStore(root, index=False)
    db_path = index_path_for(root)

    index = ResultIndex(db_path)
    cold_report, cold_secs = timed(lambda: index.sync(store))
    assert cold_report.added == args.entries, cold_report.as_dict()
    warm_report, warm_secs = timed(lambda: index.sync(store))
    assert warm_report.unchanged == args.entries, warm_report.as_dict()

    rows, rows_secs = timed(
        lambda: index.rows(mix="MIX7", approach="dbp"),
        repeat=args.query_repeat,
    )
    deltas, deltas_secs = timed(
        lambda: pair_deltas(index, "dbp", "ebp"), repeat=args.query_repeat
    )
    gates, gates_secs = timed(
        lambda: evaluate_gates(index), repeat=args.query_repeat
    )
    index_bytes = os.path.getsize(db_path)
    index.close()

    report = {
        "benchmark": "results_index",
        "entries": args.entries,
        "python": platform.python_version(),
        "store_version": STORE_VERSION,
        "index_bytes": index_bytes,
        "cold_sync": {
            "seconds": round(cold_secs, 4),
            "entries_per_sec": round(args.entries / cold_secs, 1),
        },
        "warm_resync": {
            "seconds": round(warm_secs, 4),
            "entries_per_sec": round(args.entries / warm_secs, 1),
        },
        "queries": {
            "filtered_rows": {
                "seconds": round(rows_secs, 5),
                "rows": len(rows),
            },
            "pair_deltas": {
                "seconds": round(deltas_secs, 5),
                "matched_cells": deltas.matched,
            },
            "evaluate_gates": {
                "seconds": round(gates_secs, 5),
                "checks": len(gates.checks),
                "passed": gates.ok(),
            },
        },
        "blob_build_seconds": round(build_secs, 4),
    }
    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
