#!/usr/bin/env python3
"""CI chaos smoke: a mini-campaign must survive every injected fault.

Drives the supervised executor through the full failure taxonomy with the
deterministic fault harness (:mod:`repro.faults`) and fails loudly unless
every spec ends *resolved* — executed, cached, or explicitly quarantined
with a persisted failure record. No silent losses.

Stage 1 (API): a pooled campaign where one spec's worker is killed with a
real ``SIGKILL`` (what ``kill -9`` / the OOM killer delivers), one hangs
past the per-run timeout, one throws a transient error, one is poisoned
(fails deterministically every time) and must be quarantined, and one has
its first safepoint checkpoint torn mid-write.

Stage 2 (CLI): the same harness activated through ``REPRO_FAULT_PLAN``,
proving the env-var plumbing reaches CLI-spawned pool workers: a campaign
whose first attempt dies transiently must exit 0 and report the recovery.

A forensics report (per-spec attempt history, failure records, time lost
to faults, pool respawns) is written to ``--workdir`` for CI to upload.

Run:  PYTHONPATH=src python scripts/chaos_smoke.py --workdir /tmp/chaos
"""

import argparse
import json
import os
import subprocess
import sys
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.campaign import ResultStore, RunSpec, execute  # noqa: E402
from repro.campaign.progress import render_report  # noqa: E402
from repro.faults import FaultPlan, FaultSpec  # noqa: E402

HORIZON = 60_000
TARGET_INSTS = 400_000


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"[{status}] {label}")
    if not condition:
        sys.exit(1)


def _spec(mix_name: str) -> RunSpec:
    return RunSpec(
        apps=("lbm", "gcc"),
        approach="shared-frfcfs",
        horizon=HORIZON,
        target_insts=TARGET_INSTS,
        mix_name=mix_name,
    )


def _outcome_docs(result) -> list:
    return [
        {
            "label": o.spec.label,
            "mix": o.spec.mix_name,
            "status": o.status,
            "attempts": o.attempts,
            "error": o.error,
            "failure": o.failure.to_doc() if o.failure else None,
        }
        for o in result.outcomes
    ]


def stage_api(workdir: str, jobs: int) -> dict:
    """Hang, transient, poison, and torn-checkpoint faults, pooled.

    The SIGKILL lives in :func:`stage_crash`: a broken pool fails every
    in-flight future, which would bump every spec's submission counter
    past its ``times=1`` fault and leave these paths unexercised.
    """
    specs = [
        _spec("HANG"),  # blocks past the per-run timeout
        _spec("FLAKY"),  # transient error on the first attempt
        _spec("POISON"),  # deterministic failure every time -> quarantine
        _spec("TORN"),  # first safepoint checkpoint torn mid-write
    ]
    plan = FaultPlan(
        seed=5,
        faults=(
            FaultSpec(site="worker.run", kind="hang", match="HANG/*",
                      times=1, seconds=60.0),
            FaultSpec(site="worker.run", kind="transient", match="FLAKY/*",
                      times=1),
            FaultSpec(site="worker.run", kind="deterministic",
                      match="POISON/*", times=99),
            FaultSpec(site="checkpoint.write", kind="torn_checkpoint",
                      match="TORN/*", times=1),
        ),
    )
    plan.save(os.path.join(workdir, "fault_plan.json"))
    store = ResultStore(os.path.join(workdir, "store"))
    started = time.perf_counter()
    result = execute(
        specs,
        jobs=jobs,
        store=store,
        retries=2,
        timeout=5.0,
        backoff=0.05,
        quarantine_after=2,
        safepoint_every=20_000,
        faults=plan,
    )
    wall = time.perf_counter() - started
    print(render_report(result, store=store))

    by_mix = {o.spec.mix_name: o for o in result.outcomes}
    check(result.unresolved == [], "every spec resolved (no silent losses)")
    check(by_mix["HANG"].status == "ok"
          and by_mix["HANG"].failure is not None
          and by_mix["HANG"].failure.attempts[0].error_class == "timeout",
          "hung spec timed out, then recovered")
    check(by_mix["FLAKY"].status == "ok"
          and by_mix["FLAKY"].failure is not None
          and by_mix["FLAKY"].failure.resolution == "recovered",
          "transient spec recovered with a failure record")
    check(by_mix["POISON"].status == "quarantined"
          and by_mix["POISON"].attempts == 2,
          "poison spec quarantined after 2 deterministic failures")
    check(store.get_failure(specs[2].key()) is not None,
          "quarantine record persisted in the store")
    check(by_mix["TORN"].status == "ok"
          and by_mix["TORN"].failure is not None,
          "torn-checkpoint spec fell back to scratch and finished")
    check(result.time_lost_to_faults > 0,
          "time lost to faults is accounted")
    return {
        "wall_clock": wall,
        "jobs": jobs,
        "pool_respawns": result.pool_respawns,
        "time_lost_to_faults": result.time_lost_to_faults,
        "fault_plan": plan.to_doc(),
        "outcomes": _outcome_docs(result),
    }


def stage_crash(workdir: str, jobs: int) -> dict:
    """A real ``kill -9`` inside a pool worker, plus an innocent victim."""
    specs = [
        _spec("CRASH"),  # worker killed with a real SIGKILL
        _spec("BYSTANDER"),  # loses its worker to the breakage, blameless
    ]
    plan = FaultPlan(
        seed=6,
        faults=(
            FaultSpec(site="worker.run", kind="crash", match="CRASH/*",
                      times=1),
        ),
    )
    store = ResultStore(os.path.join(workdir, "crash-store"))
    result = execute(
        specs,
        jobs=jobs,
        store=store,
        retries=1,
        backoff=0.05,
        faults=plan,
    )
    print(render_report(result, store=store))
    by_mix = {o.spec.mix_name: o for o in result.outcomes}
    check(result.unresolved == [],
          "every spec resolved after the SIGKILL")
    check(by_mix["CRASH"].status == "ok",
          "SIGKILLed spec recovered after pool respawn")
    check(by_mix["CRASH"].attempts == 1,
          "SIGKILL charged no retry budget (infrastructure failure)")
    check(by_mix["BYSTANDER"].status == "ok"
          and by_mix["BYSTANDER"].attempts == 1,
          "innocent in-flight spec requeued without losing budget")
    check(result.pool_respawns >= 1, "worker pool was respawned")
    return {
        "pool_respawns": result.pool_respawns,
        "time_lost_to_faults": result.time_lost_to_faults,
        "fault_plan": plan.to_doc(),
        "outcomes": _outcome_docs(result),
    }


def stage_cli(workdir: str, jobs: int) -> dict:
    plan = FaultPlan(
        seed=9,
        faults=(
            FaultSpec(site="worker.run", kind="transient",
                      match="M4/shared-frfcfs *", times=1),
        ),
    )
    plan_path = os.path.join(workdir, "cli_fault_plan.json")
    plan.save(plan_path)
    env = dict(os.environ)
    env["REPRO_FAULT_PLAN"] = plan_path
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (
            os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "..", "src"),
            env.get("PYTHONPATH", ""),
        ) if p
    )
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro",
            "--horizon", str(HORIZON), "campaign",
            "--mixes", "M4", "--approaches", "shared-frfcfs",
            "--jobs", str(jobs), "--backoff", "0.05",
            "--store", os.path.join(workdir, "cli-store"),
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    check(proc.returncode == 0,
          "CLI campaign under REPRO_FAULT_PLAN exited 0")
    check("RECOVERED on attempt 2" in proc.stdout,
          "CLI report names the recovery")
    return {
        "returncode": proc.returncode,
        "fault_plan": plan.to_doc(),
        "recovered_line": [
            line for line in proc.stdout.splitlines()
            if line.startswith("RECOVERED")
        ],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", required=True)
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()
    os.makedirs(args.workdir, exist_ok=True)

    forensics = {
        "api_stage": stage_api(args.workdir, args.jobs),
        "crash_stage": stage_crash(args.workdir, args.jobs),
        "cli_stage": stage_cli(args.workdir, args.jobs),
    }
    report_path = os.path.join(args.workdir, "chaos_forensics.json")
    with open(report_path, "w") as handle:
        json.dump(forensics, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"forensics report: {report_path}")
    print("chaos smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
