#!/usr/bin/env python3
"""Inject the latest measured tables into EXPERIMENTS.md.

Replaces every ``@<ID>@`` placeholder (or a previously injected table for
that id) with the contents of ``benchmarks/results/<ID>.txt``, and fills
the headline-claims row markers ``@C1@``/``@C2@``/``@C3@`` from the F2/F3/
F4 summaries. Run after ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"
DOC = ROOT / "EXPERIMENTS.md"


def read_result(exp_id: str) -> str:
    path = RESULTS / f"{exp_id}.txt"
    if not path.exists():
        raise SystemExit(f"missing {path}; run the benchmarks first")
    return path.read_text().rstrip()


def summary_value(exp_id: str, key: str) -> float:
    text = read_result(exp_id)
    match = re.search(rf"{re.escape(key)}\s*:\s*([+-][0-9.]+)%", text)
    if not match:
        raise SystemExit(f"{key} not found in {exp_id} results")
    return float(match.group(1))


def main() -> int:
    doc = DOC.read_text()
    for exp_id in (
        "T1", "T2", "T3",
        "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9",
        "F10", "F11", "F12", "F13",
    ):
        table = read_result(exp_id)
        marker = f"@{exp_id}@"
        if marker in doc:
            doc = doc.replace(marker, table)
            continue
        # Idempotent refresh: replace a previously injected table (a code
        # fence starting with the experiment's header line).
        pattern = re.compile(
            rf"```\n\[{exp_id}\] .*?```", flags=re.DOTALL
        )
        if pattern.search(doc):
            doc = pattern.sub(f"```\n{table}\n```", doc, count=1)
        else:
            print(f"warning: no marker or table for {exp_id}", file=sys.stderr)
    c1_ws = summary_value("F2", "dbp_vs_ebp_ws_pct")
    c1_ms = summary_value("F3", "dbp_vs_ebp_ms_pct")
    c2_ws = summary_value("F4", "dbptcm_vs_tcm_ws_pct")
    c2_ms = summary_value("F4", "dbptcm_vs_tcm_ms_pct")
    c3_ws = summary_value("F4", "dbptcm_vs_mcp_ws_pct")
    c3_ms = summary_value("F4", "dbptcm_vs_mcp_ms_pct")
    doc = doc.replace("@C1@", f"{c1_ws:+.1f} % WS / {-c1_ms:+.1f} % fairness")
    doc = doc.replace("@C2@", f"{c2_ws:+.1f} % WS / {-c2_ms:+.1f} % fairness")
    doc = doc.replace("@C3@", f"{c3_ws:+.1f} % WS / {-c3_ms:+.1f} % fairness")
    DOC.write_text(doc)
    print(f"EXPERIMENTS.md updated from {RESULTS}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
