#!/usr/bin/env python3
"""CI smoke test for the workload trace library.

Exercises the acceptance path end-to-end, failing loudly on any drift:

1. **Round-trip fidelity** — generate a synthetic trace, export it to
   ``.rtrc``, import it back as a library app shadowing the same name,
   run the same 2-core mix both ways, and require *bit-identical*
   results (compared by :func:`repro.campaign.store.result_digest`)
   while the two runs' persistent store keys differ (content-digest
   addressing for the library run).
2. **Real-trace import** — push the bundled ChampSim-style sample
   through import -> characterization -> registration -> a DBP run.

Artifacts (the ``.rtrc`` and the library ``manifest.json``) are left in
``--workdir`` for CI to upload.

Run:  PYTHONPATH=src python scripts/trace_library_smoke.py --workdir /tmp/x
"""

import argparse
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.campaign.store import result_digest  # noqa: E402
from repro.sim.runner import Runner  # noqa: E402
from repro.traces import TraceLibrary, load_rtrc, save_rtrc  # noqa: E402

HORIZON = 60_000
TARGET_INSTS = 400_000
SAMPLE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..", "examples", "data", "sample_champsim.trace",
)


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"[{status}] {label}")
    if not condition:
        sys.exit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", required=True)
    args = parser.parse_args()
    os.makedirs(args.workdir, exist_ok=True)
    library = TraceLibrary(os.path.join(args.workdir, "library"))

    def runner() -> Runner:
        return Runner(horizon=HORIZON, target_insts=TARGET_INSTS)

    # ---- 1: synthetic -> .rtrc -> import -> identical run ---------------
    baseline = runner()
    native = baseline.run_apps(["lbm", "gcc"], "dbp")
    synthetic_key = baseline._store_key(["lbm", "gcc"], "dbp")
    trace = baseline.trace_for("lbm")

    exported = os.path.join(args.workdir, "lbm.rtrc")
    save_rtrc(trace, exported)
    reloaded = load_rtrc(exported)
    check(reloaded.records == trace.records, "rtrc round-trip: records equal")
    check(reloaded.digest == trace.digest, "rtrc round-trip: digest equal")

    library.add(reloaded, characterize=False, override=True)
    replay = runner()
    imported = replay.run_apps(["lbm", "gcc"], "dbp")
    check(
        result_digest(imported) == result_digest(native),
        "imported run bit-identical to synthetic run (result digest)",
    )
    library_key = replay._store_key(["lbm", "gcc"], "dbp")
    check(
        library_key != synthetic_key,
        "store key of the library run is content-digest addressed",
    )

    # ---- 2: real ChampSim-style dump, end to end -------------------------
    entry = library.import_file(SAMPLE, name="sample", fmt="champsim",
                                horizon=HORIZON)
    check(entry.records > 0, f"sample import parsed {entry.records} records")
    check(
        "mpki" in entry.characterization,
        f"sample characterized (MPKI={entry.characterization.get('mpki', 0):.2f})",
    )
    result = runner().run_apps(["sample", "gcc"], "dbp")
    check(
        result.metrics.weighted_speedup > 0,
        f"sample+gcc ran under DBP (WS={result.metrics.weighted_speedup:.3f})",
    )
    check(
        os.path.isfile(library.manifest_path),
        f"library manifest persisted at {library.manifest_path}",
    )
    print("trace library smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
