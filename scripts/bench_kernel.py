#!/usr/bin/env python
"""Kernel hot-loop benchmark: cycles/sec of the controller decision path.

Times the same run ``repro-dbp trace --profile`` performs — the default
4-core mix through one full ``System`` with the wall-clock profiler
attached — and reports simulated cycles per wall second, per kernel.

Modes:

* default       — time the selected kernel(s), print cycles/sec.
* ``--record``  — additionally update the ``post`` entry (and trajectory)
                  in ``benchmarks/BENCH_kernel.json``.
* ``--check``   — CI smoke: run both kernels back-to-back on this host and
                  require fast/reference >= ``ci.min_ratio`` from
                  BENCH_kernel.json. Comparing the two kernels on the same
                  host makes the gate machine-independent, unlike absolute
                  cycles/sec. Also cross-checks that both kernels produced
                  identical results (commands, events, per-thread IPC).
* ``--report``  — write the last run's full profile report as JSON (the CI
                  job uploads this as an artifact).

    PYTHONPATH=src python scripts/bench_kernel.py --check --reps 3
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    ),
)

from repro.config import SystemConfig  # noqa: E402
from repro.core.integration import get_approach  # noqa: E402
from repro.sim.system import System  # noqa: E402
from repro.traces.source import DefaultTraceSource  # noqa: E402
from repro.workloads import resolve_mix  # noqa: E402

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "BENCH_kernel.json",
)


def _build_traces(args):
    source = DefaultTraceSource()
    return [
        source.trace_for(app, args.seed, args.target_insts)
        for app in resolve_mix(args.mix).apps
    ]


def _one_run(args, traces, kernel):
    approach = get_approach(args.approach)
    config = SystemConfig().with_scheduler(
        approach.scheduler, **approach.scheduler_params
    )
    system = System(
        config,
        traces,
        horizon=args.horizon,
        policy=approach.make_policy(),
        profile=True,
        kernel=kernel,
    )
    started = time.perf_counter()
    result = system.run()
    wall = time.perf_counter() - started
    return {
        "wall_seconds": wall,
        "cycles_per_sec": args.horizon / wall,
        "engine_events": result.engine_events,
        "profile": system.profile_report(),
        "digest": {
            "total_commands": result.total_commands,
            "total_refreshes": result.total_refreshes,
            "engine_events": result.engine_events,
            "ipc": {
                str(t): tr.ipc for t, tr in sorted(result.threads.items())
            },
        },
    }


def bench_kernel(args, traces, kernel):
    """Best-of-N timing for one kernel; returns a summary document."""
    runs = []
    for _ in range(args.reps):
        runs.append(_one_run(args, traces, kernel))
    runs_sorted = sorted(runs, key=lambda r: r["wall_seconds"])
    best = runs_sorted[0]
    median = runs_sorted[len(runs_sorted) // 2]
    return {
        "kernel": kernel,
        "reps": args.reps,
        "cycles_per_sec_best": best["cycles_per_sec"],
        "cycles_per_sec_median": median["cycles_per_sec"],
        "wall_seconds_best": best["wall_seconds"],
        "walls": [round(r["wall_seconds"], 4) for r in runs],
        "engine_events": best["engine_events"],
        "digest": best["digest"],
        "profile": best["profile"],
    }


def _print_summary(summary):
    print(
        f"{summary['kernel']:>9}: "
        f"{summary['cycles_per_sec_best']:>10.0f} cyc/s best, "
        f"{summary['cycles_per_sec_median']:>10.0f} median "
        f"(walls {summary['walls']}, events {summary['engine_events']})"
    )


def _load_bench():
    with open(BENCH_PATH) as handle:
        return json.load(handle)


def _record(args, fast_summary):
    doc = _load_bench()
    baseline = doc["baseline"]["cycles_per_sec_best"]
    trajectory = doc.setdefault("trajectory", [])
    existing = [e for e in trajectory if e.get("date") == args.date]
    if existing and not args.force:
        print(
            f"refusing to record: trajectory already has an entry dated "
            f"{args.date} ({existing[0]['cycles_per_sec_best']:.0f} cyc/s); "
            f"pass --force to replace it or --date to stamp differently",
            file=sys.stderr,
        )
        return 2
    entry = {
        "date": args.date,
        "kernel": "fast",
        "cycles_per_sec_best": round(fast_summary["cycles_per_sec_best"], 1),
        "cycles_per_sec_median": round(
            fast_summary["cycles_per_sec_median"], 1
        ),
        "walls": fast_summary["walls"],
        "engine_events": fast_summary["engine_events"],
        "speedup_vs_baseline": round(
            fast_summary["cycles_per_sec_best"] / baseline, 3
        ),
    }
    doc["post"] = entry
    if existing:
        doc["trajectory"] = [
            e for e in trajectory if e.get("date") != args.date
        ] + [entry]
    else:
        trajectory.append(entry)
    with open(BENCH_PATH, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    replaced = " (replaced same-date entry)" if existing else ""
    print(
        f"recorded post: {entry['cycles_per_sec_best']:.0f} cyc/s "
        f"({entry['speedup_vs_baseline']}x vs committed baseline){replaced}"
    )
    return 0


def _check(args, traces):
    """Same-host fast-vs-reference ratio gate (machine-independent)."""
    doc = _load_bench()
    min_ratio = doc["ci"]["min_ratio"]
    fast = bench_kernel(args, traces, "fast")
    reference = bench_kernel(args, traces, "reference")
    _print_summary(fast)
    _print_summary(reference)
    if fast["digest"] != reference["digest"]:
        print("FAIL: fast and reference kernels disagree on results")
        return 1, fast
    ratio = fast["cycles_per_sec_best"] / reference["cycles_per_sec_best"]
    print(f"fast/reference ratio: {ratio:.2f}x (gate: >= {min_ratio}x)")
    if ratio < min_ratio:
        print("FAIL: fast kernel lost its lead over the reference rescan")
        return 1, fast
    print("PASS")
    return 0, fast


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mix", default="M4")
    parser.add_argument("--approach", default="dbp-tcm")
    parser.add_argument("--horizon", type=int, default=400_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--target-insts", type=int, default=4_000_000)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--kernel",
        choices=("fast", "reference", "both"),
        default="fast",
        help="kernel(s) to time (ignored by --check, which runs both)",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="update the post entry in benchmarks/BENCH_kernel.json",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help=(
            "--record: replace an existing trajectory entry with the same "
            "date instead of refusing"
        ),
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: fast/reference ratio >= ci.min_ratio",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the fast kernel's profile report JSON here",
    )
    parser.add_argument(
        "--date",
        default=time.strftime("%Y-%m-%d"),
        help="date stamp for --record entries",
    )
    args = parser.parse_args()

    traces = _build_traces(args)
    status = 0
    if args.check:
        status, fast = _check(args, traces)
    else:
        kernels = (
            ["fast", "reference"] if args.kernel == "both" else [args.kernel]
        )
        fast = None
        for kernel in kernels:
            summary = bench_kernel(args, traces, kernel)
            _print_summary(summary)
            if kernel == "fast":
                fast = summary
    if args.record:
        if fast is None:
            print("--record needs a fast-kernel measurement", file=sys.stderr)
            return 2
        record_status = _record(args, fast)
        if record_status:
            return record_status
    if args.report:
        if fast is None:
            print("--report needs a fast-kernel measurement", file=sys.stderr)
            return 2
        with open(args.report, "w") as handle:
            json.dump(fast["profile"], handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote profile report to {args.report}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
