"""F1 (motivation): single-thread IPC vs. available bank colors.

Paper shape: high-BLP, low-locality applications (mcf) lose far more IPC
when confined to few banks than streaming applications (libquantum) — the
bank-level-parallelism loss equal partitioning inflicts.
"""

from repro.experiments import f1_bank_sensitivity

from conftest import run_once, shape_checks_enabled, show


def bench_f1_bank_sensitivity(runner, benchmark):
    result = run_once(benchmark, lambda: f1_bank_sensitivity(runner))
    show(result)
    rows = {row[0]: row for row in result.rows}
    for row in result.rows:
        # More banks never meaningfully hurt.
        assert row[1] <= row[-1] * 1.05
    if not shape_checks_enabled():
        return
    mcf_loss = 1.0 - rows["mcf"][1]
    libq_loss = 1.0 - rows["libquantum"][1]
    assert mcf_loss > libq_loss + 0.05, (
        "bank-hungry mcf must lose more at 1 color than the streamer"
    )
    assert mcf_loss > 0.25  # the loss is substantial, not marginal
