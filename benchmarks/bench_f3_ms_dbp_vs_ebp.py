"""F3: maximum slowdown — Shared(FR-FCFS) vs EBP vs DBP (claim C1).

Paper: DBP improves fairness over equal bank partitioning by ~16%
(i.e. reduces maximum slowdown). Reproduced shape: DBP's gmean MS is below
EBP's. Runs are shared with F2 through the session runner's result cache.
"""

from repro.experiments import f3_ms_dbp_vs_ebp

from conftest import BENCH_MIXES, run_once, shape_checks_enabled, show


def bench_f3_maximum_slowdown(runner, benchmark):
    result = run_once(
        benchmark, lambda: f3_ms_dbp_vs_ebp(runner, mixes=BENCH_MIXES)
    )
    show(result)
    if not shape_checks_enabled():
        return
    assert result.summary["dbp_vs_ebp_ms_pct"] < 0.0, (
        "claim C1 (fairness): DBP must reduce maximum slowdown vs EBP"
    )
