"""T2: measured alone-run benchmark characteristics."""

from repro.experiments import t2_characteristics

from conftest import QUICK, run_once, shape_checks_enabled, show

APPS = (
    ["mcf", "libquantum", "lbm", "gcc"]
    if QUICK
    else None  # None = every application profile
)


def bench_t2_characteristics(runner, benchmark):
    result = run_once(benchmark, lambda: t2_characteristics(runner, apps=APPS))
    show(result)
    rows = {row[0]: row for row in result.rows}
    if not shape_checks_enabled():
        return
    # The structural facts every policy in the paper keys on:
    assert rows["mcf"][4] > rows["libquantum"][4]  # mcf BLP >> streamer BLP
    assert rows["libquantum"][3] > rows["mcf"][3]  # streamer RBH >> mcf RBH
    assert rows["lbm"][2] > 1.0 and rows["gcc"][2] < 1.0  # intensity classes
