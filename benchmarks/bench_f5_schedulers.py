"""F5 (context): the memory schedulers without partitioning.

Shape: FR-FCFS's row-hit-first reordering buys throughput over strict
FCFS — the premise of the scheduling line of work the paper builds on.
"""

from repro.experiments import f5_schedulers

from conftest import BENCH_FAST_MIXES, run_once, shape_checks_enabled, show


def bench_f5_schedulers(runner, benchmark):
    result = run_once(
        benchmark, lambda: f5_schedulers(runner, mixes=BENCH_FAST_MIXES)
    )
    show(result)
    names = result.column("scheduler")
    assert names == [
        "shared-fcfs",
        "shared-frfcfs",
        "parbs",
        "atlas",
        "bliss",
        "tcm",
    ]
    if not shape_checks_enabled():
        return
    assert result.summary["frfcfs_vs_fcfs_ws_pct"] > 0.0
