"""F12 (extension): XOR bank permutation vs software partitioning."""

from repro.experiments import f12_xor_interleaving

from conftest import BENCH_FAST_MIXES, run_once, show


def bench_f12_xor_interleaving(runner, benchmark):
    result = run_once(
        benchmark, lambda: f12_xor_interleaving(runner, mixes=BENCH_FAST_MIXES)
    )
    show(result)
    assert result.column("approach") == ["shared", "dbp", "shared+xor"]
    for row in result.rows:
        assert all(v > 0 for v in row[1:])
