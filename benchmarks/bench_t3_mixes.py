"""T3: workload mix table."""

from repro.experiments import t3_mixes
from repro.workloads.mixes import MAIN_MIXES

from conftest import run_once, show


def bench_t3_mixes(runner, benchmark):
    result = run_once(benchmark, t3_mixes)
    show(result)
    names = result.column("mix")
    assert all(m in names for m in MAIN_MIXES)
    categories = set(result.column("category"))
    # The evaluation spans all-heavy down to one-heavy mixes.
    assert {"H4", "H2L2", "H1L3"} <= categories
