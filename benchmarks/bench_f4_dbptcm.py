"""F4: scheduling x partitioning — TCM, MCP, EBP-TCM, DBP-TCM (claims C2, C3).

Paper: DBP-TCM improves over TCM by +6.2% WS and +16.7% fairness (C2), and
over MCP by +5.3% WS and +37% fairness (C3). Reproduced shapes: DBP-TCM
beats MCP clearly on both metrics, beats TCM on fairness, and the MCP
fairness gap is the largest gap in the figure.
"""

from repro.experiments import f4_dbp_tcm

from conftest import BENCH_MIXES, run_once, shape_checks_enabled, show


def bench_f4_dbp_tcm(runner, benchmark):
    result = run_once(benchmark, lambda: f4_dbp_tcm(runner, mixes=BENCH_MIXES))
    show(result)
    if not shape_checks_enabled():
        return
    summary = result.summary
    # C3: both deltas against MCP clearly positive for DBP-TCM.
    assert summary["dbptcm_vs_mcp_ws_pct"] > 0.0
    assert summary["dbptcm_vs_mcp_ms_pct"] < 0.0
    # C2: fairness gain over TCM; throughput at worst a wash.
    assert summary["dbptcm_vs_tcm_ms_pct"] < 0.0
    assert summary["dbptcm_vs_tcm_ws_pct"] > -2.0
    # The MCP fairness gap dominates the TCM fairness gap (37% vs 16.7%).
    assert summary["dbptcm_vs_mcp_ms_pct"] < summary["dbptcm_vs_tcm_ms_pct"]
