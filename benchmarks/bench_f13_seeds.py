"""F13 (robustness): claim C1 across workload-generation seeds."""

from repro.experiments import f13_seed_robustness

from conftest import BENCH_FAST_MIXES, QUICK, run_once, shape_checks_enabled, show

SEEDS = (1, 2) if QUICK else (1, 2, 3)


def bench_f13_seed_robustness(runner, benchmark):
    result = run_once(
        benchmark,
        lambda: f13_seed_robustness(runner, mixes=BENCH_FAST_MIXES, seeds=SEEDS),
    )
    show(result)
    assert len(result.rows) == len(SEEDS)
    if not shape_checks_enabled():
        return
    # The fairness direction of claim C1 must hold for every seed.
    assert result.summary["max_ms_delta_pct"] < 2.0
