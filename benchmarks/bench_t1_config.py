"""T1: system configuration table."""

from repro.experiments import t1_configuration

from conftest import run_once, show


def bench_t1_configuration(runner, benchmark):
    result = run_once(benchmark, lambda: t1_configuration(runner))
    show(result)
    params = result.column("parameter")
    assert any("DRAM" in p for p in params)
    assert any("Bank colors" in p for p in params)
