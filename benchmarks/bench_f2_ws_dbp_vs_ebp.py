"""F2: weighted speedup — Shared(FR-FCFS) vs EBP vs DBP (claim C1).

Paper: DBP improves system throughput over equal bank partitioning by
~4.3%. Reproduced shape: DBP's gmean WS exceeds EBP's.
"""

from repro.experiments import f2_ws_dbp_vs_ebp

from conftest import BENCH_MIXES, run_once, shape_checks_enabled, show


def bench_f2_weighted_speedup(runner, benchmark):
    result = run_once(
        benchmark, lambda: f2_ws_dbp_vs_ebp(runner, mixes=BENCH_MIXES)
    )
    show(result)
    assert result.rows[-1][0] == "gmean"
    if not shape_checks_enabled():
        return
    assert result.summary["dbp_vs_ebp_ws_pct"] > 0.0, (
        "claim C1 (throughput): DBP must beat EBP on gmean weighted speedup"
    )
