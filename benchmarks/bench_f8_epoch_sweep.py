"""F8 (sensitivity): DBP repartitioning epoch length.

Shape: DBP is robust across an order of magnitude of epoch lengths — no
setting should collapse, and extremely short epochs pay a visible
migration-churn cost relative to the best setting.
"""

from repro.experiments import f8_epoch_sweep

from conftest import BENCH_FAST_MIXES, run_once, show


def bench_f8_epoch_sweep(runner, benchmark):
    result = run_once(
        benchmark, lambda: f8_epoch_sweep(runner, mixes=BENCH_FAST_MIXES)
    )
    show(result)
    ws = result.column("ws")
    ms = result.column("ms")
    assert all(v > 0 for v in ws)
    assert all(v >= 1.0 for v in ms)
    # Robustness: the worst epoch setting is within 15% of the best.
    assert min(ws) > 0.85 * max(ws)
