"""F10 (extension): open-page vs closed-page row management."""

from repro.experiments import f10_page_policy

from conftest import BENCH_FAST_MIXES, run_once, show


def bench_f10_page_policy(runner, benchmark):
    result = run_once(
        benchmark, lambda: f10_page_policy(runner, mixes=BENCH_FAST_MIXES)
    )
    show(result)
    assert result.column("page policy") == ["open", "closed"]
    for row in result.rows:
        assert all(v > 0 for v in row[1:])
