"""F11 (extension): stride prefetching off/on across the policies."""

from repro.experiments import f11_prefetching

from conftest import BENCH_FAST_MIXES, run_once, show


def bench_f11_prefetching(runner, benchmark):
    result = run_once(
        benchmark, lambda: f11_prefetching(runner, mixes=BENCH_FAST_MIXES)
    )
    show(result)
    assert result.column("prefetch") == ["off", "on"]
    for row in result.rows:
        assert all(v > 0 for v in row[1:])
