"""F7 (sensitivity): core count (2 / 4 / 8) with the matching mixes."""

from repro.experiments import f7_cores_sweep

from conftest import run_once, shape_checks_enabled, show


def bench_f7_cores_sweep(runner, benchmark):
    result = run_once(benchmark, lambda: f7_cores_sweep(runner))
    show(result)
    assert result.column("cores") == ["2", "4", "8"]
    ws = result.column("dbp ws")
    # Weighted speedup grows with core count (more threads to sum over)...
    assert ws[0] < ws[2]
    if not shape_checks_enabled():
        return
    ms_ebp = result.column("ebp ms")
    ms_dbp = result.column("dbp ms")
    # ...and contention (maximum slowdown) grows with core count too.
    assert ms_dbp[0] < ms_dbp[2]
    # DBP's fairness should not collapse relative to EBP at any scale.
    for ebp, dbp in zip(ms_ebp, ms_dbp):
        assert dbp <= ebp * 1.10
