"""T4 (tooling): telemetry recorder overhead and result neutrality.

Two claims guard the telemetry layer's "free when off, cheap when on"
contract:

* telemetry must never change what the simulation computes — a traced run
  and an untraced run produce identical :class:`SystemResult`s;
* disabled telemetry leaves no probes on the controllers (structurally
  zero per-request cost), and enabled telemetry stays within a small
  constant factor of the untraced run.
"""

from __future__ import annotations

import time

from repro.config import SystemConfig
from repro.core.dbp import DBPConfig, DynamicBankPartitioning
from repro.sim.system import System
from repro.telemetry import TelemetryRecorder
from repro.workloads import AppProfile, generate_trace

# Not a multiple of either cadence: a boundary landing exactly on the
# horizon would (correctly) not fire, breaking the floor-division asserts.
HORIZON = 85_000
EPOCH = 20_000
QUANTUM = 10_000

HEAVY = AppProfile("heavy", 25.0, 0.7, 4, 0.3, 1)
LIGHT = AppProfile("light", 0.4, 0.6, 2, 0.2, 1)


def _system(recorder=None):
    config = SystemConfig().with_scheduler("tcm", quantum_cycles=QUANTUM)
    profiles = [HEAVY, LIGHT] * ((config.num_cores + 1) // 2)
    traces = [
        generate_trace(profile, seed=1, target_insts=500_000)
        for profile in profiles[: config.num_cores]
    ]
    policy = DynamicBankPartitioning(DBPConfig(epoch_cycles=EPOCH))
    return System(
        config, traces, horizon=HORIZON, policy=policy, telemetry=recorder
    )


def _timed_run(recorder=None):
    system = _system(recorder)
    started = time.perf_counter()
    result = system.run()
    return result, time.perf_counter() - started, system


def bench_t4_telemetry_overhead(benchmark):
    def body():
        # Interleave off/on runs and keep the best of two so a scheduler
        # hiccup on one run cannot fake an overhead regression.
        walls = {"off": [], "on": []}
        results = {}
        recorders = []
        for _ in range(2):
            result, wall, system = _timed_run()
            walls["off"].append(wall)
            results["off"] = result
            assert all(len(c._listeners) == 1 for c in system.controllers)
            recorder = TelemetryRecorder()
            result, wall, _system_on = _timed_run(recorder)
            walls["on"].append(wall)
            results["on"] = result
            recorders.append(recorder)
        return walls, results, recorders

    walls, results, recorders = benchmark.pedantic(body, rounds=1, iterations=1)

    # Telemetry must be invisible to the simulation itself.
    assert results["on"].threads == results["off"].threads
    assert results["on"].total_commands == results["off"].total_commands
    assert results["on"].pages_migrated == results["off"].pages_migrated

    # ... while actually recording the run.
    summary = recorders[-1].summary()
    assert summary["policy_epochs"] == HORIZON // EPOCH
    assert summary["quanta"] == HORIZON // QUANTUM

    off = min(walls["off"])
    on = min(walls["on"])
    overhead = (on - off) / off if off else 0.0
    print()
    print(
        f"T4 telemetry overhead: off={off * 1e3:.1f} ms "
        f"on={on * 1e3:.1f} ms (+{overhead * 100.0:.1f}%)"
    )
    # Generous CI-noise bound; typical overhead is a few percent.
    assert overhead < 0.5
