"""T4 (tooling): telemetry recorder overhead and result neutrality.

Two claims guard the telemetry layer's "free when off, cheap when on"
contract:

* telemetry must never change what the simulation computes — a traced run
  and an untraced run produce identical :class:`SystemResult`s;
* disabled telemetry leaves no probes on the controllers (structurally
  zero per-request cost), and enabled telemetry stays within a small
  constant factor of the untraced run;
* the streaming sink inherits both guarantees: a run that spills every
  epoch to JSONL is still bit-identical to the untraced run, keeps every
  epoch on disk past the ring capacity, and stays within the same
  overhead bound (epoch boundaries are rare, so per-epoch I/O is noise);
* span tracing rides the same contract: an installed flight-recorder
  tracer leaves results bit-identical, records the epoch boundaries,
  and — since its instrumentation only fires at those rare boundaries —
  its overhead stays within a 5% budget (the telemetry bound is far
  looser only because the recorder does real per-epoch work).
"""

from __future__ import annotations

import time

from repro.config import SystemConfig
from repro.core.dbp import DBPConfig, DynamicBankPartitioning
from repro.sim.system import System
from repro.telemetry import (
    SpanTracer,
    TelemetryConfig,
    TelemetryRecorder,
    install_tracer,
    load_stream,
    uninstall_tracer,
)
from repro.workloads import AppProfile, generate_trace

# Not a multiple of either cadence: a boundary landing exactly on the
# horizon would (correctly) not fire, breaking the floor-division asserts.
HORIZON = 85_000
EPOCH = 20_000
QUANTUM = 10_000

HEAVY = AppProfile("heavy", 25.0, 0.7, 4, 0.3, 1)
LIGHT = AppProfile("light", 0.4, 0.6, 2, 0.2, 1)


def _system(recorder=None):
    config = SystemConfig().with_scheduler("tcm", quantum_cycles=QUANTUM)
    profiles = [HEAVY, LIGHT] * ((config.num_cores + 1) // 2)
    traces = [
        generate_trace(profile, seed=1, target_insts=500_000)
        for profile in profiles[: config.num_cores]
    ]
    policy = DynamicBankPartitioning(DBPConfig(epoch_cycles=EPOCH))
    return System(
        config, traces, horizon=HORIZON, policy=policy, telemetry=recorder
    )


def _timed_run(recorder=None):
    system = _system(recorder)
    started = time.perf_counter()
    result = system.run()
    return result, time.perf_counter() - started, system


def bench_t4_telemetry_overhead(benchmark, tmp_path):
    stream_path = tmp_path / "t4-stream.jsonl"

    def body():
        # Interleave off/on/stream runs and keep the best of two so a
        # scheduler hiccup on one run cannot fake an overhead regression.
        walls = {"off": [], "on": [], "stream": [], "spans": []}
        results = {}
        recorders = []
        tracers = []
        for _ in range(2):
            result, wall, system = _timed_run()
            walls["off"].append(wall)
            results["off"] = result
            assert all(len(c._listeners) == 1 for c in system.controllers)
            recorder = TelemetryRecorder()
            result, wall, _system_on = _timed_run(recorder)
            walls["on"].append(wall)
            results["on"] = result
            recorders.append(recorder)
            # Ring of 2 + spill-to-disk: the stressed configuration.
            streamer = TelemetryRecorder(
                TelemetryConfig(capacity=2, stream_path=str(stream_path))
            )
            result, wall, _system_stream = _timed_run(streamer)
            walls["stream"].append(wall)
            results["stream"] = result
            # Flight-recorder spans, no telemetry: isolates the tracer.
            tracer = SpanTracer("bench-t4")
            install_tracer(tracer)
            try:
                result, wall, _system_spans = _timed_run()
            finally:
                uninstall_tracer()
            walls["spans"].append(wall)
            results["spans"] = result
            tracers.append(tracer)
        return walls, results, recorders, tracers

    walls, results, recorders, tracers = benchmark.pedantic(
        body, rounds=1, iterations=1
    )

    # Telemetry must be invisible to the simulation itself — with the ring
    # alone, with the streaming sink spilling every epoch to disk, and
    # with the span tracer installed.
    for mode in ("on", "stream", "spans"):
        assert results[mode].threads == results["off"].threads
        assert results[mode].total_commands == results["off"].total_commands
        assert results[mode].pages_migrated == results["off"].pages_migrated

    # ... while actually recording the run.
    summary = recorders[-1].summary()
    assert summary["policy_epochs"] == HORIZON // EPOCH
    assert summary["quanta"] == HORIZON // QUANTUM

    # The stream kept every epoch despite the 2-slot ring.
    stored = load_stream(str(stream_path))
    assert stored.epochs == summary["epochs"]
    assert len(stored.records) == summary["epochs"]

    # ... and the tracer recorded every epoch boundary on each pass.
    for tracer in tracers:
        epoch_spans = [
            e
            for e in tracer.events()
            if e.get("ph") == "X"
            and e["name"] in ("policy-epoch", "quantum")
        ]
        assert len(epoch_spans) == HORIZON // QUANTUM

    off = min(walls["off"])
    on = min(walls["on"])
    streamed = min(walls["stream"])
    spanned = min(walls["spans"])
    overhead = (on - off) / off if off else 0.0
    stream_overhead = (streamed - off) / off if off else 0.0
    span_overhead = (spanned - off) / off if off else 0.0
    print()
    print(
        f"T4 telemetry overhead: off={off * 1e3:.1f} ms "
        f"on={on * 1e3:.1f} ms (+{overhead * 100.0:.1f}%) "
        f"stream={streamed * 1e3:.1f} ms (+{stream_overhead * 100.0:.1f}%) "
        f"spans={spanned * 1e3:.1f} ms (+{span_overhead * 100.0:.1f}%)"
    )
    # Generous CI-noise bound; typical overhead is a few percent.
    assert overhead < 0.5
    assert stream_overhead < 0.5
    # Span instrumentation fires only at epoch boundaries, so it gets a
    # much tighter budget than the recorder, which does real per-epoch
    # work: 5% over best-of-two interleaved runs.
    assert span_overhead < 0.05
