"""F9 (ablation): DBP demand-estimator ingredients.

Shape: the full estimator is at least as fair as each ablated variant;
the MPKI-proportional strawman (which over-serves streaming threads) does
not beat the BLP-based estimators on fairness.
"""

from repro.experiments import f9_ablation

from conftest import BENCH_FAST_MIXES, run_once, shape_checks_enabled, show


def bench_f9_ablation(runner, benchmark):
    result = run_once(
        benchmark, lambda: f9_ablation(runner, mixes=BENCH_FAST_MIXES)
    )
    show(result)
    rows = {row[0]: row for row in result.rows}
    assert set(rows) == {"full", "blp-only", "mpki", "no-pool"}
    for row in result.rows:
        assert row[1] > 0 and row[2] >= 1.0
    if not shape_checks_enabled():
        return
    # The full estimator's fairness is competitive with every variant
    # (within a noise band), i.e. no ingredient actively hurts.
    best_ms = min(row[2] for row in result.rows)
    assert rows["full"][2] <= best_ms * 1.08
