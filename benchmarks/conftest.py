"""Shared state for the benchmark harness.

One session-scoped Runner backs every bench module: traces, alone-run
baselines, and (mix, approach) results are computed once and shared, so
e.g. the F3 fairness view reuses the F2 throughput runs.

Environment knobs:

* ``REPRO_BENCH_HORIZON`` — simulated CPU cycles per run (default 300000).
  Shape assertions are skipped below 150000 cycles, where run-to-run noise
  exceeds the effects being measured.
* ``REPRO_BENCH_QUICK``   — set to 1 to sweep a single mix per figure.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.sim.runner import Runner
from repro.workloads.mixes import MAIN_MIXES

BENCH_HORIZON = int(os.environ.get("REPRO_BENCH_HORIZON", "300000"))
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Mixes for the headline sweeps (F2-F4).
BENCH_MIXES = ["M4"] if QUICK else list(MAIN_MIXES)
#: Mixes for the secondary sweeps (F5, F6, F8, F9).
BENCH_FAST_MIXES = ["M4"] if QUICK else ["M1", "M4", "M6", "M7", "M10"]
#: Below this horizon the claim deltas drown in noise; only print tables.
ASSERT_HORIZON = 150_000


def shape_checks_enabled() -> bool:
    """True when the horizon is long enough to assert claim shapes."""
    return BENCH_HORIZON >= ASSERT_HORIZON


@pytest.fixture(scope="session")
def runner() -> Runner:
    return Runner(horizon=BENCH_HORIZON)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


RESULTS_DIR = Path(__file__).resolve().parent / "results"


def show(result) -> None:
    """Print an experiment's table and persist it to benchmarks/results/.

    pytest captures the print unless ``-s`` is given; the file copy is what
    EXPERIMENTS.md is written from.
    """
    text = result.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.exp_id}.txt").write_text(text + "\n")
