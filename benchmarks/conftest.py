"""Shared state for the benchmark harness.

One session-scoped Runner backs every bench module: traces, alone-run
baselines, and (mix, approach) results are computed once and shared, so
e.g. the F3 fairness view reuses the F2 throughput runs. The Runner is
backed by the campaign subsystem's persistent result store, so runs also
persist *across* sessions — a repeated benchmark invocation is served from
``benchmarks/results/store/`` and the session summary reports how much
wall-clock the store saved (tracked over time by the BENCH_*.json
trajectories).

Environment knobs:

* ``REPRO_BENCH_HORIZON`` — simulated CPU cycles per run (default 300000).
  Shape assertions are skipped below 150000 cycles, where run-to-run noise
  exceeds the effects being measured.
* ``REPRO_BENCH_QUICK``   — set to 1 to sweep a single mix per figure.
* ``REPRO_BENCH_JOBS``    — worker processes for the sweeps (default 1).
* ``REPRO_BENCH_STORE``   — set to 0 to disable the persistent store.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.campaign import ResultStore
from repro.sim.runner import Runner
from repro.workloads.mixes import MAIN_MIXES

BENCH_HORIZON = int(os.environ.get("REPRO_BENCH_HORIZON", "300000"))
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
STORE_ENABLED = os.environ.get("REPRO_BENCH_STORE", "1") not in ("", "0")

#: Mixes for the headline sweeps (F2-F4).
BENCH_MIXES = ["M4"] if QUICK else list(MAIN_MIXES)
#: Mixes for the secondary sweeps (F5, F6, F8, F9).
BENCH_FAST_MIXES = ["M4"] if QUICK else ["M1", "M4", "M6", "M7", "M10"]
#: Below this horizon the claim deltas drown in noise; only print tables.
ASSERT_HORIZON = 150_000

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The session's persistent campaign store (None when disabled).
STORE = ResultStore(RESULTS_DIR / "store") if STORE_ENABLED else None


def shape_checks_enabled() -> bool:
    """True when the horizon is long enough to assert claim shapes."""
    return BENCH_HORIZON >= ASSERT_HORIZON


@pytest.fixture(scope="session")
def runner() -> Runner:
    return Runner(horizon=BENCH_HORIZON, store=STORE, jobs=BENCH_JOBS)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def show(result) -> None:
    """Print an experiment's table and persist it to benchmarks/results/.

    pytest captures the print unless ``-s`` is given; the file copy is what
    EXPERIMENTS.md is written from.
    """
    text = result.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.exp_id}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Surface campaign-store statistics in the session summary.

    The same numbers land in ``benchmarks/results/store_stats.json`` so the
    BENCH_*.json trajectories can track the cache-driven speedup.
    """
    if STORE is None:
        return
    stats = STORE.stats
    if stats.hits + stats.misses + stats.writes == 0:
        return
    # Writes are counted per process; with REPRO_BENCH_JOBS > 1 they happen
    # in the campaign workers, so report the on-disk entry count too.
    entries = STORE.entry_count()
    terminalreporter.write_sep("-", "campaign result store")
    terminalreporter.write_line(
        f"store {STORE.root}: {entries} entries; {stats.hits} hits, "
        f"{stats.misses} misses, {stats.writes} writes, "
        f"{stats.corrupt} quarantined; "
        f"{stats.wall_saved:.1f}s of simulation served from disk"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "store_stats.json").write_text(
        json.dumps(
            {
                "jobs": BENCH_JOBS,
                "horizon": BENCH_HORIZON,
                "entries": entries,
                **stats.as_dict(),
            },
            indent=2,
        )
        + "\n"
    )
