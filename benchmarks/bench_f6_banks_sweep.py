"""F6 (sensitivity): bank colors per channel.

Shape: DBP's edge over EBP is largest when banks are scarce (8 colors) and
shrinks as banks become plentiful — with many banks per thread, equal
partitioning no longer starves anyone of bank-level parallelism.
"""

from repro.experiments import f6_banks_sweep

from conftest import BENCH_FAST_MIXES, run_once, shape_checks_enabled, show


def bench_f6_banks_sweep(runner, benchmark):
    result = run_once(
        benchmark, lambda: f6_banks_sweep(runner, mixes=BENCH_FAST_MIXES)
    )
    show(result)
    assert result.column("colors") == ["8", "16", "32"]
    for row in result.rows:
        assert all(v > 0 for v in row[1:])
    if not shape_checks_enabled():
        return
    # At the scarcest configuration DBP must not lose to EBP on fairness.
    first = result.rows[0]
    assert first[4] <= first[3] * 1.02  # dbp ms <= ebp ms (2% noise band)
