"""Rank-level constraint tests: tRRD, tFAW, and refresh."""

import pytest

from repro.dram.rank import Rank
from repro.errors import ProtocolError


@pytest.fixture
def rank(timings):
    return Rank(channel_id=0, rank_id=0, num_banks=8, timings=timings)


class TestActivationWindows:
    def test_trrd_spacing(self, rank, timings):
        rank.record_activate(0)
        assert rank.activate_ready_at() == timings.tRRD

    def test_trrd_violation_rejected(self, rank, timings):
        rank.record_activate(0)
        with pytest.raises(ProtocolError):
            rank.record_activate(timings.tRRD - 1)

    def test_tfaw_allows_four(self, rank, timings):
        for i in range(4):
            rank.record_activate(i * timings.tRRD)
        # Fifth must wait for the tFAW window.
        assert rank.activate_ready_at() >= timings.tFAW

    def test_tfaw_violation_rejected(self, rank, timings):
        for i in range(4):
            rank.record_activate(i * timings.tRRD)
        fifth = max(3 * timings.tRRD + timings.tRRD, timings.tFAW - 1)
        if fifth < timings.tFAW:
            with pytest.raises(ProtocolError):
                rank.record_activate(fifth)

    def test_tfaw_window_slides(self, rank, timings):
        times = [0, timings.tRRD, 2 * timings.tRRD, 3 * timings.tRRD]
        for t in times:
            rank.record_activate(t)
        fifth = times[0] + timings.tFAW
        rank.record_activate(max(fifth, times[-1] + timings.tRRD))
        # Sixth constrained by the window starting at times[1].
        assert rank.activate_ready_at() >= times[1] + timings.tFAW


class TestRefresh:
    def test_refresh_due_schedule(self, rank, timings):
        assert not rank.refresh_pending(timings.tREFI - 1)
        assert rank.refresh_pending(timings.tREFI)

    def test_refresh_blocks_banks_for_trfc(self, rank, timings):
        done = rank.refresh(timings.tREFI)
        assert done == timings.tREFI + timings.tRFC
        for bank in rank.banks:
            assert bank.activate_ready_at() >= done

    def test_refresh_schedule_does_not_drift(self, rank, timings):
        # A late refresh still leaves the next one anchored to the grid.
        rank.refresh(timings.tREFI + 500)
        assert rank.next_refresh_due == 2 * timings.tREFI

    def test_refresh_with_open_bank_rejected(self, rank, timings):
        rank.banks[0].activate(0, 5)
        with pytest.raises(ProtocolError):
            rank.refresh(timings.tREFI)

    def test_refresh_disabled(self, timings):
        rank = Rank(0, 0, 4, timings, refresh_enabled=False)
        assert not rank.refresh_pending(10**12)
        with pytest.raises(ProtocolError):
            rank.refresh(100)

    def test_refresh_counter(self, rank, timings):
        rank.refresh(timings.tREFI)
        rank.refresh(2 * timings.tREFI)
        assert rank.stat_refreshes == 2


class TestIntrospection:
    def test_open_row_count(self, rank, timings):
        assert rank.open_row_count() == 0
        rank.banks[0].activate(0, 1)
        rank.banks[3].activate(timings.tRRD, 2)
        assert rank.open_row_count() == 2
        assert not rank.all_banks_idle()
