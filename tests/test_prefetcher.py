"""Stride prefetcher tests: training, emission, page bounding, system path."""

from dataclasses import replace

import pytest

from repro.config import PrefetcherConfig
from repro.cpu.prefetcher import StridePrefetcher
from repro.errors import ConfigError
from repro.sim.system import System
from repro.workloads import AppProfile, generate_trace


def enabled(**overrides):
    base = dict(enabled=True, degree=2, distance=2, table_entries=4)
    base.update(overrides)
    return PrefetcherConfig(**base)


class TestTraining:
    def test_disabled_emits_nothing(self):
        pf = StridePrefetcher(PrefetcherConfig(enabled=False))
        for vline in range(10):
            assert pf.observe(vline) == []

    def test_needs_two_stride_confirmations(self):
        pf = StridePrefetcher(enabled())
        assert pf.observe(0) == []  # allocate entry
        assert pf.observe(1) == []  # first stride observation
        assert pf.observe(2) != []  # second confirmation -> trained

    def test_unit_stride_targets(self):
        pf = StridePrefetcher(enabled(degree=2, distance=2))
        for vline in range(4):
            out = pf.observe(vline)
        assert out == [5, 6]  # vline 3 + stride*(2, 3)

    def test_larger_stride(self):
        pf = StridePrefetcher(enabled(degree=1, distance=1))
        out = []
        for vline in (0, 4, 8, 12):
            out = pf.observe(vline)
        assert out == [16]

    def test_stride_change_resets_confidence(self):
        pf = StridePrefetcher(enabled())
        for vline in (0, 1, 2, 3):
            pf.observe(vline)
        assert pf.observe(10) == []  # broken stride
        assert pf.observe(11) == []  # retrain (confidence 1->2 needs one more)

    def test_zero_stride_never_trains(self):
        pf = StridePrefetcher(enabled())
        for _ in range(5):
            out = pf.observe(7)
        assert out == []


class TestPageBounding:
    def test_prefetch_stops_at_page_boundary(self):
        pf = StridePrefetcher(enabled(degree=4, distance=1))
        out = []
        for vline in range(60, 64):  # approach the 64-line page end
            out = pf.observe(vline)
        assert all(target < 64 for target in out)

    def test_regions_tracked_independently(self):
        pf = StridePrefetcher(enabled(degree=1, distance=1))
        # Interleave two streams in different pages.
        out_a = out_b = []
        for i in range(4):
            out_a = pf.observe(0 + i)
            out_b = pf.observe(128 + i)
        assert out_a and out_b

    def test_table_evicts_lru(self):
        pf = StridePrefetcher(enabled(table_entries=2))
        pf.observe(0)  # region 0
        pf.observe(64)  # region 1
        pf.observe(128)  # region 2 evicts region 0
        assert 0 not in pf._table


class TestConfig:
    @pytest.mark.parametrize(
        "field", ["degree", "distance", "table_entries"]
    )
    def test_nonpositive_rejected(self, field):
        with pytest.raises(ConfigError):
            PrefetcherConfig(**{field: 0})


class TestSystemIntegration:
    def _run(self, small_config, pf_config, seed=3):
        config = replace(small_config, num_cores=1, prefetcher=pf_config)
        profile = AppProfile("stream", 25.0, 0.95, 1, 0.1, 1, burst=2)
        trace = generate_trace(profile, seed=seed, target_insts=300_000)
        system = System(config, [trace], horizon=25_000, validate=True)
        result = system.run()
        return system, result

    def test_prefetching_improves_streaming_ipc(self, small_config):
        _, off = self._run(small_config, PrefetcherConfig(enabled=False))
        _, on = self._run(
            small_config, PrefetcherConfig(enabled=True, degree=4, distance=2)
        )
        assert on.threads[0].ipc > off.threads[0].ipc

    def test_prefetch_traffic_is_protocol_legal(self, small_config):
        # validate=True in _run already asserts this; reaching here = pass.
        self._run(
            small_config, PrefetcherConfig(enabled=True, degree=4, distance=2)
        )

    def test_prefetch_increases_memory_traffic(self, small_config):
        sys_off, off = self._run(small_config, PrefetcherConfig(enabled=False))
        sys_on, on = self._run(
            small_config, PrefetcherConfig(enabled=True, degree=4, distance=2)
        )
        reads_off = sum(c.stats.reads_served for c in sys_off.controllers)
        reads_on = sum(c.stats.reads_served for c in sys_on.controllers)
        # More reads per retired instruction with the prefetcher on.
        assert reads_on / max(1, on.threads[0].retired_insts) > (
            reads_off / max(1, off.threads[0].retired_insts)
        ) * 0.95

    def test_no_inflight_leak(self, small_config):
        system, _ = self._run(
            small_config, PrefetcherConfig(enabled=True, degree=4, distance=2)
        )
        # Every prefetch outstanding at the end is still tracked; nothing
        # negative or duplicated.
        assert all(
            isinstance(waiters, list)
            for waiters in system._prefetch_inflight.values()
        )
