"""Workload trace library: .rtrc format, importers, characterization,
registry, on-disk catalogue, and Runner/store integration."""

from __future__ import annotations

import json
import struct
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign.spec import RunSpec, plan_sweep
from repro.campaign.store import ResultStore, result_digest, run_key
from repro.cpu.trace import Trace, TraceRecord, save_trace
from repro.errors import ConfigError, TraceError
from repro.sim.runner import Runner
from repro.traces import (
    LibraryTraceSource,
    RegisteredTrace,
    TraceLibrary,
    characterize_trace,
    clear_registry,
    detect_format,
    import_champsim,
    import_dramsim,
    import_trace,
    library_digests,
    load_rtrc,
    lookup_registered,
    read_rtrc,
    register_trace,
    registered_names,
    remap_footprint,
    resolve_format,
    save_rtrc,
    skip_warmup,
    slice_records,
    splice_phases,
    unregister_trace,
)
from repro.traces.format import _BLOCK, _PREAMBLE, _RECORD, FORMAT_VERSION, MAGIC
from repro.workloads import (
    APP_PROFILES,
    adhoc_mix,
    app_intensive,
    generate_trace,
    get_profile,
    resolve_mix,
    validate_app,
)
from repro.workloads.synthetic import LINES_PER_PAGE


@pytest.fixture(autouse=True)
def isolated_registry(tmp_path, monkeypatch):
    """Every test gets an empty in-process registry and a private default
    library directory, so autoload can never see the repo's real library."""
    monkeypatch.setenv("REPRO_TRACE_LIBRARY", str(tmp_path / "default-lib"))
    clear_registry()
    yield
    clear_registry()


def simple_trace(name="t"):
    return Trace(
        name,
        [
            TraceRecord(3, 10, False),
            TraceRecord(0, 11, True),
            TraceRecord(5, 12, False),
        ],
    )


# ---------------------------------------------------------------------------
# Trace.digest (core-class satellite).
# ---------------------------------------------------------------------------
class TestTraceDigest:
    def test_digest_is_stable_and_content_only(self):
        a = simple_trace("a")
        b = simple_trace("completely-different-name")
        assert a.digest == b.digest  # name does not enter the digest
        assert len(a.digest) == 64

    def test_digest_changes_with_records(self):
        a = simple_trace()
        b = Trace("t", [TraceRecord(3, 10, False)])
        assert a.digest != b.digest

    def test_digest_sees_write_flag(self):
        a = Trace("t", [TraceRecord(0, 5, False)])
        b = Trace("t", [TraceRecord(0, 5, True)])
        assert a.digest != b.digest

    def test_footprint_lines_cached(self):
        trace = simple_trace()
        assert trace.footprint_lines() == 3
        assert trace._footprint_lines == 3
        assert trace.footprint_lines() == 3


# ---------------------------------------------------------------------------
# .rtrc binary format.
# ---------------------------------------------------------------------------
class TestRtrcFormat:
    def test_roundtrip_simple(self, tmp_path):
        trace = simple_trace("rt")
        path = str(tmp_path / "rt.rtrc")
        digest = save_rtrc(trace, path, provenance={"origin": "unit-test"})
        assert digest == trace.digest
        loaded, header = read_rtrc(path)
        assert loaded.name == "rt"
        assert loaded.records == trace.records
        assert loaded.digest == trace.digest
        assert header["provenance"] == {"origin": "unit-test"}
        assert header["total_insts"] == trace.total_insts

    @pytest.mark.parametrize("app", sorted(APP_PROFILES))
    def test_roundtrip_every_profile(self, tmp_path, app):
        trace = generate_trace(get_profile(app), seed=7, length_override=96)
        path = str(tmp_path / f"{app}.rtrc")
        save_rtrc(trace, path)
        loaded = load_rtrc(path)
        assert loaded.records == trace.records
        assert loaded.name == trace.name
        assert loaded.digest == trace.digest

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        recs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**6),
                st.integers(min_value=0, max_value=2**40),
                st.booleans(),
            ),
            min_size=1,
            max_size=200,
        )
    )
    def test_roundtrip_property(self, tmp_path, recs):
        trace = Trace("prop", [TraceRecord(g, v, w) for g, v, w in recs])
        path = str(tmp_path / "prop.rtrc")
        save_rtrc(trace, path)
        assert load_rtrc(path).records == trace.records

    def test_multiblock_roundtrip(self, tmp_path):
        records = [
            TraceRecord(i % 17, i * 3, i % 5 == 0) for i in range(20_000)
        ]
        trace = Trace("big", records)
        path = str(tmp_path / "big.rtrc")
        save_rtrc(trace, path)
        assert load_rtrc(path).records == records

    def test_oversized_gap_rejected(self, tmp_path):
        trace = Trace("huge", [TraceRecord(2**32, 0, False)])
        with pytest.raises(TraceError, match="32-bit limit"):
            save_rtrc(trace, str(tmp_path / "huge.rtrc"))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rtrc"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(TraceError, match="bad magic"):
            load_rtrc(str(path))
        assert str(path) in _raises_message(load_rtrc, str(path))

    def test_bad_version(self, tmp_path):
        path = tmp_path / "v9.rtrc"
        path.write_bytes(_PREAMBLE.pack(MAGIC, FORMAT_VERSION + 1, 2) + b"{}")
        with pytest.raises(TraceError, match="unsupported .rtrc version"):
            load_rtrc(str(path))

    def test_truncated_preamble(self, tmp_path):
        path = tmp_path / "short.rtrc"
        path.write_bytes(b"RT")
        with pytest.raises(TraceError, match="truncated preamble"):
            load_rtrc(str(path))

    def test_truncated_payload(self, tmp_path):
        trace = simple_trace()
        path = tmp_path / "cut.rtrc"
        save_rtrc(trace, str(path))
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(TraceError, match="truncated"):
            load_rtrc(str(path))

    def test_trailing_data(self, tmp_path):
        trace = simple_trace()
        path = tmp_path / "trail.rtrc"
        save_rtrc(trace, str(path))
        path.write_bytes(path.read_bytes() + b"junk")
        with pytest.raises(TraceError, match="trailing data"):
            load_rtrc(str(path))

    def test_corrupt_header_json(self, tmp_path):
        path = tmp_path / "json.rtrc"
        path.write_bytes(_PREAMBLE.pack(MAGIC, FORMAT_VERSION, 4) + b"{{{{")
        with pytest.raises(TraceError, match="corrupt header JSON"):
            load_rtrc(str(path))

    def test_header_missing_field(self, tmp_path):
        header = json.dumps({"name": "x", "records": "not-an-int"}).encode()
        path = tmp_path / "typed.rtrc"
        path.write_bytes(
            _PREAMBLE.pack(MAGIC, FORMAT_VERSION, len(header)) + header
        )
        with pytest.raises(TraceError, match="mistyped field"):
            load_rtrc(str(path))

    def test_corrupt_flags(self, tmp_path):
        header = json.dumps(
            {"name": "x", "records": 1, "total_insts": 1, "digest": "0" * 64}
        ).encode()
        payload = zlib.compress(_RECORD.pack(0, 1, 7))
        path = tmp_path / "flags.rtrc"
        path.write_bytes(
            _PREAMBLE.pack(MAGIC, FORMAT_VERSION, len(header))
            + header
            + _BLOCK.pack(1, len(payload))
            + payload
        )
        with pytest.raises(TraceError, match="corrupt record flags"):
            load_rtrc(str(path))

    def test_digest_mismatch(self, tmp_path):
        trace = simple_trace()
        path = tmp_path / "tampered.rtrc"
        save_rtrc(trace, str(path))
        data = path.read_bytes()
        fake = "f" * 64 if trace.digest[0] != "f" else "e" * 64
        path.write_bytes(data.replace(trace.digest.encode(), fake.encode()))
        with pytest.raises(TraceError, match="digest mismatch"):
            load_rtrc(str(path))
        # ... but an explicit opt-out still loads the records.
        assert load_rtrc(str(path), verify_digest=False).records == trace.records

    def test_zlib_corruption(self, tmp_path):
        trace = simple_trace()
        path = tmp_path / "zlib.rtrc"
        save_rtrc(trace, str(path))
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError):
            load_rtrc(str(path))


def _raises_message(fn, *args):
    try:
        fn(*args)
    except TraceError as error:
        return str(error)
    raise AssertionError("expected TraceError")


# ---------------------------------------------------------------------------
# Text importers.
# ---------------------------------------------------------------------------
class TestChampsimImporter:
    def test_basic_gap_reconstruction(self, tmp_path):
        path = tmp_path / "c.trace"
        path.write_text(
            "# comment\n"
            "5 0x1000 R\n"
            "6 0x1040 W\n"
            "10 0x2000 R\n"
        )
        trace = import_champsim(str(path))
        assert [r.gap for r in trace.records] == [5, 0, 3]
        assert [r.vline for r in trace.records] == [0x40, 0x41, 0x80]
        assert [r.is_write for r in trace.records] == [False, True, False]
        assert trace.name == "c"

    def test_decimal_addresses_accepted(self, tmp_path):
        path = tmp_path / "d.trace"
        path.write_text("1 4096 READ\n2 4160 WRITE\n")
        trace = import_champsim(str(path), name="named")
        assert trace.name == "named"
        assert [r.vline for r in trace.records] == [64, 65]

    def test_backwards_instr_count(self, tmp_path):
        path = tmp_path / "b.trace"
        path.write_text("10 0x0 R\n5 0x40 R\n")
        with pytest.raises(TraceError, match=rf"{path}:2.*went backwards"):
            import_champsim(str(path))

    def test_wrong_field_count(self, tmp_path):
        path = tmp_path / "w.trace"
        path.write_text("10 0x0\n")
        with pytest.raises(TraceError, match=rf"{path}:1.*expected 3 fields"):
            import_champsim(str(path))

    def test_bad_op(self, tmp_path):
        path = tmp_path / "op.trace"
        path.write_text("1 0x0 R\n2 0x40 Q\n")
        with pytest.raises(TraceError, match=rf"{path}:2.*unknown operation"):
            import_champsim(str(path))

    def test_non_integer_field(self, tmp_path):
        path = tmp_path / "i.trace"
        path.write_text("x 0x0 R\n")
        with pytest.raises(TraceError, match=rf"{path}:1.*non-integer"):
            import_champsim(str(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.trace"
        path.write_text("# nothing here\n\n")
        with pytest.raises(TraceError, match="no trace records"):
            import_champsim(str(path))


class TestDramsimImporter:
    def test_one_ipc_reconstruction(self, tmp_path):
        path = tmp_path / "d.trace"
        path.write_text(
            "0x1000 100 P_MEM_RD\n"
            "0x2000 101 P_MEM_WR\n"
            "0x3000 110 P_FETCH\n"
        )
        trace = import_dramsim(str(path))
        assert [r.gap for r in trace.records] == [0, 0, 8]
        assert [r.is_write for r in trace.records] == [False, True, False]

    def test_backwards_cycle(self, tmp_path):
        path = tmp_path / "b.trace"
        path.write_text("0x0 50 R\n0x40 40 R\n")
        with pytest.raises(TraceError, match=rf"{path}:2.*went backwards"):
            import_dramsim(str(path))

    def test_negative_field(self, tmp_path):
        path = tmp_path / "n.trace"
        path.write_text("0x0 -5 R\n")
        with pytest.raises(TraceError, match=rf"{path}:1.*negative"):
            import_dramsim(str(path))


class TestFormatDetection:
    def test_detect_champsim(self, tmp_path):
        path = tmp_path / "c.trace"
        path.write_text("5 0x1000 R\n")
        assert detect_format(str(path)) == "champsim"

    def test_detect_dramsim(self, tmp_path):
        path = tmp_path / "d.trace"
        path.write_text("0x1000 5 R\n")
        assert detect_format(str(path)) == "dramsim"

    def test_detect_rtrc(self, tmp_path):
        path = tmp_path / "t.rtrc"
        save_rtrc(simple_trace(), str(path))
        assert detect_format(str(path)) == "rtrc"

    def test_detect_native_text(self, tmp_path):
        path = tmp_path / "n.trace"
        save_trace(simple_trace(), str(path))
        assert resolve_format(str(path), "auto") == "text"

    def test_ambiguous_decimal(self, tmp_path):
        path = tmp_path / "a.trace"
        path.write_text("5 1000 R\n")
        with pytest.raises(TraceError, match="ambiguous"):
            detect_format(str(path))

    def test_unknown_format_name(self, tmp_path):
        with pytest.raises(TraceError, match="unknown trace format"):
            resolve_format(str(tmp_path / "x"), "elf")

    def test_import_trace_rename_and_dispatch(self, tmp_path):
        rtrc = tmp_path / "t.rtrc"
        save_rtrc(simple_trace("orig"), str(rtrc))
        trace = import_trace(str(rtrc), name="renamed")
        assert trace.name == "renamed"
        assert trace.records == simple_trace().records


# ---------------------------------------------------------------------------
# Transforms.
# ---------------------------------------------------------------------------
class TestTransforms:
    def test_slice(self):
        trace = simple_trace()
        part = slice_records(trace, 1, 3)
        assert part.records == trace.records[1:3]
        assert "[1:3]" in part.name

    def test_slice_empty_rejected(self):
        with pytest.raises(TraceError, match="is empty"):
            slice_records(simple_trace(), 3, 3)
        with pytest.raises(TraceError, match=">= 0"):
            slice_records(simple_trace(), -1)

    def test_skip_warmup(self):
        trace = simple_trace()  # cumulative insts [4, 5, 11]
        assert skip_warmup(trace, 0) is trace
        assert skip_warmup(trace, 4).records == trace.records[1:]
        assert skip_warmup(trace, 5).records == trace.records[2:]

    def test_skip_warmup_consumes_all(self):
        with pytest.raises(TraceError, match="consumes all"):
            skip_warmup(simple_trace(), 11)

    def test_remap_footprint(self):
        records = [
            TraceRecord(0, page * LINES_PER_PAGE + 3, False)
            for page in range(20)
        ]
        remapped = remap_footprint(Trace("wide", records), max_pages=4)
        pages = {r.vline // LINES_PER_PAGE for r in remapped.records}
        assert pages <= set(range(4))
        # in-page offsets survive the fold
        assert all(r.vline % LINES_PER_PAGE == 3 for r in remapped.records)

    def test_remap_bad_pages(self):
        with pytest.raises(TraceError, match="max_pages"):
            remap_footprint(simple_trace(), 0)

    def test_splice_phases(self):
        a, b = simple_trace("a"), simple_trace("b")
        spliced = splice_phases("ab", a, b)
        assert spliced.name == "ab"
        assert len(spliced) == len(a) + len(b)
        with pytest.raises(TraceError, match="at least one phase"):
            splice_phases("none")


# ---------------------------------------------------------------------------
# Characterization.
# ---------------------------------------------------------------------------
class TestCharacterization:
    def test_intensive_app_measures_intensive(self, small_config):
        trace = generate_trace(get_profile("lbm"), seed=3, target_insts=150_000)
        char = characterize_trace(trace, config=small_config, horizon=30_000)
        assert char.intensive
        assert char.mpki_class == "intensive"
        assert char.mpki > 1.0
        assert char.ipc_alone > 0
        assert char.digest == trace.digest
        assert char.as_dict()["class"] == "intensive"
        assert "measured MPKI" in char.render()

    def test_light_app_measures_light(self, small_config):
        trace = generate_trace(
            get_profile("povray"), seed=3, target_insts=150_000
        )
        char = characterize_trace(trace, config=small_config, horizon=30_000)
        assert not char.intensive
        assert char.mpki_class == "light"


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------
def _entry(name, digest="d" * 64, intensive=True):
    return RegisteredTrace(name=name, digest=digest, intensive=intensive)


class TestRegistry:
    def test_register_lookup_unregister(self):
        register_trace(_entry("myapp"))
        assert lookup_registered("myapp").digest == "d" * 64
        assert "myapp" in registered_names()
        unregister_trace("myapp")
        assert lookup_registered("myapp") is None

    def test_synthetic_collision_rejected(self):
        with pytest.raises(ConfigError, match="collides with a synthetic"):
            register_trace(_entry("lbm"))
        register_trace(_entry("lbm"), override=True)  # deliberate shadow
        assert lookup_registered("lbm") is not None

    def test_differing_digest_reregistration_rejected(self):
        register_trace(_entry("x", "a" * 64))
        register_trace(_entry("x", "a" * 64))  # same digest: idempotent
        with pytest.raises(ConfigError, match="already registered"):
            register_trace(_entry("x", "b" * 64))

    def test_library_digests_skips_synthetic(self):
        register_trace(_entry("real", "c" * 64))
        digests = library_digests(["real", "lbm", "gcc"])
        assert digests == {"real": "c" * 64}

    def test_validate_and_intensity_see_registry(self):
        with pytest.raises(ConfigError, match="unknown app"):
            validate_app("ghost")
        register_trace(_entry("ghost", intensive=False))
        validate_app("ghost")
        assert app_intensive("ghost") is False
        assert app_intensive("lbm") is True  # synthetic path untouched

    def test_adhoc_mix_with_library_app(self):
        register_trace(_entry("ghost"))
        mix = adhoc_mix("ghost+gcc")
        assert mix.apps == ("ghost", "gcc")
        assert mix.intensive_count() == 1  # ghost intensive, gcc light
        assert resolve_mix("ghost+gcc").apps == mix.apps
        assert resolve_mix("M1").name == "M1"

    def test_load_without_backing_file(self):
        register_trace(_entry("nofile"))
        with pytest.raises(ConfigError, match="no backing file"):
            lookup_registered("nofile").load()


# ---------------------------------------------------------------------------
# On-disk library.
# ---------------------------------------------------------------------------
class TestTraceLibrary:
    def _import(self, tmp_path, name="ext", **kwargs):
        src = tmp_path / "src.trace"
        src.write_text("".join(f"{i * 9} {0x1000 + i * 64:#x} R\n"
                               for i in range(1, 60)))
        library = TraceLibrary(tmp_path / "lib")
        kwargs.setdefault("characterize", False)
        return library, library.import_file(str(src), name=name, **kwargs)

    def test_import_file_end_to_end(self, tmp_path):
        library, entry = self._import(tmp_path)
        assert entry.name == "ext"
        assert entry.source_format == "champsim"  # resolved, never "auto"
        assert (library.root / "ext.rtrc").is_file()
        assert library.entry("ext")["digest"] == entry.digest
        # registered as an app
        assert lookup_registered("ext").digest == entry.digest
        # a fresh handle on the same directory sees the persisted entry
        fresh = TraceLibrary(library.root)
        assert fresh.names() == ["ext"]
        assert fresh.get("ext").digest == entry.digest

    def test_import_with_characterization(self, tmp_path, small_config):
        library = TraceLibrary(tmp_path / "lib")
        trace = generate_trace(
            get_profile("lbm"), seed=5, target_insts=150_000
        )
        trace = Trace("measured", trace.records)
        entry = library.add(
            trace, characterize=True, config=small_config, horizon=30_000
        )
        assert entry.intensive
        assert entry.characterization["mpki"] > 1.0
        assert library.entry("measured")["class"] == "intensive"

    def test_add_without_characterization_uses_intrinsic(self, tmp_path):
        library = TraceLibrary(tmp_path / "lib")
        sparse = Trace("sparse", [TraceRecord(100_000, 1, False)])
        entry = library.add(sparse, characterize=False)
        assert not entry.intensive
        assert library.entry("sparse")["class"] == "light"

    def test_name_conflict_needs_override(self, tmp_path):
        library, _ = self._import(tmp_path)
        other = Trace("ext", [TraceRecord(1, 2, False)])
        with pytest.raises(ConfigError, match="already exists"):
            library.add(other, characterize=False)
        entry = library.add(other, characterize=False, override=True)
        assert library.entry("ext")["digest"] == entry.digest

    def test_invalid_name_rejected(self, tmp_path):
        library = TraceLibrary(tmp_path / "lib")
        with pytest.raises(ConfigError, match="invalid library trace name"):
            library.add(
                Trace("a/b", [TraceRecord(0, 1, False)]), characterize=False
            )

    def test_export_rtrc_and_text(self, tmp_path):
        library, entry = self._import(tmp_path)
        out_rtrc = tmp_path / "out.rtrc"
        out_text = tmp_path / "out.trace"
        library.export("ext", str(out_rtrc), fmt="rtrc")
        library.export("ext", str(out_text), fmt="text")
        assert load_rtrc(str(out_rtrc)).digest == entry.digest
        assert import_trace(str(out_text), fmt="text").digest == entry.digest
        with pytest.raises(TraceError, match="unknown export format"):
            library.export("ext", str(out_rtrc), fmt="yaml")

    def test_unknown_name(self, tmp_path):
        library = TraceLibrary(tmp_path / "lib")
        with pytest.raises(ConfigError, match="unknown library trace"):
            library.entry("nope")

    def test_corrupt_manifest(self, tmp_path):
        root = tmp_path / "lib"
        root.mkdir()
        (root / "manifest.json").write_text("{broken")
        with pytest.raises(ConfigError, match="corrupt library manifest"):
            TraceLibrary(root).entries()

    def test_manifest_digest_guard(self, tmp_path):
        library, entry = self._import(tmp_path)
        # Overwrite the .rtrc behind the manifest's back.
        save_rtrc(
            Trace("ext", [TraceRecord(1, 1, False)]),
            str(library.path_for("ext")),
        )
        with pytest.raises(TraceError, match="does not match the manifest"):
            TraceLibrary(library.root).get("ext")

    def test_default_library_autoload(self, tmp_path, monkeypatch):
        root = tmp_path / "auto-lib"
        monkeypatch.setenv("REPRO_TRACE_LIBRARY", str(root))
        TraceLibrary(root).add(simple_trace("autoapp"), characterize=False)
        clear_registry()  # drop the registration made by add()
        assert lookup_registered("autoapp", autoload=False) is None
        entry = lookup_registered("autoapp")  # triggers the one-shot autoload
        assert entry is not None
        assert entry.load().records == simple_trace().records


# ---------------------------------------------------------------------------
# Runner + store integration.
# ---------------------------------------------------------------------------
class TestRunnerIntegration:
    def _runner(self, small_config, **kwargs):
        return Runner(
            config=small_config,
            horizon=20_000,
            target_insts=120_000,
            **kwargs,
        )

    def test_roundtrip_run_fidelity(self, tmp_path, small_config):
        """Synthetic -> export .rtrc -> import -> run: bit-identical result."""
        baseline = self._runner(small_config)
        native = baseline.run_apps(["lbm", "gcc"], "dbp")
        synthetic_key = baseline._store_key(["lbm", "gcc"], "dbp")
        assert baseline.library_digests(["lbm", "gcc"]) == {}

        # Export the exact synthetic trace and re-register it (deliberate
        # shadow) as a library trace under the same name.
        native_trace = baseline.trace_for("lbm")
        native_trace_digest = native_trace.digest
        path = str(tmp_path / "lbm.rtrc")
        save_rtrc(native_trace, path)
        library = TraceLibrary(tmp_path / "lib")
        library.add(load_rtrc(path), characterize=False, override=True)

        replay = self._runner(small_config)
        assert replay.trace_for("lbm").records == native_trace.records
        imported = replay.run_apps(["lbm", "gcc"], "dbp")
        assert result_digest(imported) == result_digest(native)

        # ... but the store addresses differ: the library run is keyed by
        # content digest, the synthetic one by (profile, seed, length).
        library_key = replay._store_key(["lbm", "gcc"], "dbp")
        assert library_key != synthetic_key
        assert replay.library_digests(["lbm", "gcc"]) == {
            "lbm": native_trace_digest
        }

    def test_library_trace_runs_under_all_approaches(
        self, tmp_path, small_config
    ):
        trace = generate_trace(get_profile("milc"), seed=9, target_insts=120_000)
        TraceLibrary(tmp_path / "lib").add(
            Trace("imported", trace.records), characterize=False
        )
        runner = self._runner(small_config)
        for approach in ("shared-frfcfs", "ebp", "dbp"):
            result = runner.run_apps(["imported", "gcc"], approach)
            assert result.metrics.weighted_speedup > 0

    def test_library_source_rejects_unknown(self, small_config):
        runner = self._runner(small_config, trace_source=LibraryTraceSource())
        with pytest.raises(ConfigError, match="unknown library trace"):
            runner.trace_for("lbm")

    def test_run_cache_key_sees_digest(self, small_config):
        runner = self._runner(small_config)
        plain = runner.run_cache_key(["lbm", "gcc"], "dbp")
        register_trace(_entry("lbm", "1" * 64, True), override=True)
        shadowed = runner.run_cache_key(["lbm", "gcc"], "dbp")
        assert plain != shadowed
        assert ("lbm", "1" * 64) in shadowed[-1]

    def test_store_hit_resets_last_profile_and_telemetry(
        self, tmp_path, small_config
    ):
        store = ResultStore(tmp_path / "store")
        runner = self._runner(small_config, store=store, profile=True)
        runner.run_apps(["lbm", "gcc"], "dbp")
        assert runner.last_profile is not None

        fresh = self._runner(small_config, store=store, profile=True)
        fresh.run_apps(["bzip2", "gcc"], "dbp")  # simulate: profile set
        assert fresh.last_profile is not None
        result = fresh.run_apps(["lbm", "gcc"], "dbp")  # served from store
        assert store.stats.hits == 1
        assert result.metrics.weighted_speedup > 0
        assert fresh.last_profile is None
        assert fresh.last_telemetry is None


# ---------------------------------------------------------------------------
# Campaign spec / store keys.
# ---------------------------------------------------------------------------
class TestCampaignKeys:
    def test_run_key_digest_folding(self, small_config):
        plain = run_key(
            small_config, ["a", "b"], "dbp",
            seed=1, horizon=10_000, target_insts=100_000,
        )
        empty = run_key(
            small_config, ["a", "b"], "dbp",
            seed=1, horizon=10_000, target_insts=100_000, trace_digests={},
        )
        salted = run_key(
            small_config, ["a", "b"], "dbp",
            seed=1, horizon=10_000, target_insts=100_000,
            trace_digests={"a": "9" * 64},
        )
        assert plain == empty  # all-synthetic keys unchanged
        assert salted != plain

    def test_runspec_key_carries_digests(self, small_config):
        base = dict(
            apps=("a", "b"), approach="dbp", config=small_config,
            seed=1, horizon=10_000, target_insts=100_000,
        )
        plain = RunSpec(**base)
        salted = RunSpec(trace_digests=(("a", "9" * 64),), **base)
        assert plain.key() != salted.key()
        assert plain.key() == run_key(
            small_config, ["a", "b"], "dbp",
            seed=1, horizon=10_000, target_insts=100_000,
        )

    def test_plan_sweep_fills_library_digests(self, small_config):
        register_trace(_entry("ghost", "7" * 64))
        runner = Runner(config=small_config, horizon=10_000,
                        target_insts=100_000)
        specs = plan_sweep(runner, ["ghost+gcc"], ["dbp"])
        assert specs[0].apps == ("ghost", "gcc")
        assert specs[0].trace_digests == (("ghost", "7" * 64),)
        assert specs[0].key() == runner._store_key(["ghost", "gcc"], "dbp")

    def test_result_digest_discriminates(self, small_config):
        runner = Runner(config=small_config, horizon=20_000,
                        target_insts=120_000)
        a = runner.run_apps(["lbm", "gcc"], "dbp")
        b = runner.run_apps(["lbm", "gcc"], "ebp")
        assert result_digest(a) == result_digest(a)
        assert result_digest(a) != result_digest(b)


# ---------------------------------------------------------------------------
# CLI verbs.
# ---------------------------------------------------------------------------
class TestTracesCli:
    def _import_sample(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "s.trace"
        src.write_text("".join(f"{i * 40} {0x2000 + i * 64:#x} R\n"
                               for i in range(1, 80)))
        lib = str(tmp_path / "cli-lib")
        rc = main([
            "traces", "import", str(src),
            "--library", lib, "--name", "cliapp", "--no-characterize",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "imported 'cliapp'" in out
        assert "digest:" in out
        return lib

    def test_import_list_info_export(self, tmp_path, capsys):
        from repro.cli import main

        lib = self._import_sample(tmp_path, capsys)
        assert main(["traces", "list", "--library", lib]) == 0
        assert "cliapp" in capsys.readouterr().out
        assert main(["traces", "info", "cliapp", "--library", lib]) == 0
        assert "source format: champsim" in capsys.readouterr().out
        dest = str(tmp_path / "out.rtrc")
        assert main([
            "traces", "export", "cliapp", "--library", lib, "--to", dest,
        ]) == 0
        assert load_rtrc(dest).name == "cliapp"

    def test_list_empty_library(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["traces", "list", "--library", str(tmp_path / "e")]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_import_error_reported_not_raised(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.trace"
        bad.write_text("5 0x0 R\n3 0x40 R\n")  # instr count goes backwards
        rc = main([
            "traces", "import", str(bad),
            "--library", str(tmp_path / "lib"),
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert f"{bad}:2" in err  # file:line diagnostic, no traceback

    def test_gen_traces_rtrc(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "gen-traces", "povray", "--out", str(tmp_path),
            "--format", "rtrc",
        ])
        assert rc == 0
        loaded, header = read_rtrc(str(tmp_path / "povray.rtrc"))
        assert loaded.name == "povray"
        assert header["provenance"]["source_format"] == "synthetic"

    def test_legacy_analyze_form_still_works(self, capsys):
        from repro.cli import main

        assert main(["traces", "gcc"]) == 0
        assert "intrinsic MPKI" in capsys.readouterr().out
