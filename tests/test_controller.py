"""Channel controller integration tests with scripted requests."""

import pytest

from repro.config import ControllerConfig
from repro.dram.channel import Channel
from repro.dram.commands import CommandType
from repro.dram.timing import DDR3_1066
from repro.dram.validator import ProtocolValidator
from repro.mapping import MemLocation
from repro.memctrl.controller import ChannelController
from repro.memctrl.request import Request
from repro.memctrl.schedulers import make_scheduler
from repro.sim.engine import Engine


def make_setup(
    scheduler="frfcfs",
    num_threads=2,
    refresh=True,
    horizon=200_000,
    **ctl_overrides,
):
    engine = Engine(horizon)
    channel = Channel(0, 1, 4, DDR3_1066, clock_ratio=1, refresh_enabled=refresh)
    channel.enable_logging()
    config = ControllerConfig(
        read_queue_depth=32,
        write_queue_depth=32,
        write_high_watermark=8,
        write_low_watermark=2,
        refresh_enabled=refresh,
        **ctl_overrides,
    )
    sched = make_scheduler(scheduler, num_threads=num_threads)
    controller = ChannelController(channel, config, sched, engine)
    return engine, channel, controller


def req(thread, bank, row, col=0, write=False, arrival=0, on_complete=None):
    return Request(
        thread_id=thread,
        is_write=write,
        line_addr=(row * 4 + bank) * 128 + col,
        loc=MemLocation(channel=0, rank=0, bank=bank, row=row, col=col),
        arrival=arrival,
        on_complete=on_complete,
    )


class TestBasicService:
    def test_single_read_completes(self):
        engine, channel, controller = make_setup(refresh=False)
        done = []
        controller.enqueue(req(0, 0, 5, on_complete=done.append), 0)
        engine.run()
        t = DDR3_1066
        assert done == [t.tRCD + t.CL + t.tBURST]
        assert controller.stats.reads_served == 1
        assert controller.stats.row_hits == 0
        assert controller.stats.row_misses == 1

    def test_row_hit_second_request(self):
        engine, channel, controller = make_setup(refresh=False)
        done = []
        controller.enqueue(req(0, 0, 5, col=0, on_complete=done.append), 0)
        controller.enqueue(req(0, 0, 5, col=1, on_complete=done.append), 0)
        engine.run()
        assert controller.stats.row_hits == 1
        assert len(done) == 2

    def test_row_conflict_precharges(self):
        engine, channel, controller = make_setup(refresh=False)
        done = []
        controller.enqueue(req(0, 0, 5, on_complete=done.append), 0)
        controller.enqueue(req(0, 0, 9, on_complete=done.append), 0)
        engine.run()
        kinds = [c.kind for c in channel.command_log]
        assert kinds.count(CommandType.PRECHARGE) >= 1
        assert kinds.count(CommandType.ACTIVATE) == 2
        assert len(done) == 2

    def test_banks_overlap(self):
        engine, channel, controller = make_setup(refresh=False)
        done = []
        for bank in range(4):
            controller.enqueue(req(0, bank, 1, on_complete=done.append), 0)
        engine.run()
        # Bank-parallel service: total time far below 4x serial tRC.
        assert max(done) < 4 * DDR3_1066.tRC

    def test_commands_are_protocol_legal(self):
        engine, channel, controller = make_setup(refresh=False)
        for i in range(20):
            controller.enqueue(req(0, i % 4, i % 3, col=i, write=i % 2 == 0), 0)
        engine.run()
        validator = ProtocolValidator(DDR3_1066, 1, 4)
        validator.observe_all(channel.command_log)


class TestAnalyticBounds:
    def test_row_hit_stream_runs_at_tccd_rate(self):
        # A stream of same-row reads is bounded by tCCD: after the first
        # CAS, subsequent CAS commands issue exactly tCCD apart.
        engine, channel, controller = make_setup(refresh=False)
        for col in range(10):
            controller.enqueue(req(0, 0, 5, col=col), 0)
        engine.run()
        cas_times = [
            c.cycle
            for c in channel.command_log
            if c.kind is CommandType.READ
        ]
        assert len(cas_times) == 10
        gaps = [b - a for a, b in zip(cas_times, cas_times[1:])]
        assert all(g == DDR3_1066.tCCD for g in gaps)

    def test_closed_bank_random_rows_bounded_by_trc(self):
        # Serial row conflicts in one bank cannot beat the tRC limit.
        engine, channel, controller = make_setup(refresh=False)
        for row in range(8):
            controller.enqueue(req(0, 0, row, arrival=0), 0)
        engine.run()
        act_times = [
            c.cycle
            for c in channel.command_log
            if c.kind is CommandType.ACTIVATE
        ]
        gaps = [b - a for a, b in zip(act_times, act_times[1:])]
        assert all(g >= DDR3_1066.tRC for g in gaps)


class TestFRFCFSOrdering:
    def test_row_hit_served_before_older_conflict(self):
        engine, channel, controller = make_setup(refresh=False)
        order = []
        # Open row 5 in bank 0 first.
        controller.enqueue(req(0, 0, 5, on_complete=lambda c: order.append("warm")), 0)
        engine.run(until=100)
        # Older request conflicts (row 9); younger hits row 5.
        controller.enqueue(
            req(1, 0, 9, arrival=100, on_complete=lambda c: order.append("conflict")),
            100,
        )
        controller.enqueue(
            req(0, 0, 5, col=3, arrival=101, on_complete=lambda c: order.append("hit")),
            101,
        )
        engine.run()
        assert order == ["warm", "hit", "conflict"]


class TestWriteDrain:
    def test_reads_prioritized_below_watermark(self):
        engine, channel, controller = make_setup(refresh=False)
        # 4 writes (below the high watermark of 8) arrive first, then a
        # read: the read must still be served before any write drains.
        for i in range(4):
            controller.enqueue(req(0, 1, 2, col=i, write=True), 0)
        controller.enqueue(req(0, 0, 1, on_complete=lambda c: None), 0)
        engine.run()
        log = controller.channel.command_log
        first_read = next(
            i for i, c in enumerate(log) if c.kind is CommandType.READ
        )
        first_write = next(
            i for i, c in enumerate(log) if c.kind is CommandType.WRITE
        )
        assert first_read < first_write

    def test_drain_triggers_at_high_watermark(self):
        engine, channel, controller = make_setup(refresh=False)
        for i in range(9):  # above high watermark 8
            controller.enqueue(req(0, i % 4, 2, col=i, write=True), 0)
        engine.run()
        assert controller.stats.writes_served >= 7  # drained to low mark

    def test_writes_served_when_no_reads(self):
        engine, channel, controller = make_setup(refresh=False)
        controller.enqueue(req(0, 0, 1, write=True), 0)
        engine.run()
        assert controller.stats.writes_served == 1


class TestRefresh:
    def test_refresh_issued_on_schedule(self):
        engine, channel, controller = make_setup(horizon=3 * DDR3_1066.tREFI)
        engine.run()
        assert channel.ranks[0].stat_refreshes >= 2

    def test_refresh_precharges_open_banks_first(self):
        engine, channel, controller = make_setup(horizon=2 * DDR3_1066.tREFI)
        controller.enqueue(req(0, 0, 5), 0)  # leaves row 5 open
        engine.run()
        kinds = [c.kind for c in channel.command_log]
        ref_index = kinds.index(CommandType.REFRESH)
        assert CommandType.PRECHARGE in kinds[:ref_index]

    def test_stream_with_refresh_is_protocol_legal(self):
        engine, channel, controller = make_setup(horizon=3 * DDR3_1066.tREFI)
        for i in range(30):
            controller.enqueue(
                req(0, i % 4, i % 5, col=i, arrival=i * 317), i * 317
            )
        engine.run()
        validator = ProtocolValidator(DDR3_1066, 1, 4)
        validator.observe_all(channel.command_log)


class TestStats:
    def test_per_thread_accounting(self):
        engine, channel, controller = make_setup(refresh=False)
        controller.enqueue(req(0, 0, 1), 0)
        controller.enqueue(req(1, 1, 1), 0)
        controller.enqueue(req(1, 2, 1, write=True), 0)
        engine.run()
        stats = controller.stats
        assert stats.per_thread_reads == {0: 1, 1: 1}
        assert stats.per_thread_writes == {1: 1}
        assert stats.reads_served == 2
        assert stats.writes_served == 1

    def test_latency_accounting(self):
        engine, channel, controller = make_setup(refresh=False)
        controller.enqueue(req(0, 0, 1), 0)
        engine.run()
        assert controller.stats.read_latency_sum >= 0
        assert controller.stats.row_hit_rate == 0.0

    def test_listener_hooks_called(self):
        engine, channel, controller = make_setup(refresh=False)
        events = []

        class Listener:
            def on_arrival(self, request, now):
                events.append(("arrive", request.req_id))

            def on_cas(self, request, now, row_hit, data_end=None):
                events.append(("cas", request.req_id, row_hit))

        controller.add_listener(Listener())
        controller.enqueue(req(0, 0, 1), 0)
        engine.run()
        assert events[0][0] == "arrive"
        assert events[1][0] == "cas"
        assert events[1][2] is False

    def test_wrong_channel_rejected(self):
        engine, channel, controller = make_setup(refresh=False)
        bad = Request(
            thread_id=0,
            is_write=False,
            line_addr=0,
            loc=MemLocation(channel=1, rank=0, bank=0, row=0, col=0),
            arrival=0,
        )
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            controller.enqueue(bad, 0)
