"""Searcher properties: determinism, bounds, and halving promotion."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.tuner.searchers import (
    STRATEGIES,
    HalvingSearcher,
    TrialPoint,
    make_searcher,
)
from repro.tuner.space import ParameterSpace, Tunable

SPACE = ParameterSpace(
    approach="toy",
    tunables=(
        Tunable(name="n", kind="int", default=100, low=10, high=1000,
                log=True),
        Tunable(name="f", kind="float", default=0.5, low=0.1, high=0.9),
        Tunable(name="c", kind="choice", default="a", choices=("a", "b", "x"),
                target="scheduler"),
    ),
)


def _score(point: TrialPoint) -> float:
    """A deterministic pseudo-objective (no simulator involved)."""
    params = point.params_dict()
    return float(params["n"]) * params["f"] % 7.0


def _drive(searcher):
    """Run a searcher to exhaustion against the pseudo-objective."""
    sequence = []
    while True:
        point = searcher.propose()
        if point is None:
            break
        searcher.observe(point, _score(point))
        sequence.append(point)
    return sequence


class TestDeterminism:
    @given(
        strategy=st.sampled_from(sorted(STRATEGIES)),
        budget=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_seed_replays_identical_sequence(self, strategy, budget,
                                                  seed):
        first = _drive(make_searcher(strategy, SPACE, budget, seed))
        second = _drive(make_searcher(strategy, SPACE, budget, seed))
        assert first == second

    def test_different_seeds_diverge(self):
        a = _drive(make_searcher("random", SPACE, 8, seed=1))
        b = _drive(make_searcher("random", SPACE, 8, seed=2))
        assert a != b


class TestBounds:
    @given(
        strategy=st.sampled_from(sorted(STRATEGIES)),
        budget=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_proposal_is_in_bounds(self, strategy, budget, seed):
        for point in _drive(make_searcher(strategy, SPACE, budget, seed)):
            params = point.params_dict()
            assert SPACE.coerce_point(params) == params
            assert 10 <= params["n"] <= 1000
            assert isinstance(params["n"], int)
            assert 0.1 <= params["f"] <= 0.9
            assert params["c"] in ("a", "b", "x")

    @given(
        strategy=st.sampled_from(sorted(STRATEGIES)),
        budget=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_budget_is_respected(self, strategy, budget, seed):
        assert len(_drive(make_searcher(strategy, SPACE, budget, seed))) \
            <= budget


class TestHalving:
    @given(
        budget=st.integers(min_value=2, max_value=40),
        fraction=st.floats(min_value=0.05, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=80, deadline=None)
    def test_promotes_exactly_the_configured_fraction(self, budget, fraction,
                                                      seed):
        searcher = HalvingSearcher(
            SPACE, budget, seed, survivor_fraction=fraction
        )
        sequence = _drive(searcher)
        screened = [p for p in sequence if p.rung == 0]
        promoted = [p for p in sequence if p.rung == 1]
        assert len(screened) == searcher.cohort
        expected = min(
            max(1, math.ceil(searcher.cohort * fraction)),
            budget - searcher.cohort,
        )
        assert len(promoted) == expected
        assert len(sequence) <= budget

    def test_promotes_the_top_scored_points(self):
        searcher = HalvingSearcher(SPACE, 6, seed=3, survivor_fraction=0.25)
        sequence = _drive(searcher)
        screened = {p.trial_id: p for p in sequence if p.rung == 0}
        promoted = [p for p in sequence if p.rung == 1]
        best = max(screened.values(), key=lambda p: (_score(p), -p.trial_id))
        assert promoted[0].params == best.params
        assert promoted[0].parent == best.trial_id
        assert promoted[0].fidelity == 1.0

    def test_screening_runs_at_reduced_fidelity(self):
        searcher = HalvingSearcher(SPACE, 6, seed=3, screen_fidelity=0.2)
        point = searcher.propose()
        assert point.fidelity == 0.2
        assert point.rung == 0

    def test_failed_trials_are_never_promoted_over_scored_ones(self):
        searcher = HalvingSearcher(SPACE, 6, seed=3)
        scored = []
        while True:
            point = searcher.propose()
            if point is None:
                break
            if point.rung == 0 and point.trial_id == 1:
                searcher.observe(point, None)  # first screening trial fails
            else:
                searcher.observe(point, _score(point))
                scored.append(point)
        promoted = [p for p in scored if p.rung == 1]
        assert promoted and all(p.parent != 1 for p in promoted)

    def test_promotion_before_observation_is_an_error(self):
        searcher = HalvingSearcher(SPACE, 6, seed=3)
        for _ in range(searcher.cohort):
            searcher.propose()  # never observed
        with pytest.raises(ConfigError, match="cannot promote"):
            searcher.propose()

    def test_bad_fractions_rejected(self):
        with pytest.raises(ConfigError, match="survivor_fraction"):
            HalvingSearcher(SPACE, 6, survivor_fraction=0.0)
        with pytest.raises(ConfigError, match="screen_fidelity"):
            HalvingSearcher(SPACE, 6, screen_fidelity=1.5)


class TestConstruction:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError, match="unknown search strategy"):
            make_searcher("annealing", SPACE, 4, 1)

    def test_zero_budget_rejected(self):
        with pytest.raises(ConfigError, match="budget"):
            make_searcher("random", SPACE, 0, 1)

    def test_empty_space_rejected(self):
        empty = ParameterSpace(approach="none")
        with pytest.raises(ConfigError, match="no tunables"):
            make_searcher("random", empty, 4, 1)
