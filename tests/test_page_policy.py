"""Closed-page controller policy tests."""

from dataclasses import replace

import pytest

from repro.config import ControllerConfig
from repro.errors import ConfigError
from repro.sim.system import System
from repro.workloads import AppProfile, generate_trace


def run(small_config, page_policy, seed=5):
    controller = replace(small_config.controller, page_policy=page_policy)
    config = replace(small_config, controller=controller)
    profile = AppProfile("mixed", 20.0, 0.7, 3, 0.3, 1, burst=3)
    traces = [
        generate_trace(profile, seed=seed + t, target_insts=300_000)
        for t in range(2)
    ]
    system = System(config, traces, horizon=20_000, validate=True)
    result = system.run()
    return system, result


class TestClosedPage:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ControllerConfig(page_policy="ajar")

    def test_closed_run_is_protocol_legal(self, small_config):
        run(small_config, "closed")  # validate=True checks every command

    def test_closed_lowers_row_hit_rate(self, small_config):
        _, open_result = run(small_config, "open")
        _, closed_result = run(small_config, "closed")
        open_rbh = open_result.threads[0].row_hit_rate
        closed_rbh = closed_result.threads[0].row_hit_rate
        assert closed_rbh < open_rbh

    def test_closed_issues_more_precharges(self, small_config):
        sys_open, _ = run(small_config, "open")
        sys_closed, _ = run(small_config, "closed")
        def precharges(system):
            return sum(
                bank.stat_precharges
                for channel in system.channels
                for rank in channel.ranks
                for bank in rank.banks
            )
        assert precharges(sys_closed) > precharges(sys_open)

    def test_closed_banks_end_mostly_idle(self, small_config):
        system, _ = run(small_config, "closed")
        # The sweep closes stale rows; at most the very last requests'
        # banks may still be open.
        open_rows = sum(
            rank.open_row_count()
            for channel in system.channels
            for rank in channel.ranks
        )
        total_banks = small_config.organization.total_banks
        assert open_rows < total_banks

    def test_both_policies_serve_all_requests(self, small_config):
        sys_open, open_result = run(small_config, "open")
        sys_closed, closed_result = run(small_config, "closed")
        assert closed_result.threads[0].reads > 0
        for system in (sys_open, sys_closed):
            for controller in system.controllers:
                assert controller.stats.reads_served > 0
