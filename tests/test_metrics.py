"""Metric math tests."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    harmonic_speedup,
    max_slowdown,
    slowdowns,
    summarize,
    weighted_speedup,
)


ALONE = {0: 2.0, 1: 1.0}
SHARED = {0: 1.0, 1: 0.5}


class TestBasics:
    def test_slowdowns(self):
        assert slowdowns(ALONE, SHARED) == {0: 2.0, 1: 2.0}

    def test_weighted_speedup(self):
        assert weighted_speedup(ALONE, SHARED) == pytest.approx(1.0)

    def test_max_slowdown(self):
        shared = {0: 1.0, 1: 0.25}
        assert max_slowdown(ALONE, shared) == pytest.approx(4.0)

    def test_harmonic_speedup(self):
        assert harmonic_speedup(ALONE, SHARED) == pytest.approx(0.5)

    def test_no_interference_is_ideal(self):
        assert weighted_speedup(ALONE, ALONE) == pytest.approx(2.0)
        assert max_slowdown(ALONE, ALONE) == pytest.approx(1.0)
        assert harmonic_speedup(ALONE, ALONE) == pytest.approx(1.0)

    def test_summarize_bundles_all(self):
        summary = summarize(ALONE, SHARED)
        assert summary.weighted_speedup == pytest.approx(1.0)
        assert summary.max_slowdown == pytest.approx(2.0)
        assert summary.harmonic_speedup == pytest.approx(0.5)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup({}, {})

    def test_mismatched_threads_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup({0: 1.0}, {1: 1.0})

    def test_zero_alone_ipc_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup({0: 0.0}, {0: 1.0})

    def test_zero_shared_ipc_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup({0: 1.0}, {0: 0.0})


class TestProperties:
    @given(
        st.dictionaries(
            st.integers(0, 7),
            st.tuples(st.floats(0.01, 10), st.floats(0.01, 10)),
            min_size=1,
            max_size=8,
        )
    )
    def test_bounds(self, ipcs):
        alone = {t: a for t, (a, _) in ipcs.items()}
        shared = {t: s for t, (_, s) in ipcs.items()}
        n = len(ipcs)
        ws = weighted_speedup(alone, shared)
        ms = max_slowdown(alone, shared)
        hs = harmonic_speedup(alone, shared)
        assert 0 < ws
        assert ms >= max(1e-9, min(slowdowns(alone, shared).values()))
        assert hs <= n / ms * n  # loose sanity bound
        # HS is bounded by the worst thread's speedup times N.
        assert hs <= n / ms + 1e-9 or n == 1

    @given(st.dictionaries(st.integers(0, 7), st.floats(0.01, 10), min_size=1))
    def test_identity_when_no_slowdown(self, alone):
        assert max_slowdown(alone, alone) == pytest.approx(1.0)
        assert weighted_speedup(alone, alone) == pytest.approx(len(alone))
