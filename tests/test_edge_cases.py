"""Edge-case tests across components: states that only show up under
unusual parameter combinations or timing patterns."""

import pytest

from repro.config import ControllerConfig, CoreConfig
from repro.cpu.core import Core
from repro.cpu.trace import Trace, TraceRecord
from repro.dram.channel import Channel
from repro.dram.timing import DDR3_1066
from repro.mapping import MemLocation
from repro.memctrl.controller import ChannelController
from repro.memctrl.request import Request
from repro.memctrl.schedulers import make_scheduler
from repro.sim.engine import Engine


class TestWriteDrainHysteresis:
    def _setup(self):
        engine = Engine(500_000)
        channel = Channel(0, 1, 4, DDR3_1066, refresh_enabled=False)
        config = ControllerConfig(
            read_queue_depth=32,
            write_queue_depth=32,
            write_high_watermark=8,
            write_low_watermark=3,
            refresh_enabled=False,
        )
        controller = ChannelController(
            channel, config, make_scheduler("frfcfs", num_threads=1), engine
        )
        return engine, controller

    def _req(self, bank, row, col=0, write=False, arrival=0):
        return Request(
            thread_id=0,
            is_write=write,
            line_addr=col,
            loc=MemLocation(channel=0, rank=0, bank=bank, row=row, col=col),
            arrival=arrival,
        )

    def test_drain_continues_to_low_watermark(self):
        engine, controller = self._setup()
        # Fill above the high watermark, plus a continuous read supply.
        for i in range(9):
            controller.enqueue(self._req(i % 4, 2, col=i, write=True), 0)
        for i in range(4):
            controller.enqueue(self._req(i % 4, 7, col=i), 0)
        engine.run(until=3_000)
        # Drain mode stops at/below the LOW watermark, not the high one.
        assert len(controller.write_queue) <= 3

    def test_single_write_eventually_drains(self):
        engine, controller = self._setup()
        controller.enqueue(self._req(0, 1, write=True), 0)
        engine.run()
        assert controller.stats.writes_served == 1
        assert not controller.write_queue


class TestCoreAheadLimit:
    def test_compute_heavy_core_wakes_itself(self):
        # One enormous gap: the core must cross it through ahead-limit
        # wakeups without any memory completions driving it.
        engine = Engine(50_000)

        class NullPort:
            def access(self, tid, vline, w, at, cb):
                return at + 1  # everything hits instantly

        trace = Trace("big", [TraceRecord(200_000, 1, False)])
        core = Core(
            core_id=0,
            config=CoreConfig(width=4, rob_size=64, mshrs=4),
            trace=trace,
            port=NullPort(),
            scheduler=engine,
            horizon=50_000,
            ahead_limit=1_000,
        )
        core.start()
        engine.run()
        assert core.ipc() == pytest.approx(4.0, rel=0.01)

    def test_tiny_ahead_limit_still_correct(self):
        engine = Engine(10_000)

        class FixedPort:
            def access(self, tid, vline, w, at, cb):
                return at + 50

        trace = Trace("t", [TraceRecord(10, 100 + i, False) for i in range(64)])
        results = []
        for ahead in (64, 100_000):
            eng = Engine(10_000)
            core = Core(
                0,
                CoreConfig(width=4, rob_size=64, mshrs=4),
                trace,
                FixedPort(),
                eng,
                horizon=10_000,
                ahead_limit=ahead,
            )
            core.start()
            eng.run()
            results.append(core.ipc())
        # The ahead limit is a compute-scheduling knob, not a model change.
        assert results[0] == pytest.approx(results[1], rel=1e-9)


class TestSchedulerPrefixConsistency:
    """thread_priority fast path must order exactly like key()."""

    @pytest.mark.parametrize("name", ["frfcfs", "atlas", "tcm", "bliss"])
    def test_prefix_matches_key(self, name):
        scheduler = make_scheduler(name, num_threads=4)
        requests = [
            Request(
                thread_id=t,
                is_write=False,
                line_addr=0,
                loc=MemLocation(0, 0, t % 2, 5, 0),
                arrival=10 * t,
            )
            for t in range(4)
        ]
        for row_hit in (False, True):
            for request in requests:
                prefix = scheduler.thread_priority(request.thread_id, 0)
                assert prefix is not None
                composed = prefix + (
                    0 if row_hit else 1,
                    request.arrival,
                    request.req_id,
                )
                assert composed == scheduler.key(request, row_hit, 0)

    @pytest.mark.parametrize("name", ["fcfs", "parbs"])
    def test_per_request_schedulers_opt_out(self, name):
        scheduler = make_scheduler(name, num_threads=4)
        assert scheduler.thread_priority(0, 0) is None


class TestTCMKnobs:
    def test_zero_shuffle_interval_disables_shuffle(self):
        from repro.memctrl.schedulers.base import ProfileSnapshot, ThreadProfile

        scheduler = make_scheduler(
            "tcm", num_threads=2, cluster_fraction=0.0, shuffle_interval=0
        )
        profiles = {
            t: ThreadProfile(t, 20.0, 0.5, 2.0, 0.3, 100) for t in range(2)
        }
        scheduler.on_quantum(ProfileSnapshot(cycle=0, threads=profiles))
        first = scheduler.thread_priority(0, 100)
        later = scheduler.thread_priority(0, 1_000_000)
        assert first == later


class TestRequestFlattening:
    def test_flattened_fields_match_location(self):
        loc = MemLocation(channel=1, rank=1, bank=3, row=77, col=5)
        request = Request(0, False, 123, loc, arrival=9)
        assert (request.rank, request.bank, request.row) == (1, 3, 77)
        assert request.bank_key == (1, 1, 3)
