"""Perf-regression observatory: BENCH snapshot ingestion and flagging."""

from __future__ import annotations

import json

import pytest

# Imported via the package namespace: pytest collects bare ``bench_*``
# module-level names as benchmark functions (see python_functions in
# pyproject.toml), so ``from repro.results import bench_trend`` would be
# picked up as a test.
from repro import results
from repro.results import ResultIndex, ResultsError


def _kernel_doc(trajectory, min_ratio=1.25):
    return {
        "benchmark": "kernel-hot-loop",
        "metric": "simulated cycles per wall second (best of reps)",
        "baseline": {
            "date": "2026-01-01",
            "kernel": "reference",
            "cycles_per_sec_best": 100_000.0,
            "cycles_per_sec_median": 98_000.0,
            "engine_events": 1000,
        },
        "post": trajectory[-1],
        "trajectory": trajectory,
        "ci": {"min_ratio": min_ratio, "reps": 3},
        "workload": {"mix": "M4", "approach": "dbp-tcm"},
    }


def _entry(date, best, ratio=None, median=None):
    entry = {
        "date": date,
        "kernel": "fast",
        "cycles_per_sec_best": best,
        "cycles_per_sec_median": median if median is not None else best,
        "engine_events": 1000,
    }
    if ratio is not None:
        entry["speedup_vs_baseline"] = ratio
    return entry


def _write_bench(tmp_path, doc, name="BENCH_kernel.json"):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


class TestExtraction:
    def test_extracts_baseline_post_and_trajectory(self):
        doc = _kernel_doc([_entry("2026-02-01", 180_000.0, 1.8)])
        samples = results.bench_samples_from_doc(doc, source="BENCH_kernel.json")
        roles = sorted(s.role for s in samples)
        assert roles == ["baseline", "post", "trajectory"]
        trajectory = [s for s in samples if s.role == "trajectory"][0]
        assert trajectory.benchmark == "kernel-hot-loop"
        assert trajectory.cycles_per_sec_best == 180_000.0
        assert trajectory.speedup_vs_baseline == 1.8
        assert trajectory.source == "BENCH_kernel.json"

    def test_doc_without_benchmark_yields_nothing(self):
        assert results.bench_samples_from_doc({"entries": 1000}) == []

    def test_doc_without_dated_series_yields_nothing(self):
        # The results-index micro-benchmark has no trajectory: valid
        # file, zero samples.
        doc = {"benchmark": "results_index", "cold_sync": {"seconds": 0.2}}
        assert results.bench_samples_from_doc(doc) == []

    def test_missing_dir_is_an_error(self, tmp_path):
        with pytest.raises(ResultsError):
            results.load_bench_docs(str(tmp_path / "nope"))


class TestSync:
    def test_sync_is_idempotent_and_trend_orders_by_date(self, tmp_path):
        doc = _kernel_doc(
            [
                _entry("2026-02-01", 180_000.0, 1.8),
                _entry("2026-03-01", 190_000.0, 1.9),
            ]
        )
        _write_bench(tmp_path, doc)
        with ResultIndex(":memory:") as index:
            assert results.sync_bench_dir(index, str(tmp_path)) == 4
            assert results.sync_bench_dir(index, str(tmp_path)) == 4  # idempotent
            rows = results.bench_trend(index)
            # post is excluded from the trend (it duplicates the latest
            # trajectory entry); baseline + 2 trajectory rows remain.
            assert [r["role"] for r in rows] == [
                "baseline", "trajectory", "trajectory",
            ]
            assert [r["date"] for r in rows] == [
                "2026-01-01", "2026-02-01", "2026-03-01",
            ]
            text = results.render_trend(rows)
            assert "kernel-hot-loop" in text
            assert "190,000" in text

    def test_runs_schema_untouched(self, tmp_path):
        from repro.results.db import SCHEMA_VERSION

        _write_bench(
            tmp_path, _kernel_doc([_entry("2026-02-01", 180_000.0)])
        )
        with ResultIndex(":memory:") as index:
            results.sync_bench_dir(index, str(tmp_path))
            meta = {
                r["name"]: r["value"]
                for r in index._conn.execute("SELECT * FROM meta")
            }
            assert meta["schema_version"] == str(SCHEMA_VERSION)
            assert "bench_schema_version" in meta
            assert index.count() == 0  # no fake rows in the runs table

    def test_render_trend_empty(self):
        assert "no benchmark samples" in results.render_trend([])


class TestRegressionFlagging:
    def test_healthy_trajectory_passes(self, tmp_path):
        doc = _kernel_doc(
            [
                _entry("2026-02-01", 180_000.0, 1.8),
                _entry("2026-03-01", 176_000.0, 1.76),  # within 10%
            ]
        )
        path = _write_bench(tmp_path, doc)
        findings = results.check_bench_docs({str(path): doc}, tolerance=0.10)
        assert findings == []
        assert "no regressions" in results.render_findings(findings)

    def test_ratio_below_ci_gate_is_flagged(self, tmp_path):
        doc = _kernel_doc(
            [_entry("2026-02-01", 180_000.0, 1.10)], min_ratio=1.25
        )
        findings = results.check_bench_docs({"p": doc})
        assert [f.kind for f in findings] == ["ratio"]
        assert "1.100" in findings[0].message
        assert findings[0].date == "2026-02-01"

    def test_throughput_drop_beyond_tolerance_is_flagged(self):
        doc = _kernel_doc(
            [
                _entry("2026-02-01", 200_000.0, 2.0),
                _entry("2026-03-01", 170_000.0, 1.7),  # -15%
            ]
        )
        findings = results.check_bench_docs({"p": doc}, tolerance=0.10)
        assert [f.kind for f in findings] == ["trajectory"]
        assert "15.0%" in findings[0].message
        # A looser tolerance accepts the same drop.
        assert results.check_bench_docs({"p": doc}, tolerance=0.20) == []

    def test_recovery_after_dip_compares_against_best(self):
        doc = _kernel_doc(
            [
                _entry("2026-02-01", 200_000.0, 2.0),
                _entry("2026-03-01", 205_000.0, 2.05),
                _entry("2026-04-01", 160_000.0, 1.6),  # below BOTH
            ]
        )
        findings = results.check_bench_docs({"p": doc}, tolerance=0.10)
        assert len(findings) == 1
        assert "2026-03-01" in findings[0].message  # vs the best, not first

    def test_committed_snapshot_is_clean(self):
        # The repo's own benchmarks/ must never trip its own observatory.
        docs = results.load_bench_docs("benchmarks")
        assert docs, "repo has committed BENCH snapshots"
        assert results.check_bench_docs(docs) == []


class TestCli:
    def test_perf_trend_cli_syncs_and_checks(self, tmp_path, capsys):
        from repro.cli import main

        doc = _kernel_doc([_entry("2026-02-01", 180_000.0, 1.8)])
        _write_bench(tmp_path, doc)
        db = str(tmp_path / "index.sqlite")
        assert (
            main(
                [
                    "results", "perf-trend",
                    "--bench-dir", str(tmp_path),
                    "--db", db,
                    "--check",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "synced 3 benchmark sample(s)" in out
        assert "no regressions" in out

    def test_perf_trend_cli_fails_on_regression(self, tmp_path, capsys):
        from repro.cli import main

        doc = _kernel_doc(
            [_entry("2026-02-01", 180_000.0, 1.0)], min_ratio=1.25
        )
        _write_bench(tmp_path, doc)
        db = str(tmp_path / "index.sqlite")
        argv = [
            "results", "perf-trend",
            "--bench-dir", str(tmp_path),
            "--db", db,
        ]
        assert main(argv) == 0  # report-only without --check
        assert main(argv + ["--check"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_perf_trend_cli_json(self, tmp_path, capsys):
        from repro.cli import main

        doc = _kernel_doc([_entry("2026-02-01", 180_000.0, 1.8)])
        _write_bench(tmp_path, doc)
        db = str(tmp_path / "index.sqlite")
        assert (
            main(
                [
                    "results", "perf-trend",
                    "--bench-dir", str(tmp_path),
                    "--db", db,
                    "--format", "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["synced_samples"] == 3
        assert payload["findings"] == []
        assert len(payload["trend"]) == 2
