"""Objective, trial persistence, frontier reports, and the tune CLI."""

import json

import pytest

from repro.campaign.store import ResultStore
from repro.cli import main
from repro.errors import ConfigError
from repro.results.db import ResultIndex, index_path_for
from repro.tuner import (
    CampaignObjective,
    TrialPoint,
    dominates,
    frontier_doc,
    pareto_front,
    record_trial,
    run_study,
    scalarize,
    trial_rows,
)
from repro.tuner.trials import TUNER_SCHEMA_VERSION, studies


def _row(trial_id, ws, ms, params=None, fidelity=1.0, study="s"):
    return {
        "study": study, "trial_id": trial_id, "strategy": "random",
        "objective": "balanced", "base_approach": "dbp",
        "approach": "dbp" if not params else "dbp@tuned",
        "params": params or {}, "mixes": ["M4"], "seed": 1,
        "fidelity": fidelity, "rung": 0, "horizon": 10000,
        "ws": ws, "ms": ms, "hs": 0.5, "score": ws / ms, "status": "ok",
        "error": None, "cached": 0, "executed": 1, "wall_clock": 0.1,
    }


class TestScalarize:
    def test_objectives(self):
        assert scalarize("ws", 2.0, 3.0, 0.5) == 2.0
        assert scalarize("hs", 2.0, 3.0, 0.5) == 0.5
        assert scalarize("ms", 2.0, 3.0, 0.5) == -3.0
        assert scalarize("balanced", 3.0, 2.0, 0.5) == 1.5

    def test_unknown_objective(self):
        with pytest.raises(ConfigError, match="unknown objective"):
            scalarize("bogus", 1.0, 1.0, 1.0)


class TestObjective:
    def test_rejects_parameterized_base(self):
        with pytest.raises(ConfigError, match="base approach"):
            CampaignObjective("dbp@epoch_cycles=20000", ["M4"])

    def test_rejects_empty_mixes(self):
        with pytest.raises(ConfigError, match="at least one mix"):
            CampaignObjective("dbp", [])

    def test_horizon_for_fidelity_has_a_floor(self):
        objective = CampaignObjective(
            "dbp", ["M4"], horizon=40_000, min_horizon=10_000
        )
        assert objective.horizon_for(1.0) == 40_000
        assert objective.horizon_for(0.5) == 20_000
        assert objective.horizon_for(0.01) == 10_000

    def test_osmm_params_land_in_config_not_name(self):
        objective = CampaignObjective("dbp", ["M4"])
        point = TrialPoint(
            trial_id=1,
            params=(("epoch_cycles", 20000), ("migration_budget_pages", 4)),
        )
        specs, name, osmm = objective.specs_for(point)
        assert name == "dbp@epoch_cycles=20000"
        assert osmm == {"migration_budget_pages": 4}
        assert all(s.config.osmm.migration_budget_pages == 4 for s in specs)
        assert all(s.approach == name for s in specs)

    def test_default_point_keeps_the_bare_name(self):
        objective = CampaignObjective("dbp", ["M4", "M7"])
        specs, name, osmm = objective.specs_for(objective.default_point())
        assert name == "dbp"
        assert osmm == {}
        assert len(specs) == 2


class TestPareto:
    def test_dominates(self):
        a, b = _row(1, ws=3.0, ms=1.5), _row(2, ws=2.0, ms=2.0)
        assert dominates(a, b)
        assert not dominates(b, a)
        assert not dominates(a, dict(a, trial_id=3))  # equal point

    def test_front_excludes_dominated(self):
        rows = [
            _row(1, ws=3.0, ms=1.5),
            _row(2, ws=2.0, ms=2.0),   # dominated by 1
            _row(3, ws=3.5, ms=1.8),   # trades off vs 1 -> on front
        ]
        front = {r["trial_id"] for r in pareto_front(rows)}
        assert front == {1, 3}

    def test_verdict_when_tuned_dominates(self):
        rows = [
            _row(0, ws=2.0, ms=2.0),                      # default
            _row(1, ws=3.0, ms=1.5, params={"a": 1}),
        ]
        doc = frontier_doc(rows)
        assert "Pareto-dominate the paper default" in doc["verdict"]
        assert len(doc["dominating"]) == 1

    def test_verdict_when_nothing_dominates(self):
        rows = [
            _row(0, ws=3.0, ms=1.5),                      # default on front
            _row(1, ws=2.0, ms=2.0, params={"a": 1}),
        ]
        doc = frontier_doc(rows)
        assert "no tuned point Pareto-dominates" in doc["verdict"]
        assert doc["dominating"] == []

    def test_verdict_without_baseline(self):
        doc = frontier_doc([_row(1, ws=2.0, ms=2.0, params={"a": 1})])
        assert "no paper-default baseline" in doc["verdict"]

    def test_screening_rows_are_excluded(self):
        rows = [
            _row(0, ws=2.0, ms=2.0),
            _row(1, ws=9.0, ms=1.0, params={"a": 1}, fidelity=0.25),
        ]
        doc = frontier_doc(rows)
        assert doc["evaluated"] == 1  # the screening row is not a candidate
        assert doc["dominating"] == []


class TestTrialsTable:
    def test_record_is_idempotent_upsert(self, tmp_path):
        with ResultIndex(tmp_path / "index.sqlite") as index:
            record_trial(index, _row(1, ws=2.0, ms=2.0))
            record_trial(index, _row(1, ws=3.0, ms=1.5))  # same key, new data
            rows = trial_rows(index)
            assert len(rows) == 1
            assert rows[0]["ws"] == 3.0
            assert rows[0]["params"] == {}
            assert rows[0]["mixes"] == ["M4"]

    def test_studies_summary_uses_full_fidelity_best(self, tmp_path):
        with ResultIndex(tmp_path / "index.sqlite") as index:
            record_trial(index, _row(1, ws=2.0, ms=2.0))
            record_trial(index, _row(2, ws=9.0, ms=1.0, fidelity=0.25))
            (summary,) = studies(index)
            assert summary["trials"] == 2
            assert summary["best_score"] == 1.0  # the fid-1.0 trial's score

    def test_version_bump_rebuilds_only_tuner_table(self, tmp_path):
        with ResultIndex(tmp_path / "index.sqlite") as index:
            record_trial(index, _row(1, ws=2.0, ms=2.0))
            index._conn.execute(
                "UPDATE meta SET value='0' WHERE name='tuner_schema_version'"
            )
            record_trial(index, _row(2, ws=3.0, ms=1.5))
            rows = trial_rows(index)
            assert [r["trial_id"] for r in rows] == [2]  # old row dropped
            version = index._conn.execute(
                "SELECT value FROM meta WHERE name='tuner_schema_version'"
            ).fetchone()
            assert version["value"] == str(TUNER_SCHEMA_VERSION)


class TestRunStudy:
    def test_random_study_end_to_end_and_rerun_is_cached(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        kwargs = dict(
            approach="dbp", strategy="random", budget=2, seed=5,
            mixes=("M4",), horizon=20_000, store=store,
        )
        with ResultIndex(index_path_for(store.root)) as index:
            first = run_study(index=index, **kwargs)
            assert len(first.trials) == 3  # baseline + 2 searched
            assert first.trials[0].is_default
            assert first.trials[0].point.fidelity == 1.0
            assert all(t.status == "ok" for t in first.trials)
            assert first.best is not None

            second = run_study(index=index, **kwargs)
            assert second.cache_hit_rate == 1.0
            assert [t.approach for t in second.trials] == [
                t.approach for t in first.trials
            ]
            # Idempotent persistence: same study name, same rows.
            rows = trial_rows(index, first.study)
            assert len(rows) == 3


class TestTuneCLI:
    def _run(self, tmp_path, *argv):
        return main([
            "--horizon", "20000", "--seed", "3", "tune", *argv,
            "--store", str(tmp_path / "store"),
        ])

    def test_halving_run_report_frontier(self, tmp_path, capsys):
        assert self._run(
            tmp_path, "run", "--strategy", "halving", "--budget", "4",
            "--mixes", "M4",
        ) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "verdict:" in out

        # An identical re-run is pure cache hits (>= 90% acceptance bar).
        assert self._run(
            tmp_path, "run", "--strategy", "halving", "--budget", "4",
            "--mixes", "M4",
        ) == 0
        assert "(100% hit rate)" in capsys.readouterr().out

        assert self._run(tmp_path, "report") == 0
        assert "dbp-halving-balanced-s3" in capsys.readouterr().out

        out_path = tmp_path / "frontier.json"
        assert self._run(tmp_path, "frontier", "--out", str(out_path)) == 0
        assert "verdict:" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        assert doc["study"] == "dbp-halving-balanced-s3"
        assert doc["default"]["is_default"]

    def test_halving_opts_rejected_for_random(self, tmp_path, capsys):
        assert self._run(
            tmp_path, "run", "--strategy", "random", "--survivors", "0.5",
        ) == 1
        assert "halving" in capsys.readouterr().err

    def test_frontier_without_studies_errors(self, tmp_path, capsys):
        # A store that exists but holds no studies is the clearer error;
        # a missing store directory errors out even earlier.
        (tmp_path / "store").mkdir()
        with ResultIndex(index_path_for(tmp_path / "store")):
            pass  # create an empty index
        assert self._run(tmp_path, "frontier") == 1
        assert "no tuning studies" in capsys.readouterr().err

    def test_list_tunables(self, capsys):
        assert main(["list", "--tunables"]) == 0
        out = capsys.readouterr().out
        assert "epoch_cycles" in out
        assert "[policy]" in out
        assert "demand.low_mpki_threshold" in out
