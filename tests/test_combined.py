"""Combined channel+bank partitioning tests."""

import pytest

from repro.core import CombinedPartitioning, get_approach
from repro.core.dbp import DBPConfig
from repro.baselines.mcp import MCPConfig
from repro.memctrl.schedulers.base import ProfileSnapshot, ThreadProfile
from tests.test_baselines import make_world


def prof(thread, mpki=20.0, rbh=0.5, blp=2.0, bandwidth=0.3):
    return ThreadProfile(thread, mpki, rbh, blp, bandwidth, requests=100)


def snap(*profiles):
    return ProfileSnapshot(cycle=0, threads={p.thread_id: p for p in profiles})


class TestCombined:
    def test_registered_as_approach(self):
        approach = get_approach("dbp+mcp")
        assert isinstance(approach.make_policy(), CombinedPartitioning)

    def test_epoch_is_min_of_dimensions(self):
        policy = CombinedPartitioning(
            DBPConfig(epoch_cycles=10_000), MCPConfig(epoch_cycles=40_000)
        )
        assert policy.epoch_cycles == 10_000

    def test_both_dimensions_constrained_after_epoch(self):
        world = make_world(num_threads=4, colors=8, channels=2)
        policy = CombinedPartitioning(
            DBPConfig(demand_smoothing=0.0, hysteresis_colors=0)
        )
        policy.initialize(world)
        snapshot = snap(
            prof(0, mpki=30, rbh=0.9, blp=1.0),
            prof(1, mpki=25, rbh=0.2, blp=6.0),
            prof(2, mpki=0.1),
            prof(3, mpki=0.2),
        )
        policy.on_epoch(snapshot, world)
        # Channel dimension: intensive threads pinned to single channels.
        assert len(world.allocator.thread_channels(0)) == 1
        assert len(world.allocator.thread_channels(1)) == 1
        # Bank dimension: high-BLP thread owns more colors than streamer.
        colors_streamer = world.allocator.thread_colors(0)
        colors_parallel = world.allocator.thread_colors(1)
        assert len(colors_parallel) > len(colors_streamer)
        assert not colors_parallel & colors_streamer

    def test_repartition_counter_delegates(self):
        world = make_world(num_threads=2, colors=8, channels=2)
        policy = CombinedPartitioning()
        policy.initialize(world)
        policy.on_epoch(snap(prof(0), prof(1)), world)
        assert policy.stat_repartitions == 1
