"""Dynamic Bank Partitioning policy tests.

``compute_allocation`` is a pure function of (profiles, context scale), so
most tests drive it directly; the apply/migrate path is covered through a
real allocator world and in the system integration tests.
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DRAMOrganization
from repro.core.dbp import DBPConfig, DynamicBankPartitioning
from repro.core.demand import DemandConfig
from repro.errors import ConfigError
from repro.mapping import AddressMap
from repro.baselines.base import PartitionContext
from repro.memctrl.schedulers.base import ProfileSnapshot, ThreadProfile
from repro.osmm import ColorAwareAllocator, MigrationEngine, PageTable


def ctx(num_threads=4, colors=8):
    return SimpleNamespace(num_threads=num_threads, total_bank_colors=colors)


def prof(thread, mpki=20.0, rbh=0.5, blp=2.0):
    return ThreadProfile(thread, mpki, rbh, blp, bandwidth=0.2, requests=100)


def snap(*profiles):
    return ProfileSnapshot(cycle=0, threads={p.thread_id: p for p in profiles})


def dbp(**overrides):
    defaults = dict(demand_smoothing=0.0, hysteresis_colors=0)
    defaults.update(overrides)
    return DynamicBankPartitioning(DBPConfig(**defaults))


class TestAllocationInvariants:
    def test_partitions_disjoint_and_cover_interest(self):
        policy = dbp()
        alloc = policy.compute_allocation(
            snap(prof(0, blp=6), prof(1, blp=2), prof(2, blp=2), prof(3, blp=1)),
            ctx(),
        )
        seen = []
        for colors in alloc.values():
            seen.extend(colors)
        assert sorted(seen) == sorted(set(seen))  # disjoint
        assert set(seen) <= set(range(8))

    def test_every_thread_gets_at_least_one_color(self):
        policy = dbp()
        alloc = policy.compute_allocation(
            snap(*[prof(t, blp=4) for t in range(4)]), ctx()
        )
        assert all(len(colors) >= 1 for colors in alloc.values())

    def test_high_blp_thread_gets_more_colors(self):
        policy = dbp()
        alloc = policy.compute_allocation(
            snap(prof(0, blp=8), prof(1, blp=1), prof(2, blp=1), prof(3, blp=1)),
            ctx(),
        )
        assert len(alloc[0]) > len(alloc[1])

    def test_all_light_threads_share_everything(self):
        policy = dbp()
        alloc = policy.compute_allocation(
            snap(*[prof(t, mpki=0.1) for t in range(4)]), ctx()
        )
        assert all(colors == list(range(8)) for colors in alloc.values())

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 50.0),  # mpki
                st.floats(0.0, 0.99),  # rbh
                st.floats(0.0, 16.0),  # blp
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_intensive_partitions_always_disjoint(self, thread_params):
        policy = dbp()
        profiles = [
            prof(t, mpki=m, rbh=r, blp=b)
            for t, (m, r, b) in enumerate(thread_params)
        ]
        context = ctx(num_threads=len(profiles), colors=16)
        alloc = policy.compute_allocation(snap(*profiles), context)
        intensive = [t for t, p in enumerate(profiles) if p.mpki >= 1.0]
        used = []
        for t in intensive:
            assert len(alloc[t]) >= 1
            used.extend(alloc[t])
        assert len(used) == len(set(used))
        for t in range(len(profiles)):
            assert alloc[t], f"thread {t} got no colors"
            assert set(alloc[t]) <= set(range(16))


class TestPooling:
    def test_light_threads_share_pool(self):
        policy = dbp()
        alloc = policy.compute_allocation(
            snap(prof(0, blp=4), prof(1, mpki=0.1), prof(2, mpki=0.2), prof(3, blp=2)),
            ctx(),
        )
        assert alloc[1] == alloc[2]
        assert not set(alloc[1]) & set(alloc[0])
        assert not set(alloc[1]) & set(alloc[3])

    def test_pool_disabled_gives_dedicated_colors(self):
        policy = dbp(pool_non_intensive=False)
        alloc = policy.compute_allocation(
            snap(prof(0, blp=4), prof(1, mpki=0.1), prof(2, mpki=0.2), prof(3, blp=2)),
            ctx(),
        )
        assert not set(alloc[1]) & set(alloc[2])

    def test_pool_shrinks_when_demand_high(self):
        policy = dbp()
        alloc = policy.compute_allocation(
            snap(
                prof(0, blp=16),
                prof(1, blp=16),
                prof(2, blp=16),
                prof(3, mpki=0.1),
            ),
            ctx(),
        )
        assert len(alloc[3]) == 1  # min pool


class TestStability:
    def test_prefers_previous_colors(self):
        policy = dbp()
        context = ctx()
        snapshot = snap(*[prof(t, blp=2) for t in range(4)])
        first = policy.compute_allocation(snapshot, context)
        policy.last_allocation = first
        second = policy.compute_allocation(snapshot, context)
        for t in range(4):
            assert set(first[t]) == set(second[t])

    def test_smoothing_damps_demand_jump(self):
        policy = DynamicBankPartitioning(
            DBPConfig(demand_smoothing=0.9, hysteresis_colors=0)
        )
        context = ctx()
        calm = snap(*[prof(t, blp=2) for t in range(4)])
        policy.compute_allocation(calm, context)
        spike = snap(
            prof(0, blp=16), prof(1, blp=2), prof(2, blp=2), prof(3, blp=2)
        )
        alloc = policy.compute_allocation(spike, context)
        # Heavy smoothing: thread 0's share grows only slightly.
        assert len(alloc[0]) <= 4

    def test_hysteresis_skips_marginal_changes(self):
        world = make_world()
        policy = DynamicBankPartitioning(
            DBPConfig(demand_smoothing=0.0, hysteresis_colors=8)
        )
        policy.initialize(world)
        before = dict(policy.last_allocation)
        policy.on_epoch(snap(*[prof(t, blp=4) for t in range(2)]), world)
        assert policy.last_allocation == before


def make_world(num_threads=2, colors=4):
    org = DRAMOrganization(
        channels=2,
        ranks_per_channel=1,
        banks_per_rank=colors,
        rows_per_bank=64,
        row_size_bytes=8192,
    )
    amap = AddressMap(org, page_size=4096)
    allocator = ColorAwareAllocator(amap)
    tables = {t: PageTable(t, allocator, amap) for t in range(num_threads)}
    migration = MigrationEngine(allocator, amap, 2, 1, mode="remap")
    return PartitionContext(
        allocator, amap, tables, migration, inject_copy_traffic=lambda plan: None
    )


class TestApplication:
    def test_initialize_matches_equal_split(self):
        world = make_world()
        policy = dbp()
        policy.initialize(world)
        assert policy.last_allocation == {0: [0, 1], 1: [2, 3]}
        assert world.allocator.thread_colors(0) == frozenset({0, 1})

    def test_on_epoch_applies_and_migrates(self):
        world = make_world()
        policy = dbp()
        policy.initialize(world)
        # Thread 0 touches pages under the equal split.
        for vpage in range(6):
            world.page_tables[0].translate_line(vpage * 64)
        snapshot = snap(prof(0, blp=8), prof(1, mpki=0.1))
        policy.on_epoch(snapshot, world)
        assert policy.stat_repartitions == 1
        # Thread 0 now owns more colors; its pages were migrated to them.
        colors0 = world.allocator.thread_colors(0)
        assert len(colors0) == 3
        for _v, frame in world.page_tables[0].mapped_pages():
            assert world.address_map.frame_bank_color(frame) in colors0

    def test_repartition_counter(self):
        world = make_world()
        policy = dbp()
        policy.initialize(world)
        snapshot = snap(prof(0, blp=8), prof(1, blp=1))
        policy.on_epoch(snapshot, world)
        policy.on_epoch(snapshot, world)
        assert policy.stat_repartitions == 2


class TestValidation:
    def test_bad_epoch_rejected(self):
        with pytest.raises(ConfigError):
            DBPConfig(epoch_cycles=0)

    def test_bad_smoothing_rejected(self):
        with pytest.raises(ConfigError):
            DBPConfig(demand_smoothing=1.0)

    def test_bad_hysteresis_rejected(self):
        with pytest.raises(ConfigError):
            DBPConfig(hysteresis_colors=-1)

    def test_bad_pool_rejected(self):
        with pytest.raises(ConfigError):
            DBPConfig(min_pool_colors=0)
