"""Campaign subsystem tests: planner, store, executor, sweep integration."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    RunSpec,
    execute,
    plan_sweep,
    run_key,
    sweep_metrics,
)
from repro.campaign.executor import _WORKER_RUNNERS
from repro.errors import ExperimentError
from repro.sim.runner import Runner

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture
def specs(small_config):
    """A tiny two-run plan on the fast test configuration."""
    return [
        RunSpec(
            apps=("lbm", "gcc"),
            approach=approach,
            config=small_config,
            horizon=30_000,
            target_insts=200_000,
            mix_name="TEST",
        )
        for approach in ("shared-frfcfs", "ebp")
    ]


@pytest.fixture(autouse=True)
def _fresh_worker_caches():
    """Keep the process-local runner cache from leaking between tests."""
    _WORKER_RUNNERS.clear()
    yield
    _WORKER_RUNNERS.clear()


class TestPlanner:
    def test_grid_expansion_order_and_size(self):
        spec = CampaignSpec(
            mixes=("M4", "M7"),
            approaches=("shared-frfcfs", "ebp"),
            seeds=(1, 2),
            horizons=(20_000,),
        )
        plan = spec.plan()
        assert len(plan) == 8
        assert plan[0].mix_name == "M4"
        assert plan[0].approach == "shared-frfcfs"
        assert [s.seed for s in plan[:4]] == [1, 1, 1, 1]

    def test_unknown_mix_rejected_eagerly(self):
        with pytest.raises(Exception):
            CampaignSpec(mixes=("M99",))

    def test_unknown_approach_rejected_eagerly(self):
        with pytest.raises(Exception):
            CampaignSpec(mixes=("M4",), approaches=("warp-drive",))

    def test_plan_sweep_mirrors_runner_scope(self, fast_runner):
        plan = plan_sweep(fast_runner, ["M4"], ["ebp"])
        # fast_runner's config has 2 cores; M4 has 4 apps — the campaign
        # worker reconfigures core count per run exactly like run_apps does.
        assert plan[0].horizon == fast_runner.horizon
        assert plan[0].seed == fast_runner.seed
        assert plan[0].target_insts == fast_runner.target_insts
        assert plan[0].config is fast_runner.config


class TestKeys:
    def test_key_deterministic_within_process(self, specs):
        assert specs[0].key() == specs[0].key()
        assert specs[0].key() != specs[1].key()

    def test_key_depends_on_each_scope_field(self, small_config):
        base = RunSpec(
            apps=("lbm", "gcc"), approach="ebp", config=small_config
        )
        variants = [
            RunSpec(apps=("lbm", "mcf"), approach="ebp", config=small_config),
            RunSpec(apps=("lbm", "gcc"), approach="dbp", config=small_config),
            RunSpec(
                apps=("lbm", "gcc"), approach="ebp", config=small_config, seed=2
            ),
            RunSpec(
                apps=("lbm", "gcc"),
                approach="ebp",
                config=small_config,
                horizon=99_999,
            ),
            RunSpec(
                apps=("lbm", "gcc"),
                approach="ebp",
                config=small_config,
                target_insts=123_456,
            ),
        ]
        keys = {spec.key() for spec in variants}
        assert base.key() not in keys
        assert len(keys) == len(variants)

    def test_key_stable_across_processes(self, small_config):
        """The content hash must not depend on process state (hash seed)."""
        spec = RunSpec(apps=("lbm", "gcc"), approach="ebp", config=small_config)
        # Rebuild the same config in the child instead of importing fixtures.
        child = subprocess.run(
            [
                sys.executable,
                "-c",
                (
                    "import sys; sys.path.insert(0, 'src')\n"
                    "from repro.campaign import RunSpec\n"
                    "from repro.config import (SystemConfig, DRAMOrganization,"
                    " CoreConfig, CacheConfig, ControllerConfig, OSConfig)\n"
                    "config = SystemConfig(num_cores=2, clock_ratio=2,"
                    " dram_preset='DDR3-1066',"
                    " organization=DRAMOrganization(channels=1,"
                    " ranks_per_channel=1, banks_per_rank=4, rows_per_bank=256,"
                    " row_size_bytes=8192),"
                    " core=CoreConfig(width=4, rob_size=64, mshrs=8),"
                    " cache=CacheConfig(size_bytes=16*1024, associativity=4),"
                    " controller=ControllerConfig(read_queue_depth=32,"
                    " write_queue_depth=32, write_high_watermark=24,"
                    " write_low_watermark=8),"
                    " osmm=OSConfig(migration_budget_pages=4,"
                    " migration_lines_per_page=2))\n"
                    "print(RunSpec(apps=('lbm', 'gcc'), approach='ebp',"
                    " config=config).key())"
                ),
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        assert child.stdout.strip() == spec.key()

    def test_run_key_binds_resolved_scheduler(
        self, small_config, monkeypatch
    ):
        from repro.core.integration import APPROACHES, Approach

        monkeypatch.setitem(
            APPROACHES, "tmp-x", Approach("tmp-x", "shared", "fcfs")
        )
        key_fcfs = run_key(
            small_config,
            ("lbm", "gcc"),
            "tmp-x",
            seed=1,
            horizon=30_000,
            target_insts=200_000,
        )
        monkeypatch.setitem(
            APPROACHES, "tmp-x", Approach("tmp-x", "shared", "frfcfs")
        )
        key_frfcfs = run_key(
            small_config,
            ("lbm", "gcc"),
            "tmp-x",
            seed=1,
            horizon=30_000,
            target_insts=200_000,
        )
        assert key_fcfs != key_frfcfs


class TestStore:
    def test_hit_miss_accounting_and_round_trip(self, tmp_path, fast_runner):
        store = ResultStore(tmp_path / "store")
        result = fast_runner.run_apps(["lbm", "gcc"], "shared-frfcfs")
        key = "ab" + "0" * 62
        assert store.get(key) is None
        assert store.stats.misses == 1
        store.put(key, result, wall_clock=2.5)
        assert store.stats.writes == 1
        got = store.get(key)
        assert got is not None
        restored, wall = got
        assert wall == 2.5
        assert store.stats.hits == 1
        assert store.stats.wall_saved == 2.5
        assert restored.metrics.summary == result.metrics.summary
        assert restored.metrics.slowdowns == result.metrics.slowdowns
        assert restored.alone_ipcs == result.alone_ipcs
        assert restored.shared_ipcs == result.shared_ipcs
        assert restored.system.threads[0].ipc == result.system.threads[0].ipc

    def test_corrupt_entry_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = "cd" + "1" * 62
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{ not json")
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert store.stats.misses == 1
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()

    def test_stale_version_entry_skipped_not_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = "ef" + "2" * 62
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"version": 999, "key": key}))
        assert store.get(key) is None
        assert store.stats.stale == 1
        assert store.stats.misses == 1
        assert store.stats.corrupt == 0
        # Stale entries stay on disk: a recompute overwrites the same path.
        assert path.exists()

    def test_wrong_key_entry_quarantined(self, tmp_path):
        from repro.campaign.store import STORE_VERSION

        store = ResultStore(tmp_path / "store")
        key = "ef" + "3" * 62
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"version": STORE_VERSION, "key": "not-the-key"})
        )
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert store.stats.stale == 0
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()


class TestExecutor:
    def test_pooled_matches_serial_bit_for_bit(self, specs):
        # Pooled first: worker processes compute everything from scratch
        # (running serial first would leak warm in-process caches into the
        # forked workers and make the comparison vacuous).
        pooled = execute(specs, jobs=2)
        _WORKER_RUNNERS.clear()
        serial = execute(specs, jobs=1)
        assert [o.status for o in pooled.outcomes] == ["ok", "ok"]
        assert [o.status for o in serial.outcomes] == ["ok", "ok"]
        for a, b in zip(pooled.outcomes, serial.outcomes):
            assert a.result.metrics.summary == b.result.metrics.summary
            assert a.result.metrics.slowdowns == b.result.metrics.slowdowns
            assert a.result.shared_ipcs == b.result.shared_ipcs
            assert a.result.alone_ipcs == b.result.alone_ipcs

    def test_store_resume_serves_second_pass_from_disk(self, tmp_path, specs):
        store = ResultStore(tmp_path / "store")
        first = execute(specs, jobs=1, store=store)
        assert [o.status for o in first.outcomes] == ["ok", "ok"]
        second = execute(specs, jobs=1, store=store)
        assert [o.status for o in second.outcomes] == ["cached", "cached"]
        assert second.cache_hit_rate == 1.0
        assert store.stats.hits == 2
        # Metrics survive the JSON round trip exactly (floats untouched).
        for a, b in zip(first.outcomes, second.outcomes):
            assert a.result.metrics.summary == b.result.metrics.summary

    def test_partial_store_resumes_only_missing_runs(self, tmp_path, specs):
        store = ResultStore(tmp_path / "store")
        execute(specs[:1], jobs=1, store=store)
        result = execute(specs, jobs=1, store=store)
        assert [o.status for o in result.outcomes] == ["cached", "ok"]

    def test_failed_run_does_not_abort_grid(self, specs):
        bad = RunSpec(
            apps=("lbm", "gcc"),
            approach="warp-drive",  # unknown: the worker raises ConfigError
            config=specs[0].config,
            horizon=30_000,
            target_insts=200_000,
        )
        result = execute([bad] + specs, jobs=1, backoff=0.01)
        # ConfigError is deterministic: retried once to confirm, then
        # quarantined with a structured failure record.
        outcome = result.outcomes[0]
        assert outcome.status == "quarantined"
        assert "warp-drive" in outcome.error
        assert outcome.failure is not None
        assert outcome.failure.resolution == "quarantined"
        assert outcome.failure.attempts[-1].error_class == "deterministic"
        assert "ConfigError" in outcome.failure.attempts[-1].traceback
        assert [o.status for o in result.outcomes[1:]] == ["ok", "ok"]
        assert result.unresolved == []

    def test_budget_exhaustion_reports_failed(self, specs):
        bad = RunSpec(
            apps=("lbm", "gcc"),
            approach="warp-drive",
            config=specs[0].config,
            horizon=30_000,
            target_insts=200_000,
        )
        # With quarantine disarmed the bounded retry budget settles it.
        result = execute(
            [bad], jobs=1, retries=1, backoff=0.01, quarantine_after=10
        )
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 2
        assert outcome.failure is not None
        assert len(outcome.failure.attempts) == 2

    def test_timeout_enforced_serial(self, small_config):
        # Far more work than 50ms allows; SIGALRM must cut it off.
        big = RunSpec(
            apps=("lbm", "gcc"),
            approach="shared-frfcfs",
            config=small_config,
            horizon=400_000,
            target_insts=4_000_000,
        )
        result = execute([big], jobs=1, retries=0, timeout=0.05)
        assert result.outcomes[0].status == "failed"
        assert "timeout" in result.outcomes[0].error

    def test_failed_run_retried_then_reported_pooled(self, specs):
        bad = RunSpec(
            apps=("lbm", "gcc"),
            approach="warp-drive",
            config=specs[0].config,
            horizon=30_000,
            target_insts=200_000,
        )
        result = execute([bad], jobs=2, retries=1, backoff=0.01)
        outcome = result.outcomes[0]
        assert outcome.status == "quarantined"  # deterministic, confirmed
        assert outcome.attempts == 2  # failed twice, then quarantined


class TestSweepIntegration:
    def test_sweep_metrics_matches_direct_runs(self, small_config):
        serial = Runner(
            config=small_config, horizon=30_000, target_insts=200_000
        )
        data = sweep_metrics(serial, ["D2"], ["shared-frfcfs", "ebp"])
        direct = Runner(
            config=small_config, horizon=30_000, target_insts=200_000
        )
        from repro.workloads import get_mix

        expected = direct.run_mix(get_mix("D2"), "ebp").metrics
        assert data["ebp"]["ws"] == [expected.weighted_speedup]
        assert data["ebp"]["ms"] == [expected.max_slowdown]
        assert data["ebp"]["hs"] == [expected.harmonic_speedup]

    def test_parallel_sweep_adopts_into_runner_cache(self, small_config):
        runner = Runner(
            config=small_config,
            horizon=30_000,
            target_insts=200_000,
            jobs=2,
        )
        data = sweep_metrics(runner, ["D2"], ["shared-frfcfs", "ebp"])
        assert runner.cached_run(("lbm", "h264ref"), "ebp") is not None
        assert len(data["ebp"]["ws"]) == 1

    def test_parallel_sweep_failure_raises_experiment_error(
        self, small_config, monkeypatch
    ):
        from repro.core.integration import APPROACHES, Approach

        # Registered (so planning passes) but the policy name is bogus, so
        # every worker attempt fails and the sweep must surface the error.
        monkeypatch.setitem(
            APPROACHES, "tmp-bad", Approach("tmp-bad", "no-such-policy", "frfcfs")
        )
        runner = Runner(
            config=small_config,
            horizon=30_000,
            target_insts=200_000,
            jobs=2,
        )
        with pytest.raises(ExperimentError):
            sweep_metrics(runner, ["D2"], ["tmp-bad"])


class TestRunnerStoreIntegration:
    def test_runner_reads_and_writes_store(self, tmp_path, small_config):
        store = ResultStore(tmp_path / "store")
        first = Runner(
            config=small_config,
            horizon=30_000,
            target_insts=200_000,
            store=store,
        )
        a = first.run_apps(["lbm", "gcc"], "shared-frfcfs")
        assert store.stats.writes == 1
        second = Runner(
            config=small_config,
            horizon=30_000,
            target_insts=200_000,
            store=store,
        )
        b = second.run_apps(["lbm", "gcc"], "shared-frfcfs")
        assert store.stats.hits == 1
        assert b.metrics.summary == a.metrics.summary


class TestCampaignCLI:
    def test_campaign_cli_runs_and_resumes(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "--horizon",
            "20000",
            "campaign",
            "--mixes",
            "D2",
            "--approaches",
            "shared-frfcfs",
            "--jobs",
            "1",
            "--store",
            str(tmp_path / "store"),
            "--quiet",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 executed" in out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 cached" in out
        assert "100% hit rate" in out

    def test_campaign_cli_json_format(self, tmp_path, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "--horizon",
                    "20000",
                    "campaign",
                    "--mixes",
                    "D2",
                    "--approaches",
                    "shared-frfcfs",
                    "--no-store",
                    "--quiet",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["total"] == 1
        assert doc["runs"][0]["status"] == "ok"
        assert doc["runs"][0]["metrics"]["ws"] > 0


class TestAggregateTelemetry:
    def _outcome(self, telemetry):
        from types import SimpleNamespace

        result = (
            None if telemetry == "no-result"
            else SimpleNamespace(telemetry=telemetry)
        )
        return SimpleNamespace(result=result)

    def test_sums_counters_and_maxes_depths(self):
        from repro.campaign import aggregate_telemetry

        merged = aggregate_telemetry(
            [
                self._outcome(
                    {
                        "epochs": 3,
                        "quanta": 3,
                        "repartitions": 2,
                        "max_read_queue_depth": 10,
                    }
                ),
                self._outcome(
                    {
                        "epochs": 5,
                        "quanta": 5,
                        "repartitions": 1,
                        "max_read_queue_depth": 7,
                        "streamed_epochs": 5,
                    }
                ),
                self._outcome(None),  # a run without telemetry
            ]
        )
        assert merged["runs"] == 2
        assert merged["epochs"] == 8
        assert merged["quanta"] == 8
        assert merged["repartitions"] == 3
        assert merged["max_read_queue_depth"] == 10
        assert merged["streamed_epochs"] == 5
        # Fields no run reported are dropped, not reported as 0.
        assert "pages_migrated" not in merged

    def test_none_when_no_run_recorded(self):
        from repro.campaign import aggregate_telemetry

        assert aggregate_telemetry([]) is None
        assert aggregate_telemetry([self._outcome(None)]) is None
        assert aggregate_telemetry([self._outcome("no-result")]) is None

    def test_accepts_a_generator(self):
        from repro.campaign import aggregate_telemetry

        outcomes = (self._outcome({"epochs": 2}) for _ in range(3))
        assert aggregate_telemetry(outcomes)["epochs"] == 6

    def test_campaign_report_carries_telemetry_line(self, specs):
        from dataclasses import replace

        from repro.campaign import render_report

        recorded = [replace(spec, telemetry=True) for spec in specs]
        result = execute(recorded, jobs=1)
        assert [o.status for o in result.outcomes] == ["ok", "ok"]
        report = render_report(result)
        assert "telemetry: 2 recorded run(s);" in report
        assert "epochs=" in report
