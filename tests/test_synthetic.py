"""Synthetic workload generator tests: the knobs do what they claim."""

import pytest

from repro.workloads import APP_PROFILES, AppProfile, generate_trace, get_profile
from repro.workloads.synthetic import LINES_PER_PAGE
from repro.errors import ConfigError


def profile(**overrides):
    base = dict(
        name="test",
        mpki=20.0,
        row_locality=0.8,
        streams=4,
        write_frac=0.3,
        footprint_mb=4,
    )
    base.update(overrides)
    return AppProfile(**base)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace(profile(), seed=5)
        b = generate_trace(profile(), seed=5)
        assert a.records == b.records

    def test_different_seed_different_trace(self):
        a = generate_trace(profile(), seed=5)
        b = generate_trace(profile(), seed=6)
        assert a.records != b.records

    def test_different_apps_different_streams(self):
        a = generate_trace(profile(name="x"), seed=5)
        b = generate_trace(profile(name="y"), seed=5)
        assert a.records != b.records


class TestMPKI:
    @pytest.mark.parametrize("target", [2.0, 10.0, 40.0])
    def test_intrinsic_mpki_near_target(self, target):
        trace = generate_trace(profile(mpki=target), length_override=5000)
        assert trace.intrinsic_mpki == pytest.approx(target, rel=0.15)

    def test_length_scales_with_mpki(self):
        light = generate_trace(profile(mpki=0.1), target_insts=4_000_000)
        heavy = generate_trace(profile(mpki=30.0), target_insts=4_000_000)
        assert len(light) < len(heavy)

    def test_length_clamped(self):
        trace = generate_trace(
            profile(mpki=30.0), target_insts=10**10, max_records=1000
        )
        assert len(trace) == 1000


class TestLocality:
    def _sequential_fraction(self, trace):
        # Measures per-stream sequentiality indirectly: consecutive vlines.
        records = trace.records
        seq = sum(
            1
            for a, b in zip(records, records[1:])
            if b.vline == a.vline + 1
        )
        return seq / (len(records) - 1)

    def test_high_locality_single_stream_is_sequential(self):
        trace = generate_trace(
            profile(row_locality=0.95, streams=1, burst=1),
            length_override=4000,
        )
        assert self._sequential_fraction(trace) > 0.8

    def test_low_locality_is_scattered(self):
        trace = generate_trace(
            profile(row_locality=0.05, streams=1, burst=1),
            length_override=4000,
        )
        assert self._sequential_fraction(trace) < 0.2


class TestStructure:
    def test_footprint_bounded(self):
        prof = profile(footprint_mb=1)
        trace = generate_trace(prof, length_override=4000)
        max_line = (1 << 20) // 4096 * LINES_PER_PAGE
        assert all(r.vline < max_line for r in trace.records)

    def test_streams_partition_footprint(self):
        prof = profile(streams=4, footprint_mb=4, row_locality=0.0)
        trace = generate_trace(prof, length_override=4000)
        pages = {r.vline // LINES_PER_PAGE for r in trace.records}
        region = (4 << 20) // 4096 // 4
        regions = {p // region for p in pages}
        assert regions == {0, 1, 2, 3}

    def test_write_fraction_near_target(self):
        trace = generate_trace(profile(write_frac=0.3), length_override=5000)
        frac = sum(r.is_write for r in trace.records) / len(trace)
        assert frac == pytest.approx(0.3, abs=0.05)

    def test_burst_structure_present(self):
        prof = profile(mpki=10.0, burst=8)
        trace = generate_trace(prof, length_override=5000)
        small = sum(1 for r in trace.records if r.gap <= 2)
        # Most records belong to bursts (small gaps).
        assert small / len(trace) > 0.6


class TestProfiles:
    def test_all_builtin_profiles_generate(self):
        for name in APP_PROFILES:
            trace = generate_trace(get_profile(name), target_insts=100_000)
            assert len(trace) >= 1

    def test_burst_defaults_to_streams(self):
        prof = profile(streams=6)
        assert prof.burst == 6

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            get_profile("quake3")

    def test_intensity_classification(self):
        assert get_profile("mcf").intensive
        assert not get_profile("povray").intensive

    def test_profiles_by_intensity_sorted(self):
        from repro.workloads import profiles_by_intensity

        intensive, light = profiles_by_intensity()
        mpkis = [p.mpki for p in intensive]
        assert mpkis == sorted(mpkis, reverse=True)
        assert all(p.mpki < 1 for p in light)
        assert all(p.mpki >= 1 for p in intensive)
