"""Unit and property tests for repro.utils."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.utils import (
    arithmetic_mean,
    ceil_div,
    clamp,
    geometric_mean,
    harmonic_mean,
    ilog2,
    is_power_of_two,
    largest_remainder_shares,
    make_rng,
)


class TestPowersOfTwo:
    def test_powers_are_detected(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers_are_rejected(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100):
            assert not is_power_of_two(value)

    def test_ilog2_exact(self):
        for exponent in range(20):
            assert ilog2(1 << exponent) == exponent

    def test_ilog2_rejects_non_powers(self):
        with pytest.raises(ConfigError):
            ilog2(12)

    def test_ilog2_rejects_zero(self):
        with pytest.raises(ConfigError):
            ilog2(0)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 4) == 0

    def test_rejects_zero_denominator(self):
        with pytest.raises(ConfigError):
            ceil_div(1, 0)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_math_ceil(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b) or ceil_div(a, b) == -(-a // b)


class TestClamp:
    def test_inside_range(self):
        assert clamp(5, 0, 10) == 5

    def test_below(self):
        assert clamp(-1, 0, 10) == 0

    def test_above(self):
        assert clamp(11, 0, 10) == 10

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigError):
            clamp(1, 5, 4)


class TestMeans:
    def test_geometric_mean_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_arithmetic_mean_basic(self):
        assert arithmetic_mean([1, 2, 3]) == pytest.approx(2.0)

    def test_harmonic_mean_basic(self):
        assert harmonic_mean([1, 1]) == pytest.approx(1.0)

    def test_harmonic_le_geometric_le_arithmetic(self):
        values = [1.5, 2.0, 7.0, 0.4]
        assert (
            harmonic_mean(values)
            <= geometric_mean(values)
            <= arithmetic_mean(values)
        )

    @pytest.mark.parametrize("fn", [geometric_mean, arithmetic_mean, harmonic_mean])
    def test_empty_rejected(self, fn):
        with pytest.raises(ValueError):
            fn([])

    @pytest.mark.parametrize("fn", [geometric_mean, harmonic_mean])
    def test_nonpositive_rejected(self, fn):
        with pytest.raises(ValueError):
            fn([1.0, 0.0])


class TestLargestRemainder:
    def test_exact_split(self):
        assert largest_remainder_shares([1, 1], 4) == [2, 2]

    def test_remainder_goes_to_largest_fraction(self):
        assert largest_remainder_shares([2, 1], 4) == [3, 1]

    def test_zero_weight_gets_zero(self):
        assert largest_remainder_shares([1, 0, 1], 4) == [2, 0, 2]

    def test_all_zero_weights(self):
        assert largest_remainder_shares([0, 0], 5) == [0, 0]

    def test_zero_total(self):
        assert largest_remainder_shares([3, 1], 0) == [0, 0]

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder_shares([1], -1)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder_shares([-1, 2], 3)

    @given(
        st.lists(st.floats(0, 100), min_size=1, max_size=16),
        st.integers(0, 64),
    )
    def test_shares_always_sum_to_total(self, weights, total):
        shares = largest_remainder_shares(weights, total)
        if sum(weights) == 0:
            assert shares == [0] * len(weights)
        else:
            assert sum(shares) == total
        assert all(s >= 0 for s in shares)

    @given(st.integers(1, 100), st.integers(1, 16))
    def test_equal_weights_split_evenly(self, total, n):
        shares = largest_remainder_shares([1.0] * n, total)
        assert max(shares) - min(shares) <= 1


class TestRng:
    def test_same_stream_reproducible(self):
        a = make_rng(1, "x").random()
        b = make_rng(1, "x").random()
        assert a == b

    def test_different_streams_differ(self):
        a = make_rng(1, "x").random()
        b = make_rng(1, "y").random()
        assert a != b

    def test_different_seeds_differ(self):
        a = make_rng(1, "x").random()
        b = make_rng(2, "x").random()
        assert a != b
