"""Full-system integration tests on a small configuration."""

import pytest

from repro.baselines import EqualBankPartitioning, SharedPolicy
from repro.core.dbp import DBPConfig, DynamicBankPartitioning
from repro.errors import SimulationError
from repro.sim.system import System
from repro.workloads import AppProfile, generate_trace

HEAVY = AppProfile("heavy", 25.0, 0.7, 4, 0.3, 1)
LIGHT = AppProfile("light", 0.4, 0.6, 2, 0.2, 1)


def traces(seed=1):
    return [
        generate_trace(HEAVY, seed=seed, target_insts=500_000),
        generate_trace(LIGHT, seed=seed, target_insts=500_000),
    ]


def run_system(small_config, horizon=25_000, policy=None, validate=False, seed=1):
    system = System(
        small_config,
        traces(seed),
        horizon=horizon,
        policy=policy,
        validate=validate,
    )
    return system, system.run()


class TestBasicRun:
    def test_completes_and_reports(self, small_config):
        _, result = run_system(small_config)
        assert set(result.threads) == {0, 1}
        heavy, light = result.threads[0], result.threads[1]
        assert heavy.app == "heavy"
        assert heavy.ipc > 0
        assert light.ipc > heavy.ipc  # light thread runs faster
        assert heavy.reads > light.reads
        assert result.total_commands > 0

    def test_refresh_happens(self, small_config):
        timings = small_config.timings
        horizon = 3 * timings.tREFI
        _, result = run_system(small_config, horizon=horizon)
        assert result.total_refreshes >= 2

    def test_protocol_validated_run(self, small_config):
        # validate=True replays every DRAM command through the independent
        # checker; any timing bug in the controller raises here.
        run_system(small_config, validate=True)

    def test_single_use(self, small_config):
        system, _ = run_system(small_config)
        with pytest.raises(SimulationError):
            system.run()

    def test_trace_count_must_match_cores(self, small_config):
        with pytest.raises(SimulationError):
            System(small_config, traces()[:1], horizon=1000)


class TestDeterminism:
    def test_same_seed_same_results(self, small_config):
        _, a = run_system(small_config)
        _, b = run_system(small_config)
        assert a.threads[0].ipc == b.threads[0].ipc
        assert a.threads[1].ipc == b.threads[1].ipc
        assert a.total_commands == b.total_commands
        assert a.engine_events == b.engine_events

    def test_different_traces_different_results(self, small_config):
        _, a = run_system(small_config, seed=1)
        _, b = run_system(small_config, seed=2)
        assert (a.threads[0].ipc, a.total_commands) != (
            b.threads[0].ipc,
            b.total_commands,
        )


class TestPolicies:
    def test_ebp_isolates_banks(self, small_config):
        system, _ = run_system(small_config, policy=EqualBankPartitioning())
        assert system.allocator.thread_colors(0) == frozenset({0, 1})
        assert system.allocator.thread_colors(1) == frozenset({2, 3})
        # Every request of thread 0 went to its banks.
        for _v, frame in system.page_tables[0].mapped_pages():
            assert system.address_map.frame_bank_color(frame) in {0, 1}

    def test_dbp_repartitions_during_run(self, small_config):
        policy = DynamicBankPartitioning(DBPConfig(epoch_cycles=5_000))
        system, result = run_system(small_config, policy=policy)
        assert policy.stat_repartitions >= 3

    def test_dbp_run_is_protocol_legal(self, small_config):
        policy = DynamicBankPartitioning(DBPConfig(epoch_cycles=5_000))
        run_system(small_config, policy=policy, validate=True)

    def test_migration_traffic_reaches_dram(self, small_config):
        policy = DynamicBankPartitioning(
            DBPConfig(epoch_cycles=5_000, hysteresis_colors=0)
        )
        system, result = run_system(small_config, policy=policy)
        if result.pages_migrated:
            served = sum(
                c.stats.reads_served + c.stats.writes_served
                for c in system.controllers
            )
            assert served > 0


class TestConservation:
    def test_no_requests_left_behind(self, small_config):
        # After the horizon everything enqueued was either served or is
        # still visibly queued — nothing vanished.
        system, result = run_system(small_config)
        served = sum(
            c.stats.reads_served + c.stats.writes_served
            for c in system.controllers
        )
        queued = sum(c.pending_requests for c in system.controllers)
        pending_events = system.engine.pending_events()
        issued = sum(t.reads + t.writes for t in result.threads.values())
        assert issued == served
        assert served + queued >= served  # queues consistent
        assert pending_events >= 0

    def test_cache_stats_consistent(self, small_config):
        system, _ = run_system(small_config)
        for cache in system.caches.values():
            assert cache.stat_hits + cache.stat_misses > 0
            assert 0.0 <= cache.miss_rate <= 1.0

    def test_bus_utilization_reported(self, small_config):
        _, result = run_system(small_config)
        assert set(result.bus_utilization) == {0}
        assert 0.0 < result.bus_utilization[0] <= 1.0

    def test_page_tables_consistent(self, small_config):
        system, _ = run_system(small_config)
        frames = []
        for table in system.page_tables.values():
            frames.extend(f for _v, f in table.mapped_pages())
        assert len(frames) == len(set(frames))  # no frame double-mapped


class TestEpochPlumbing:
    def test_profiler_feeds_tcm(self, small_config):
        config = small_config.with_scheduler("tcm", quantum_cycles=5_000)
        system = System(config, traces(), horizon=25_000)
        system.run()
        assert system.scheduler.stat_quanta >= 3
        # The light thread should sit in the latency cluster.
        assert 1 in system.scheduler.latency_cluster()

    def test_static_policy_plus_stateless_scheduler_has_no_epochs(
        self, small_config
    ):
        system = System(
            small_config, traces(), horizon=25_000, policy=SharedPolicy()
        )
        assert system._next_boundary() is None
        system.run()
