"""Address mapping tests, including hypothesis round-trip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.config import DRAMOrganization
from repro.errors import MappingError
from repro.mapping import AddressMap, MemLocation


# Module-level map for hypothesis tests: AddressMap is immutable, so
# sharing one instance across generated examples is safe.
_ORG = DRAMOrganization(
    channels=2,
    ranks_per_channel=2,
    banks_per_rank=8,
    rows_per_bank=1024,
    row_size_bytes=8192,
)
_AMAP = AddressMap(_ORG, page_size=4096)


@pytest.fixture
def amap():
    return _AMAP


class TestDecompose:
    def test_zero_address(self, amap):
        loc = amap.decompose_line(0)
        assert loc == MemLocation(channel=0, rank=0, bank=0, row=0, col=0)

    def test_column_in_low_bits(self, amap):
        loc = amap.decompose_line(5)
        assert loc.col == 5
        assert (loc.channel, loc.rank, loc.bank, loc.row) == (0, 0, 0, 0)

    def test_channel_above_column(self, amap):
        cols = 8192 // 64
        loc = amap.decompose_line(cols)
        assert loc.channel == 1
        assert loc.col == 0

    def test_byte_address_entry_point(self, amap):
        assert amap.decompose(64 * 5).col == 5

    def test_out_of_range_rejected(self, amap):
        with pytest.raises(MappingError):
            amap.decompose_line(1 << amap.total_line_bits)
        with pytest.raises(MappingError):
            amap.decompose_line(-1)

    @given(st.integers(min_value=0))
    def test_roundtrip(self, line):
        amap = _AMAP
        line %= 1 << amap.total_line_bits
        loc = amap.decompose_line(line)
        assert amap.compose_line(loc) == line

    def test_compose_field_range_checked(self, amap):
        with pytest.raises(MappingError):
            amap.compose_line(MemLocation(channel=2, rank=0, bank=0, row=0, col=0))


class TestFrames:
    def test_frame_count(self, amap):
        assert amap.frames_total == amap.org.capacity_bytes // 4096
        assert (
            amap.frames_per_bin * amap.org.channels * amap.bank_colors
            == amap.frames_total
        )

    @given(st.integers(min_value=0))
    def test_frame_roundtrip(self, frame):
        amap = _AMAP
        frame %= amap.frames_total
        channel, color, slot = amap.frame_fields(frame)
        assert amap.compose_frame(channel, color, slot) == frame
        assert amap.frame_channel(frame) == channel
        assert amap.frame_bank_color(frame) == color

    @given(
        st.integers(0, 1),
        st.integers(0, 15),
        st.integers(min_value=0),
    )
    def test_compose_fields_roundtrip(self, channel, color, slot):
        amap = _AMAP
        slot %= amap.frames_per_bin
        frame = amap.compose_frame(channel, color, slot)
        assert amap.frame_fields(frame) == (channel, color, slot)

    def test_color_encodes_rank_and_bank(self, amap):
        frame = amap.compose_frame(0, 10, 0)  # color 10 = rank 1, bank 2
        loc = amap.decompose_line(amap.line_in_frame(frame, 0))
        assert loc.rank == 1
        assert loc.bank == 2

    def test_frame_lines_stay_in_one_bank_and_row(self, amap):
        frame = amap.compose_frame(1, 7, 33)
        locs = {
            (lambda l: (l.channel, l.rank, l.bank, l.row))(
                amap.decompose_line(amap.line_in_frame(frame, offset))
            )
            for offset in range(1 << amap.page_line_bits)
        }
        assert len(locs) == 1  # whole page in one (channel, bank, row)

    def test_adjacent_slots_share_rows(self, amap):
        # 8 KB rows and 4 KB pages: slots 0 and 1 are the two halves of
        # row 0, giving cross-page row-buffer locality to dense bins.
        f0 = amap.compose_frame(0, 0, 0)
        f1 = amap.compose_frame(0, 0, 1)
        row0 = amap.decompose_line(amap.line_in_frame(f0, 0)).row
        row1 = amap.decompose_line(amap.line_in_frame(f1, 0)).row
        assert row0 == row1

    def test_range_checks(self, amap):
        with pytest.raises(MappingError):
            amap.frame_fields(amap.frames_total)
        with pytest.raises(MappingError):
            amap.compose_frame(0, 99, 0)
        with pytest.raises(MappingError):
            amap.compose_frame(0, 0, amap.frames_per_bin)
        with pytest.raises(MappingError):
            amap.line_in_frame(0, 64)

    def test_frames_in_bin_enumeration(self, amap):
        frames = list(amap.frames_in_bin(1, 3))
        assert len(frames) == amap.frames_per_bin
        assert all(amap.frame_channel(f) == 1 for f in frames[:5])
        assert all(amap.frame_bank_color(f) == 3 for f in frames[:5])


class TestConstraints:
    def test_row_smaller_than_page_rejected(self):
        org = DRAMOrganization(
            row_size_bytes=4096, rows_per_bank=1024
        )
        AddressMap(org, page_size=4096)  # equal is fine
        with pytest.raises(MappingError):
            AddressMap(org, page_size=8192)

    def test_page_smaller_than_line_rejected(self):
        org = DRAMOrganization()
        with pytest.raises(MappingError):
            AddressMap(org, page_size=32)

    def test_bank_key_unique(self, amap):
        keys = set()
        for ch in range(2):
            for color in range(16):
                frame = amap.compose_frame(ch, color, 0)
                loc = amap.decompose_line(amap.line_in_frame(frame, 0))
                keys.add(loc.bank_key)
        assert len(keys) == 32
