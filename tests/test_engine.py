"""Discrete-event engine tests."""

import functools

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine, SimProfiler


class TestOrdering:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(30, lambda c: fired.append(("b", c)))
        engine.schedule(10, lambda c: fired.append(("a", c)))
        engine.schedule(20, lambda c: fired.append(("m", c)))
        engine.run()
        assert fired == [("a", 10), ("m", 20), ("b", 30)]

    def test_same_cycle_fifo(self):
        engine = Engine()
        fired = []
        for tag in "abc":
            engine.schedule(5, lambda c, t=tag: fired.append(t))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_callback_may_schedule_more(self):
        engine = Engine()
        fired = []

        def chain(cycle):
            fired.append(cycle)
            if cycle < 50:
                engine.schedule(cycle + 10, chain)

        engine.schedule(0, chain)
        engine.run()
        assert fired == [0, 10, 20, 30, 40, 50]

    def test_now_tracks_current_event(self):
        engine = Engine()
        seen = []
        engine.schedule(7, lambda c: seen.append(engine.now))
        engine.run()
        assert seen == [7]


class TestBounds:
    def test_horizon_stops_run(self):
        engine = Engine(horizon=100)
        fired = []
        engine.schedule(50, lambda c: fired.append(c))
        engine.schedule(150, lambda c: fired.append(c))
        final = engine.run()
        assert fired == [50]
        assert final == 100
        assert engine.pending_events() == 1

    def test_until_overrides(self):
        engine = Engine()
        fired = []
        engine.schedule(50, lambda c: fired.append(c))
        engine.run(until=10)
        assert fired == []
        engine.run()
        assert fired == [50]

    def test_event_at_bound_not_run(self):
        engine = Engine(horizon=100)
        fired = []
        engine.schedule(100, lambda c: fired.append(c))
        engine.run()
        assert fired == []

    def test_event_at_bound_stays_pending(self):
        # The at-bound event is deferred, not dropped: a later run with a
        # larger bound must still deliver it at its original cycle.
        engine = Engine()
        fired = []
        engine.schedule(100, lambda c: fired.append(c))
        engine.run(until=100)
        assert fired == []
        assert engine.pending_events() == 1
        engine.run(until=101)
        assert fired == [100]

    def test_event_just_before_bound_runs(self):
        engine = Engine()
        fired = []
        engine.schedule(99, lambda c: fired.append(c))
        engine.run(until=100)
        assert fired == [99]
        assert engine.now == 100


class TestErrors:
    def test_scheduling_in_past_rejected(self):
        engine = Engine()
        errors = []

        def bad(cycle):
            try:
                engine.schedule(cycle - 1, lambda c: None)
            except SimulationError as error:
                errors.append(error)

        engine.schedule(10, bad)
        engine.run()
        assert errors

    def test_reentrancy_rejected(self):
        engine = Engine()
        errors = []

        def reenter(cycle):
            try:
                engine.run()
            except SimulationError as error:
                errors.append(error)

        engine.schedule(1, reenter)
        engine.run()
        assert errors

    def test_event_counter(self):
        engine = Engine()
        for i in range(5):
            engine.schedule(i, lambda c: None)
        engine.run()
        assert engine.stat_events == 5

    def test_run_rewind_rejected(self):
        # Regression: run(until=<past>) used to silently move self._now
        # backwards, so every timestamp taken afterwards — request
        # arrivals, epoch boundaries — was corrupted. It must raise.
        engine = Engine()
        engine.schedule(40, lambda c: None)
        engine.run(until=50)
        assert engine.now == 50
        with pytest.raises(SimulationError, match="rewind"):
            engine.run(until=20)
        # The failed call must not have moved time.
        assert engine.now == 50

    def test_run_to_current_time_is_noop(self):
        engine = Engine()
        engine.schedule(40, lambda c: None)
        engine.run(until=50)
        engine.run(until=50)  # not a rewind; nothing to do
        assert engine.now == 50


class TestProfiledRun:
    def test_profiled_loop_semantics_match_plain(self):
        # The profiled loop is a duplicate of the plain one; it must make
        # identical dispatch decisions (order, bound handling, counters).
        def drive(engine):
            fired = []
            engine.schedule(10, lambda c: fired.append(("a", c)))
            engine.schedule(5, lambda c: fired.append(("b", c)))
            engine.schedule(100, lambda c: fired.append(("late", c)))
            final = engine.run(until=100)
            return fired, final, engine.pending_events()

        plain = drive(Engine())
        profiled = drive(Engine(profiler=SimProfiler()))
        assert profiled == plain

    def test_events_charged_to_owner_class(self):
        class Ticker:
            def __init__(self):
                self.count = 0

            def tick(self, cycle):
                self.count += 1

        profiler = SimProfiler()
        engine = Engine(profiler=profiler)
        ticker = Ticker()
        for i in range(3):
            engine.schedule(i, ticker.tick)
        engine.schedule(5, functools.partial(lambda mul, c: None, 2))
        engine.run()
        assert profiler.events.get("Ticker") == 3
        assert sum(profiler.events.values()) == 4
        assert all(sec >= 0.0 for sec in profiler.seconds.values())
        # breakdown() is (name, seconds, events), heaviest first.
        names = [row[0] for row in profiler.breakdown()]
        assert "Ticker" in names
