"""Discrete-event engine tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestOrdering:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(30, lambda c: fired.append(("b", c)))
        engine.schedule(10, lambda c: fired.append(("a", c)))
        engine.schedule(20, lambda c: fired.append(("m", c)))
        engine.run()
        assert fired == [("a", 10), ("m", 20), ("b", 30)]

    def test_same_cycle_fifo(self):
        engine = Engine()
        fired = []
        for tag in "abc":
            engine.schedule(5, lambda c, t=tag: fired.append(t))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_callback_may_schedule_more(self):
        engine = Engine()
        fired = []

        def chain(cycle):
            fired.append(cycle)
            if cycle < 50:
                engine.schedule(cycle + 10, chain)

        engine.schedule(0, chain)
        engine.run()
        assert fired == [0, 10, 20, 30, 40, 50]

    def test_now_tracks_current_event(self):
        engine = Engine()
        seen = []
        engine.schedule(7, lambda c: seen.append(engine.now))
        engine.run()
        assert seen == [7]


class TestBounds:
    def test_horizon_stops_run(self):
        engine = Engine(horizon=100)
        fired = []
        engine.schedule(50, lambda c: fired.append(c))
        engine.schedule(150, lambda c: fired.append(c))
        final = engine.run()
        assert fired == [50]
        assert final == 100
        assert engine.pending_events() == 1

    def test_until_overrides(self):
        engine = Engine()
        fired = []
        engine.schedule(50, lambda c: fired.append(c))
        engine.run(until=10)
        assert fired == []
        engine.run()
        assert fired == [50]

    def test_event_at_bound_not_run(self):
        engine = Engine(horizon=100)
        fired = []
        engine.schedule(100, lambda c: fired.append(c))
        engine.run()
        assert fired == []


class TestErrors:
    def test_scheduling_in_past_rejected(self):
        engine = Engine()
        errors = []

        def bad(cycle):
            try:
                engine.schedule(cycle - 1, lambda c: None)
            except SimulationError as error:
                errors.append(error)

        engine.schedule(10, bad)
        engine.run()
        assert errors

    def test_reentrancy_rejected(self):
        engine = Engine()
        errors = []

        def reenter(cycle):
            try:
                engine.run()
            except SimulationError as error:
                errors.append(error)

        engine.schedule(1, reenter)
        engine.run()
        assert errors

    def test_event_counter(self):
        engine = Engine()
        for i in range(5):
            engine.schedule(i, lambda c: None)
        engine.run()
        assert engine.stat_events == 5
