"""Page table tests: translation, faulting, remap, hotness."""

import pytest

from repro.config import DRAMOrganization
from repro.errors import AllocationError
from repro.mapping import AddressMap
from repro.osmm import ColorAwareAllocator, PageTable


@pytest.fixture
def setup():
    org = DRAMOrganization(
        channels=2,
        ranks_per_channel=1,
        banks_per_rank=4,
        rows_per_bank=64,
        row_size_bytes=8192,
    )
    amap = AddressMap(org, page_size=4096)
    allocator = ColorAwareAllocator(amap)
    table = PageTable(0, allocator, amap)
    return table, allocator, amap


class TestTranslation:
    def test_first_touch_faults(self, setup):
        table, _, _ = setup
        table.translate_line(0)
        assert table.stat_faults == 1
        assert table.resident_pages == 1

    def test_same_page_no_second_fault(self, setup):
        table, _, _ = setup
        table.translate_line(0)
        table.translate_line(63)  # same 64-line page
        assert table.stat_faults == 1

    def test_translation_stable(self, setup):
        table, _, _ = setup
        first = table.translate_line(100)
        second = table.translate_line(100)
        assert first == second

    def test_offset_preserved(self, setup):
        table, _, amap = setup
        phys = table.translate_line(64 + 5)  # vpage 1, offset 5
        assert phys & 63 == 5

    def test_distinct_vpages_distinct_frames(self, setup):
        table, _, _ = setup
        a = table.translate_line(0) >> 6
        b = table.translate_line(64) >> 6
        assert a != b

    def test_respects_thread_colors(self, setup):
        table, allocator, amap = setup
        allocator.set_thread_colors(0, {2})
        for vline in range(0, 64 * 10, 64):
            phys = table.translate_line(vline)
            frame = phys >> amap.page_line_bits
            assert amap.frame_bank_color(frame) == 2


class TestHotness:
    def test_access_counts(self, setup):
        table, _, _ = setup
        for _ in range(3):
            table.translate_line(0)
        table.translate_line(64)
        assert table.access_count(0) == 3
        assert table.access_count(1) == 1
        assert table.access_count(99) == 0

    def test_reset(self, setup):
        table, _, _ = setup
        table.translate_line(0)
        table.reset_access_counts()
        assert table.access_count(0) == 0
        # Mapping survives the reset.
        assert table.resident_pages == 1


class TestRemap:
    def test_remap_changes_frame(self, setup):
        table, allocator, amap = setup
        old_phys = table.translate_line(0)
        new_frame = allocator.allocate_in(0, 3)
        old_frame = table.remap(0, new_frame)
        assert old_frame == old_phys >> amap.page_line_bits
        assert table.translate_line(0) >> amap.page_line_bits == new_frame
        assert table.frame_of(0) == new_frame

    def test_remap_unmapped_rejected(self, setup):
        table, allocator, _ = setup
        frame = allocator.allocate_in(0, 0)
        with pytest.raises(AllocationError):
            table.remap(5, frame)

    def test_remap_to_used_frame_rejected(self, setup):
        table, allocator, _ = setup
        table.translate_line(0)
        frame0 = table.frame_of(0)
        table.translate_line(64)
        with pytest.raises(AllocationError):
            table.remap(1, frame0)

    def test_mapped_pages_iteration(self, setup):
        table, _, _ = setup
        table.translate_line(0)
        table.translate_line(64)
        pages = dict(table.mapped_pages())
        assert set(pages) == {0, 1}
