"""DRAM energy model tests."""

from dataclasses import replace

import pytest

from repro.dram.power import (
    DDR3_1066_POWER,
    POWER_PRESETS,
    PowerParams,
    estimate_energy,
)
from repro.errors import ConfigError
from repro.sim.system import System
from repro.workloads import AppProfile, generate_trace


def run_small(small_config, page_policy=None, horizon=20_000):
    config = replace(small_config, num_cores=1)
    if page_policy is not None:
        config = replace(
            config, controller=replace(config.controller, page_policy=page_policy)
        )
    profile = AppProfile("load", 25.0, 0.7, 3, 0.3, 1, burst=3)
    trace = generate_trace(profile, seed=3, target_insts=300_000)
    system = System(config, [trace], horizon=horizon)
    system.run()
    return system


class TestParams:
    def test_presets_exist_for_all_timing_grades(self):
        assert set(POWER_PRESETS) == {"DDR3-1066", "DDR3-1333", "DDR3-1600"}

    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigError):
            PowerParams("bad", -1.0, 1.0, 1.0, 1.0, 1.0)


class TestEstimation:
    def test_breakdown_sums_to_total(self, small_config):
        system = run_small(small_config)
        report = estimate_energy(system)
        assert report.total_nj == pytest.approx(
            report.activate_nj
            + report.read_nj
            + report.write_nj
            + report.refresh_nj
            + report.background_nj
        )
        assert report.dynamic_nj > 0
        assert report.background_nj > 0

    def test_energy_tracks_command_counts(self, small_config):
        system = run_small(small_config)
        report = estimate_energy(system, DDR3_1066_POWER)
        activates = sum(
            bank.stat_activates
            for ch in system.channels
            for rank in ch.ranks
            for bank in rank.banks
        )
        expected = activates * DDR3_1066_POWER.activate_precharge_nj
        assert report.activate_nj == pytest.approx(expected)

    def test_closed_page_costs_more_activate_energy(self, small_config):
        open_sys = run_small(small_config, page_policy="open")
        closed_sys = run_small(small_config, page_policy="closed")
        open_report = estimate_energy(open_sys)
        closed_report = estimate_energy(closed_sys)
        assert closed_report.activate_nj > open_report.activate_nj

    def test_background_scales_with_time(self, small_config):
        short = estimate_energy(run_small(small_config, horizon=10_000))
        long = estimate_energy(run_small(small_config, horizon=20_000))
        assert long.background_nj == pytest.approx(
            2 * short.background_nj, rel=0.01
        )

    def test_per_channel_breakdown(self, small_config):
        system = run_small(small_config)
        report = estimate_energy(system)
        assert set(report.per_channel_nj) == {0}
        assert report.per_channel_nj[0] == pytest.approx(report.dynamic_nj)

    def test_render_mentions_total(self, small_config):
        report = estimate_energy(run_small(small_config))
        text = report.render()
        assert "total" in text
        assert "mJ" in text

    def test_explicit_params_override_preset(self, small_config):
        system = run_small(small_config)
        custom = PowerParams("custom", 100.0, 0.0, 0.0, 0.0, 0.0)
        report = estimate_energy(system, custom)
        assert report.read_nj == 0.0
        assert report.activate_nj > 0
