"""Scheduler policy unit tests (ordering logic, clustering, batching)."""

import pytest

from repro.errors import ConfigError
from repro.mapping import MemLocation
from repro.memctrl.request import Request
from repro.memctrl.schedulers import (
    ATLASScheduler,
    BLISSScheduler,
    FCFSScheduler,
    FRFCFSScheduler,
    PARBSScheduler,
    TCMScheduler,
    make_scheduler,
    scheduler_names,
)
from repro.memctrl.schedulers.base import ProfileSnapshot, ThreadProfile


def req(thread=0, bank=0, row=0, arrival=0, write=False):
    return Request(
        thread_id=thread,
        is_write=write,
        line_addr=0,
        loc=MemLocation(channel=0, rank=0, bank=bank, row=row, col=0),
        arrival=arrival,
    )


def profile(thread, mpki=10.0, rbh=0.5, blp=2.0, bandwidth=0.2, requests=100):
    return ThreadProfile(thread, mpki, rbh, blp, bandwidth, requests)


def snapshot(profiles, cycle=0):
    return ProfileSnapshot(cycle=cycle, threads={p.thread_id: p for p in profiles})


class TestRegistry:
    def test_all_names_present(self):
        assert scheduler_names() == [
            "atlas",
            "bliss",
            "fcfs",
            "frfcfs",
            "parbs",
            "tcm",
        ]

    def test_make_by_name(self):
        assert isinstance(make_scheduler("tcm", num_threads=4), TCMScheduler)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_scheduler("magic", num_threads=4)

    def test_params_forwarded(self):
        sched = make_scheduler("tcm", num_threads=4, cluster_fraction=0.25)
        assert sched.cluster_fraction == 0.25


class TestFCFS:
    def test_orders_by_arrival_only(self):
        sched = FCFSScheduler(num_threads=2)
        older = req(arrival=5)
        newer = req(arrival=9)
        assert sched.key(older, False, 100) < sched.key(newer, True, 100)


class TestFRFCFS:
    def test_row_hit_beats_age(self):
        sched = FRFCFSScheduler(num_threads=2)
        old_miss = req(arrival=1)
        young_hit = req(arrival=50)
        assert sched.key(young_hit, True, 100) < sched.key(old_miss, False, 100)

    def test_age_breaks_hit_ties(self):
        sched = FRFCFSScheduler(num_threads=2)
        a = req(arrival=1)
        b = req(arrival=2)
        assert sched.key(a, True, 100) < sched.key(b, True, 100)


class TestATLAS:
    def test_less_served_thread_wins(self):
        sched = ATLASScheduler(num_threads=2)
        for _ in range(10):
            sched.on_served(req(thread=0), 0)
        sched.on_quantum(snapshot([profile(0), profile(1)]))
        assert sched.attained_service(0) > sched.attained_service(1)
        key0 = sched.key(req(thread=0, arrival=0), False, 0)
        key1 = sched.key(req(thread=1, arrival=5), False, 0)
        assert key1 < key0

    def test_history_decays(self):
        sched = ATLASScheduler(num_threads=1, alpha=0.5)
        for _ in range(10):
            sched.on_served(req(thread=0), 0)
        sched.on_quantum(snapshot([profile(0)]))
        first = sched.attained_service(0)
        for _ in range(4):
            sched.on_quantum(snapshot([profile(0)]))
        assert sched.attained_service(0) < first / 4

    def test_migration_traffic_not_charged(self):
        sched = ATLASScheduler(num_threads=1)
        request = req(thread=0)
        request.is_migration = True
        sched.on_served(request, 0)
        sched.on_quantum(snapshot([profile(0)]))
        assert sched.attained_service(0) == 0.0


    def test_bad_params_rejected(self):
        with pytest.raises(ConfigError):
            ATLASScheduler(num_threads=2, quantum_cycles=0)
        with pytest.raises(ConfigError):
            ATLASScheduler(num_threads=2, alpha=1.0)
        with pytest.raises(ConfigError):
            ATLASScheduler(num_threads=2, service_per_request=0)


class TestPARBS:
    def _attach(self, sched, requests):
        class FakeController:
            def __init__(self, reads):
                self.read_queue = reads

        sched.attach_controller(FakeController(requests))

    def test_batch_marks_oldest_per_thread_bank(self):
        sched = PARBSScheduler(num_threads=2, marking_cap=2)
        requests = [req(thread=0, bank=0, arrival=i) for i in range(5)]
        self._attach(sched, requests)
        keys = {r.req_id: sched.key(r, False, 0) for r in requests}
        marked = [r for r in requests if keys[r.req_id][0] == 0]
        assert len(marked) == 2
        assert {r.arrival for r in marked} == {0, 1}

    def test_marked_beats_unmarked(self):
        sched = PARBSScheduler(num_threads=2, marking_cap=1)
        old = req(thread=0, bank=0, arrival=0)
        young = req(thread=0, bank=0, arrival=1)
        self._attach(sched, [old, young])
        assert sched.key(old, False, 0) < sched.key(young, True, 0)

    def test_shortest_job_ranked_first(self):
        sched = PARBSScheduler(num_threads=2, marking_cap=5)
        heavy = [req(thread=0, bank=0, arrival=i) for i in range(4)]
        light = [req(thread=1, bank=1, arrival=10)]
        self._attach(sched, heavy + light)
        sched.key(heavy[0], False, 0)  # trigger batch formation
        assert sched._thread_rank[1] < sched._thread_rank[0]

    def test_new_batch_when_drained(self):
        sched = PARBSScheduler(num_threads=1, marking_cap=5)
        first = req(thread=0, bank=0, arrival=0)
        self._attach(sched, [first])
        sched.key(first, False, 0)
        assert sched.stat_batches == 1
        sched.on_served(first, 10)
        later = req(thread=0, bank=0, arrival=20)
        self._attach(sched, [later])
        sched.key(later, False, 20)
        assert sched.stat_batches >= 2


class TestBLISS:
    def test_streak_triggers_blacklist(self):
        sched = BLISSScheduler(num_threads=2, blacklist_threshold=3)
        for _ in range(3):
            sched.on_served(req(thread=0), 100)
        assert sched.blacklisted() == {0}
        assert sched.stat_blacklistings == 1

    def test_streak_broken_by_other_thread(self):
        sched = BLISSScheduler(num_threads=2, blacklist_threshold=3)
        sched.on_served(req(thread=0), 100)
        sched.on_served(req(thread=0), 110)
        sched.on_served(req(thread=1), 120)  # breaks the streak
        sched.on_served(req(thread=0), 130)
        assert sched.blacklisted() == set()

    def test_blacklisted_thread_loses_priority(self):
        sched = BLISSScheduler(num_threads=2, blacklist_threshold=2)
        for _ in range(2):
            sched.on_served(req(thread=0), 100)
        listed = sched.key(req(thread=0, arrival=0), True, 200)
        clean = sched.key(req(thread=1, arrival=50), False, 200)
        assert clean < listed  # even a row miss of a clean thread wins

    def test_blacklist_cleared_periodically(self):
        sched = BLISSScheduler(
            num_threads=2, blacklist_threshold=2, clearing_interval=1_000
        )
        for _ in range(2):
            sched.on_served(req(thread=0), 100)
        assert sched.blacklisted() == {0}
        sched.key(req(thread=0), False, 1_500)  # next interval
        assert sched.blacklisted() == set()

    def test_migration_traffic_ignored(self):
        sched = BLISSScheduler(num_threads=1, blacklist_threshold=2)
        request = req(thread=0)
        request.is_migration = True
        for _ in range(5):
            sched.on_served(request, 100)
        assert sched.blacklisted() == set()

    def test_bad_params_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            BLISSScheduler(num_threads=2, blacklist_threshold=0)
        with pytest.raises(ConfigError):
            BLISSScheduler(num_threads=2, clearing_interval=0)


class TestTCMClustering:
    def test_low_mpki_threads_in_latency_cluster(self):
        sched = TCMScheduler(num_threads=4, cluster_fraction=0.2)
        sched.on_quantum(
            snapshot(
                [
                    profile(0, mpki=0.2, bandwidth=0.01),
                    profile(1, mpki=25, bandwidth=0.5),
                    profile(2, mpki=30, bandwidth=0.5),
                    profile(3, mpki=0.4, bandwidth=0.02),
                ]
            )
        )
        assert set(sched.latency_cluster()) == {0, 3}
        assert set(sched.bandwidth_cluster()) == {1, 2}

    def test_all_heavy_gives_empty_latency_cluster(self):
        sched = TCMScheduler(num_threads=2, cluster_fraction=0.1)
        sched.on_quantum(
            snapshot(
                [
                    profile(0, mpki=25, bandwidth=0.5),
                    profile(1, mpki=30, bandwidth=0.5),
                ]
            )
        )
        assert sched.latency_cluster() == []

    def test_latency_cluster_outranks_bandwidth(self):
        sched = TCMScheduler(num_threads=2, cluster_fraction=0.2)
        sched.on_quantum(
            snapshot(
                [
                    profile(0, mpki=0.1, bandwidth=0.01),
                    profile(1, mpki=30, bandwidth=0.9),
                ]
            )
        )
        latency_key = sched.key(req(thread=0, arrival=100), False, 0)
        bandwidth_key = sched.key(req(thread=1, arrival=0), True, 0)
        assert latency_key < bandwidth_key

    def test_shuffle_changes_ranks_over_time(self):
        sched = TCMScheduler(
            num_threads=3, cluster_fraction=0.0, shuffle_interval=100
        )
        sched.on_quantum(
            snapshot([profile(t, mpki=20, bandwidth=0.3) for t in range(3)])
        )
        tops = set()
        for slot in range(12):
            now = slot * 100
            keys = {
                t: sched.key(req(thread=t), False, now) for t in range(3)
            }
            tops.add(min(keys, key=keys.get))
        assert len(tops) == 3  # every thread reaches the top

    def test_every_thread_leaves_the_bottom(self):
        sched = TCMScheduler(
            num_threads=3, cluster_fraction=0.0, shuffle_interval=100
        )
        sched.on_quantum(
            snapshot(
                [
                    profile(0, mpki=20, blp=4.0, rbh=0.2, bandwidth=0.3),
                    profile(1, mpki=20, blp=2.0, rbh=0.5, bandwidth=0.3),
                    profile(2, mpki=20, blp=1.0, rbh=0.9, bandwidth=0.3),
                ]
            )
        )
        bottoms = set()
        for slot in range(12):
            now = slot * 100
            keys = {
                t: sched.key(req(thread=t), False, now) for t in range(3)
            }
            bottoms.add(max(keys, key=keys.get))
        assert len(bottoms) >= 2

    def test_nicest_thread_gets_more_top_time(self):
        sched = TCMScheduler(
            num_threads=2, cluster_fraction=0.0, shuffle_interval=100
        )
        sched.on_quantum(
            snapshot(
                [
                    profile(0, mpki=20, blp=8.0, rbh=0.1, bandwidth=0.3),
                    profile(1, mpki=20, blp=1.0, rbh=0.9, bandwidth=0.3),
                ]
            )
        )
        top_counts = {0: 0, 1: 0}
        for slot in range(30):
            now = slot * 100
            keys = {
                t: sched.key(req(thread=t), False, now) for t in range(2)
            }
            top_counts[min(keys, key=keys.get)] += 1
        assert top_counts[0] > top_counts[1]  # high BLP = nice = more top

    def test_rotate_mode_equal_shares(self):
        sched = TCMScheduler(
            num_threads=2,
            cluster_fraction=0.0,
            shuffle_interval=100,
            shuffle_mode="rotate",
        )
        sched.on_quantum(
            snapshot([profile(t, mpki=20, bandwidth=0.3) for t in range(2)])
        )
        tops = [
            min(
                range(2),
                key=lambda t: sched.key(req(thread=t), False, slot * 100),
            )
            for slot in range(10)
        ]
        assert tops.count(0) == tops.count(1)

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigError):
            TCMScheduler(num_threads=2, cluster_fraction=1.5)
        with pytest.raises(ConfigError):
            TCMScheduler(num_threads=2, shuffle_mode="chaos")
        with pytest.raises(ConfigError):
            TCMScheduler(num_threads=2, quantum_cycles=0)
        with pytest.raises(ConfigError):
            TCMScheduler(num_threads=2, shuffle_interval=-1)

    def test_parbs_bad_marking_cap_rejected(self):
        with pytest.raises(ConfigError):
            PARBSScheduler(num_threads=2, marking_cap=0)
