"""Protocol validator tests: accepts legal streams, rejects each violation."""

import pytest

from repro.dram.commands import Command, CommandType
from repro.dram.validator import ProtocolValidator
from repro.errors import ProtocolError


def cmd(cycle, kind, rank=0, bank=0, row=-1):
    return Command(cycle=cycle, kind=kind, channel=0, rank=rank, bank=bank, row=row)


@pytest.fixture
def validator(timings):
    return ProtocolValidator(timings, num_ranks=2, num_banks=4)


class TestLegalStreams:
    def test_activate_read_precharge(self, validator, timings):
        t = timings
        stream = [
            cmd(0, CommandType.ACTIVATE, row=1),
            cmd(t.tRCD, CommandType.READ),
            cmd(max(t.tRAS, t.tRCD + t.tRTP), CommandType.PRECHARGE),
        ]
        assert validator.observe_all(stream) == 3

    def test_parallel_banks(self, validator, timings):
        t = timings
        stream = [
            cmd(0, CommandType.ACTIVATE, bank=0, row=1),
            cmd(t.tRRD, CommandType.ACTIVATE, bank=1, row=2),
            cmd(t.tRCD, CommandType.READ, bank=0),
            cmd(max(t.tRRD + t.tRCD, t.tRCD + t.tCCD), CommandType.READ, bank=1),
        ]
        validator.observe_all(stream)

    def test_refresh_cycle(self, validator, timings):
        t = timings
        stream = [
            cmd(t.tREFI, CommandType.REFRESH, bank=-1),
            cmd(t.tREFI + t.tRFC, CommandType.ACTIVATE, row=3),
        ]
        validator.observe_all(stream)


class TestViolations:
    def _expect(self, validator, stream, rule):
        with pytest.raises(ProtocolError) as excinfo:
            validator.observe_all(stream)
        assert rule in str(excinfo.value)

    def test_trcd(self, validator, timings):
        self._expect(
            validator,
            [
                cmd(0, CommandType.ACTIVATE, row=1),
                cmd(timings.tRCD - 1, CommandType.READ),
            ],
            "tRCD",
        )

    def test_tras(self, validator, timings):
        self._expect(
            validator,
            [
                cmd(0, CommandType.ACTIVATE, row=1),
                cmd(timings.tRAS - 1, CommandType.PRECHARGE),
            ],
            "tRAS",
        )

    def test_trp(self, validator, timings):
        t = timings
        self._expect(
            validator,
            [
                cmd(0, CommandType.ACTIVATE, row=1),
                cmd(t.tRAS, CommandType.PRECHARGE),
                cmd(t.tRAS + t.tRP - 1, CommandType.ACTIVATE, row=2),
            ],
            "tRP",
        )

    def test_trc(self, validator, timings):
        t = timings
        # Construct a case where tRP is satisfied but tRC is not.
        if t.tRAS + t.tRP >= t.tRC:
            pytest.skip("preset cannot distinguish tRC from tRAS+tRP")
        self._expect(
            validator,
            [
                cmd(0, CommandType.ACTIVATE, row=1),
                cmd(t.tRAS, CommandType.PRECHARGE),
                cmd(t.tRC - 1, CommandType.ACTIVATE, row=2),
            ],
            "tRC",
        )

    def test_trrd(self, validator, timings):
        self._expect(
            validator,
            [
                cmd(0, CommandType.ACTIVATE, bank=0, row=1),
                cmd(timings.tRRD - 1, CommandType.ACTIVATE, bank=1, row=1),
            ],
            "tRRD",
        )

    def test_tfaw(self, timings):
        t = timings
        fifth_time = 4 * t.tRRD
        if fifth_time >= t.tFAW:
            pytest.skip("tRRD spacing alone satisfies tFAW in this preset")
        wide = ProtocolValidator(timings, num_ranks=1, num_banks=8)
        stream = [
            cmd(i * t.tRRD, CommandType.ACTIVATE, bank=i, row=1)
            for i in range(4)
        ]
        stream.append(cmd(fifth_time, CommandType.ACTIVATE, bank=4, row=2))
        self._expect(wide, stream, "tFAW")

    def test_tccd(self, validator, timings):
        t = timings
        self._expect(
            validator,
            [
                cmd(0, CommandType.ACTIVATE, bank=0, row=1),
                cmd(t.tRRD, CommandType.ACTIVATE, bank=1, row=1),
                cmd(t.tRRD + t.tRCD, CommandType.READ, bank=1),
                cmd(t.tRRD + t.tRCD + t.tCCD - 1, CommandType.READ, bank=0),
            ],
            "tCCD",
        )

    def test_twtr(self, validator, timings):
        t = timings
        self._expect(
            validator,
            [
                cmd(0, CommandType.ACTIVATE, bank=0, row=1),
                cmd(t.tRCD, CommandType.WRITE, bank=0),
                cmd(t.tRCD + t.CWL + t.tBURST + 1, CommandType.READ, bank=0),
            ],
            "tWTR",
        )

    def test_act_to_open_bank(self, validator, timings):
        self._expect(
            validator,
            [
                cmd(0, CommandType.ACTIVATE, row=1),
                cmd(1000, CommandType.ACTIVATE, row=2),
            ],
            "open row",
        )

    def test_cas_to_idle_bank(self, validator):
        self._expect(validator, [cmd(10, CommandType.READ)], "idle bank")

    def test_pre_to_idle_bank(self, validator):
        self._expect(validator, [cmd(10, CommandType.PRECHARGE)], "idle")

    def test_refresh_with_open_bank(self, validator, timings):
        self._expect(
            validator,
            [
                cmd(0, CommandType.ACTIVATE, row=1),
                cmd(timings.tREFI, CommandType.REFRESH, bank=-1),
            ],
            "REF",
        )

    def test_command_during_trfc_blackout(self, validator, timings):
        t = timings
        self._expect(
            validator,
            [
                cmd(t.tREFI, CommandType.REFRESH, bank=-1),
                cmd(t.tREFI + t.tRFC - 1, CommandType.ACTIVATE, row=1),
            ],
            "blackout",
        )

    def test_out_of_order_commands(self, validator):
        self._expect(
            validator,
            [
                cmd(100, CommandType.ACTIVATE, row=1),
                cmd(50, CommandType.ACTIVATE, bank=1, row=1),
            ],
            "order",
        )

    def test_bus_conflict(self, timings):
        validator = ProtocolValidator(timings, 2, 4, clock_ratio=4)
        with pytest.raises(ProtocolError) as excinfo:
            validator.observe_all(
                [
                    cmd(0, CommandType.ACTIVATE, bank=0, row=1),
                    cmd(2, CommandType.ACTIVATE, bank=1, row=1),
                ]
            )
        assert "command bus" in str(excinfo.value)


class TestCrossValidation:
    """The device model and the validator must agree on legal streams."""

    def test_device_generated_stream_validates(self, timings):
        from repro.dram.channel import Channel

        channel = Channel(0, 2, 4, timings, clock_ratio=1)
        channel.enable_logging()
        t = timings
        channel.issue(cmd(0, CommandType.ACTIVATE, 0, 0, 5))
        channel.issue(cmd(t.tRRD, CommandType.ACTIVATE, 0, 1, 6))
        channel.issue(
            cmd(channel.earliest_cas(0, 0, False), CommandType.READ, 0, 0)
        )
        channel.issue(
            cmd(channel.earliest_cas(0, 1, True), CommandType.WRITE, 0, 1)
        )
        channel.issue(
            cmd(channel.earliest_precharge(0, 0), CommandType.PRECHARGE, 0, 0)
        )
        validator = ProtocolValidator(timings, 2, 4)
        assert validator.observe_all(channel.command_log) == 5
