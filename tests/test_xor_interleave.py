"""XOR bank-permutation mapping tests."""

from dataclasses import replace

import pytest
from hypothesis import given, strategies as st

from repro.config import DRAMOrganization
from repro.mapping import AddressMap
from repro.sim.system import System
from repro.workloads import AppProfile, generate_trace

_ORG = DRAMOrganization(
    channels=2,
    ranks_per_channel=1,
    banks_per_rank=8,
    rows_per_bank=256,
    row_size_bytes=8192,
)
_PLAIN = AddressMap(_ORG, 4096)
_XOR = AddressMap(_ORG, 4096, bank_xor=True)


class TestMapping:
    @given(st.integers(min_value=0))
    def test_roundtrip_holds_under_xor(self, line):
        line %= 1 << _XOR.total_line_bits
        loc = _XOR.decompose_line(line)
        assert _XOR.compose_line(loc) == line

    def test_bank_permuted_by_row(self):
        # Two addresses with the same stored bank bits but different rows
        # land in different banks under XOR, the same bank without it.
        line_row0 = (0 << _PLAIN._row_shift) | (3 << _PLAIN._bank_shift)
        line_row1 = (1 << _PLAIN._row_shift) | (3 << _PLAIN._bank_shift)
        assert (
            _PLAIN.decompose_line(line_row0).bank
            == _PLAIN.decompose_line(line_row1).bank
        )
        assert (
            _XOR.decompose_line(line_row0).bank
            != _XOR.decompose_line(line_row1).bank
        )

    def test_xor_is_a_permutation_within_each_row(self):
        row = 5
        banks = set()
        for bank_bits in range(8):
            line = (row << _XOR._row_shift) | (bank_bits << _XOR._bank_shift)
            banks.add(_XOR.decompose_line(line).bank)
        assert banks == set(range(8))

    def test_page_stays_in_one_bank(self):
        # XOR uses row bits only, and a page lives in one row: pages remain
        # bank-atomic, which keeps request-level behaviour sane.
        frame = _XOR.compose_frame(0, 5, 17)
        banks = {
            _XOR.decompose_line(_XOR.line_in_frame(frame, off)).bank
            for off in range(64)
        }
        assert len(banks) == 1


class TestSystemIntegration:
    def test_xor_run_is_protocol_legal(self, small_config):
        config = replace(small_config, num_cores=1, bank_xor_interleave=True)
        profile = AppProfile("probe", 20.0, 0.5, 3, 0.3, 1, burst=3)
        trace = generate_trace(profile, seed=2, target_insts=200_000)
        system = System(config, [trace], horizon=15_000, validate=True)
        result = system.run()
        assert result.threads[0].ipc > 0

    def test_xor_defeats_page_coloring(self, small_config):
        # Confine a thread to ONE bank color. On the plain mapping its
        # requests really serialize in one bank per channel; under XOR the
        # same frames' banks are permuted by row, spreading the requests —
        # which is exactly why partitioning and XOR interleaving are
        # mutually exclusive mechanisms.
        from repro.baselines import FixedAllocationPolicy

        profile = AppProfile("scatter", 25.0, 0.1, 6, 0.2, 1, burst=6)
        trace = generate_trace(profile, seed=4, target_insts=200_000)
        banks_touched = {}
        for xor in (False, True):
            config = replace(
                small_config, num_cores=1, bank_xor_interleave=xor
            )
            system = System(
                config,
                [trace],
                horizon=15_000,
                policy=FixedAllocationPolicy({0: [0]}),
            )
            system.run()
            touched = set()
            for channel in system.channels:
                for rank in channel.ranks:
                    for bank in rank.banks:
                        if bank.stat_activates:
                            touched.add((channel.channel_id, bank.bank_id))
            banks_touched[xor] = touched
        # Plain: one bank per channel. XOR: many banks despite the color.
        assert len(banks_touched[False]) <= small_config.organization.channels
        assert len(banks_touched[True]) > len(banks_touched[False])
