"""Property-based full-stack protocol tests.

Hypothesis drives randomized workloads through the complete system —
cores, caches, page tables, controller, device — under every scheduler and
partitioning approach, with the independent protocol validator attached.
Any timing violation anywhere in the stack fails the test.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.dbp import DBPConfig, DynamicBankPartitioning
from repro.baselines import (
    EqualBankPartitioning,
    MemoryChannelPartitioning,
    SharedPolicy,
)
from repro.config import (
    CacheConfig,
    ControllerConfig,
    CoreConfig,
    DRAMOrganization,
    OSConfig,
    SystemConfig,
)
from repro.sim.system import System
from repro.workloads import AppProfile, generate_trace

_PROFILE_STRATEGY = st.tuples(
    st.floats(0.5, 40.0),  # mpki
    st.floats(0.0, 0.95),  # row locality
    st.integers(1, 6),  # streams
    st.floats(0.0, 0.6),  # write fraction
    st.integers(1, 8),  # burst
)


def build_config(num_cores, scheduler):
    org = DRAMOrganization(
        channels=2,
        ranks_per_channel=1,
        banks_per_rank=4,
        rows_per_bank=128,
        row_size_bytes=8192,
    )
    return SystemConfig(
        num_cores=num_cores,
        clock_ratio=2,
        dram_preset="DDR3-1066",
        organization=org,
        core=CoreConfig(width=4, rob_size=64, mshrs=8),
        cache=CacheConfig(size_bytes=8 * 1024, associativity=4),
        controller=ControllerConfig(
            read_queue_depth=16,
            write_queue_depth=16,
            write_high_watermark=12,
            write_low_watermark=4,
            scheduler=scheduler,
            scheduler_params=(
                {"quantum_cycles": 4_000} if scheduler in ("tcm", "atlas") else {}
            ),
        ),
        osmm=OSConfig(migration_budget_pages=2, migration_lines_per_page=1),
    )


def build_traces(profiles, seed):
    traces = []
    for index, (mpki, locality, streams, wfrac, burst) in enumerate(profiles):
        profile = AppProfile(
            f"rand{index}", mpki, locality, streams, wfrac, 1, burst
        )
        traces.append(
            generate_trace(profile, seed=seed, target_insts=200_000)
        )
    return traces


POLICIES = {
    "shared": SharedPolicy,
    "ebp": EqualBankPartitioning,
    "mcp": MemoryChannelPartitioning,
    "dbp": lambda: DynamicBankPartitioning(
        DBPConfig(epoch_cycles=4_000, hysteresis_colors=0)
    ),
}


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    profiles=st.lists(_PROFILE_STRATEGY, min_size=1, max_size=3),
    seed=st.integers(0, 100),
    scheduler=st.sampled_from(["fcfs", "frfcfs", "parbs", "atlas", "tcm"]),
    policy_name=st.sampled_from(list(POLICIES)),
)
def test_random_workloads_are_protocol_legal(profiles, seed, scheduler, policy_name):
    config = build_config(len(profiles), scheduler)
    traces = build_traces(profiles, seed)
    policy = POLICIES[policy_name]()
    system = System(
        config, traces, horizon=12_000, policy=policy, validate=True
    )
    result = system.run()  # validate=True re-checks every command
    # Conservation: every serviced request was actually issued.
    served = sum(
        c.stats.reads_served + c.stats.writes_served for c in system.controllers
    )
    assert served >= 0
    for thread in result.threads.values():
        assert thread.retired_insts >= 0


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 50))
def test_heavy_shared_load_is_protocol_legal(seed):
    """A saturating all-heavy workload with refresh exercises write drain,
    refresh sequencing, and queue pressure simultaneously."""
    config = build_config(3, "frfcfs")
    profile = AppProfile("sat", 45.0, 0.6, 4, 0.45, 1, 8)
    traces = [
        generate_trace(profile, seed=seed + t, target_insts=200_000)
        for t in range(3)
    ]
    system = System(
        config, traces, horizon=15_000, policy=SharedPolicy(), validate=True
    )
    system.run()
