"""Core model tests against analytic expectations."""

import pytest

from repro.config import CoreConfig
from repro.cpu.core import Core
from repro.cpu.trace import Trace, TraceRecord
from repro.sim.engine import Engine


class RecordingPort:
    """Memory port with a fixed latency; records every access."""

    def __init__(self, engine, latency=20, synchronous=False):
        self.engine = engine
        self.latency = latency
        self.synchronous = synchronous
        self.accesses = []
        self.outstanding = 0
        self.max_outstanding = 0

    def access(self, thread_id, vline, is_write, at, on_complete):
        self.accesses.append((at, vline, is_write))
        if is_write:
            return None
        if self.synchronous:
            return at + self.latency
        self.outstanding += 1
        self.max_outstanding = max(self.max_outstanding, self.outstanding)

        def deliver(cycle):
            self.outstanding -= 1
            on_complete(cycle)

        self.engine.schedule(at + self.latency, deliver)
        return None


def run_core(trace, horizon=10_000, config=None, latency=20, synchronous=False):
    engine = Engine(horizon)
    port = RecordingPort(engine, latency=latency, synchronous=synchronous)
    core = Core(
        core_id=0,
        config=config or CoreConfig(width=4, rob_size=64, mshrs=8),
        trace=trace,
        port=port,
        scheduler=engine,
        horizon=horizon,
        ahead_limit=2048,
    )
    core.start()
    engine.run()
    return core, port


def uniform_trace(n, gap, is_write=False):
    return Trace(
        "u", [TraceRecord(gap, 100 + i, is_write) for i in range(n)]
    )


class TestComputeBound:
    def test_pure_compute_retires_at_width(self):
        # Huge gaps, tiny fast memory: IPC must approach the width.
        trace = uniform_trace(50, 9999)
        core, _ = run_core(trace, horizon=20_000, synchronous=True, latency=5)
        assert core.ipc() == pytest.approx(4.0, rel=0.02)

    def test_width_scales_compute_rate(self):
        trace = uniform_trace(50, 9999)
        narrow = CoreConfig(width=1, rob_size=64, mshrs=8)
        core, _ = run_core(
            trace, horizon=20_000, config=narrow, synchronous=True, latency=5
        )
        assert core.ipc() == pytest.approx(1.0, rel=0.02)


class TestMemoryBound:
    def test_serial_latency_bound(self):
        # MSHR=1 forces one outstanding read: throughput = 1 per (L+1).
        config = CoreConfig(width=4, rob_size=64, mshrs=1)
        trace = uniform_trace(10_000, 0)
        core, _ = run_core(trace, horizon=8_000, config=config, latency=40)
        requests = core.stats.reads_issued
        assert requests == pytest.approx(8_000 / 41, rel=0.05)

    def test_mlp_scales_with_mshrs(self):
        trace = uniform_trace(10_000, 0)
        results = {}
        for mshrs in (1, 4):
            config = CoreConfig(width=4, rob_size=256, mshrs=mshrs)
            core, _ = run_core(trace, horizon=8_000, config=config, latency=40)
            results[mshrs] = core.retired_insts_processed
        assert results[4] > 3.0 * results[1]

    def test_mshr_cap_respected(self):
        trace = uniform_trace(10_000, 0)
        config = CoreConfig(width=4, rob_size=256, mshrs=3)
        _, port = run_core(trace, horizon=5_000, config=config, latency=60)
        assert port.max_outstanding <= 3

    def test_rob_window_limits_mlp(self):
        # Gaps as large as the ROB: at most one memory record in the window.
        config = CoreConfig(width=4, rob_size=32, mshrs=16)
        trace = uniform_trace(5_000, 32)
        _, port = run_core(trace, horizon=5_000, config=config, latency=100)
        assert port.max_outstanding <= 2


class TestWrites:
    def test_writes_never_block(self):
        # All-write trace with enormous latency still retires at width.
        trace = uniform_trace(5_000, 3, is_write=True)
        core, port = run_core(trace, horizon=4_000, latency=10**6)
        assert core.ipc() == pytest.approx(4.0, rel=0.05)
        assert all(w for (_, _, w) in port.accesses)

    def test_write_counts(self):
        trace = uniform_trace(100, 3, is_write=True)
        core, _ = run_core(trace, horizon=1_000, synchronous=True)
        assert core.stats.writes_issued > 0
        assert core.stats.reads_issued == 0


class TestLooping:
    def test_trace_loops_past_end(self):
        trace = uniform_trace(10, 0)  # tiny trace
        core, port = run_core(trace, horizon=5_000, latency=10)
        assert core.stats.reads_issued > 10
        # Looped addresses repeat.
        vlines = [v for (_, v, _) in port.accesses]
        assert vlines[0] == vlines[10]

    def test_retired_can_exceed_one_loop(self):
        trace = uniform_trace(10, 3)
        core, _ = run_core(trace, horizon=5_000, synchronous=True, latency=5)
        assert core.retired_insts_processed > trace.total_insts


class TestHorizon:
    def test_ipc_uses_horizon_denominator(self):
        trace = uniform_trace(50, 9999)
        core, _ = run_core(trace, horizon=10_000, synchronous=True, latency=5)
        assert core.stats.finished
        assert core.stats.retired_insts <= 4 * 10_000

    def test_no_requests_issued_at_or_past_horizon(self):
        trace = uniform_trace(10_000, 0)
        _, port = run_core(trace, horizon=3_000, latency=10)
        assert all(at < 3_000 for (at, _, _) in port.accesses)


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        trace = uniform_trace(2_000, 2)
        a, pa = run_core(trace, horizon=4_000, latency=30)
        b, pb = run_core(trace, horizon=4_000, latency=30)
        assert a.stats.retired_insts == b.stats.retired_insts
        assert pa.accesses == pb.accesses


class TestIssueOrdering:
    def test_issue_times_monotonic(self):
        trace = uniform_trace(1_000, 1)
        _, port = run_core(trace, horizon=3_000, latency=25)
        times = [at for (at, _, _) in port.accesses]
        assert times == sorted(times)

    def test_addresses_follow_program_order(self):
        trace = uniform_trace(500, 1)
        _, port = run_core(trace, horizon=3_000, latency=25)
        vlines = [v for (_, v, _) in port.accesses]
        expected = [100 + i % 500 for i in range(len(vlines))]
        assert vlines == expected


class TestMidRunProbe:
    """Regression: ipc() used to freeze retirement counters when called
    mid-run (an epoch-boundary probe corrupted the rest of the run)."""

    def test_mid_run_ipc_probe_does_not_change_results(self):
        trace = uniform_trace(400, 10)

        def run(probe_cycles):
            engine = Engine(10_000)
            port = RecordingPort(engine, latency=20)
            core = Core(
                core_id=0,
                config=CoreConfig(width=4, rob_size=64, mshrs=8),
                trace=trace,
                port=port,
                scheduler=engine,
                horizon=10_000,
                ahead_limit=2048,
            )
            probes = []
            for cycle in probe_cycles:
                engine.schedule(cycle, lambda c: probes.append(core.ipc()))
            core.start()
            engine.run()
            core.finalize()
            return core, probes

        clean, _ = run([])
        probed, probes = run([1_000, 2_500, 5_000, 7_500])
        assert probed.stats.retired_insts == clean.stats.retired_insts
        assert probed.stats.reads_issued == clean.stats.reads_issued
        assert probed.ipc() == clean.ipc()
        # The probe itself sees monotone non-decreasing progress.
        assert probes == sorted(probes)
        assert probes[-1] > 0.0

    def test_ipc_before_finalize_reflects_progress(self):
        trace = uniform_trace(400, 10)
        engine = Engine(10_000)
        port = RecordingPort(engine, latency=20)
        core = Core(
            core_id=0,
            config=CoreConfig(width=4, rob_size=64, mshrs=8),
            trace=trace,
            port=port,
            scheduler=engine,
            horizon=10_000,
            ahead_limit=2048,
        )
        core.start()
        engine.run(until=2_000)
        mid = core.ipc()
        assert not core.stats.finished  # the probe must not finalize
        engine.run()
        core.finalize()
        assert core.stats.finished
        assert core.ipc() >= mid > 0.0


class TestHorizonEdge:
    """Pin the fencepost at the run bound: an engine event scheduled
    exactly at ``horizon`` does not run, so a read completing exactly at
    the horizon earns no retirement credit, while one cycle earlier
    retires the record's gap instructions (but not the read itself,
    which would retire at completion+1 == horizon)."""

    def _single_read(self, latency, horizon=100):
        trace = Trace("e", [TraceRecord(7, 100, False)])
        core, port = run_core(
            trace, horizon=horizon, latency=latency,
            config=CoreConfig(width=4, rob_size=64, mshrs=8),
        )
        core.finalize()
        return core, port

    def test_read_completing_at_horizon_gets_no_credit(self):
        core, _ = self._single_read(latency=100)
        assert core.stats.retired_insts == 0

    def test_read_completing_just_before_horizon_retires_gap(self):
        core, _ = self._single_read(latency=99)
        # The 7 gap instructions retire by the horizon; the read itself
        # would retire at completion+1 == horizon, which is out of bounds.
        assert core.stats.retired_insts == 7
