"""Result service tests: SQLite index, views, compare, gates, store CLI."""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import ResultStore
from repro.campaign.store import STORE_VERSION
from repro.results import (
    PAPER_GATES,
    CompareSummary,
    DeltaGate,
    OrderingGate,
    ResultIndex,
    ResultsError,
    approach_rollup,
    compare_indexes,
    evaluate_gates,
    gain_pct,
    gate_from_dict,
    gate_to_dict,
    geomean,
    index_path_for,
    intensity_breakdown,
    load_gates_file,
    open_index,
    pair_deltas,
    render_compare,
    render_pair_deltas,
    row_from_doc,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


# ---------------------------------------------------------------------------
# Synthetic store documents (no simulation needed).
# ---------------------------------------------------------------------------
def fake_doc(
    key: str,
    *,
    mix: str = "M4",
    approach: str = "dbp",
    ws: float = 3.0,
    hs: float = 0.8,
    ms: float = 1.2,
    seed: int = 1,
    horizon: int = 30_000,
    target_insts: int = 200_000,
    version: int = STORE_VERSION,
    apps=("lbm", "mcf", "gcc", "povray"),
    wall_clock: float = 1.5,
):
    """A store entry document shaped exactly like ``ResultStore.put`` writes."""
    return {
        "version": version,
        "key": key,
        "spec": {
            "mix": mix,
            "apps": list(apps),
            "approach": approach,
            "seed": seed,
            "horizon": horizon,
            "target_insts": target_insts,
        },
        "wall_clock": wall_clock,
        "result": {
            "metrics": {
                "mix": mix,
                "approach": approach,
                "apps": list(apps),
                "summary": {
                    "weighted_speedup": ws,
                    "harmonic_speedup": hs,
                    "max_slowdown": ms,
                },
                "slowdowns": {},
            },
            "system": {},
            "alone_ipcs": {},
            "shared_ipcs": {},
        },
    }


def synth_key(n: int) -> str:
    return f"{n:02x}" + f"{n:060x}"[-62:]


def write_blob(root: Path, doc) -> Path:
    path = Path(root) / doc["key"][:2] / f"{doc['key']}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n")
    return path


def populated_store(root: Path, docs) -> ResultStore:
    for doc in docs:
        write_blob(root, doc)
    return ResultStore(root, index=False)


def index_of(docs) -> ResultIndex:
    """An in-memory index holding the given documents."""
    index = ResultIndex(":memory:")
    for doc in docs:
        index.upsert_doc(doc)
    return index


def c1_grid(dbp_wins: bool = True):
    """Two mixes of a C1 campaign; ``dbp_wins=False`` breaks the approach."""
    ws_boost = 1.08 if dbp_wins else 0.95
    ms_cut = 0.85 if dbp_wins else 1.10
    docs = []
    n = 0
    for mix, ws, ms in (("M4", 3.1, 1.6), ("M7", 3.7, 1.4)):
        docs.append(
            fake_doc(synth_key(n), mix=mix, approach="ebp", ws=ws, ms=ms)
        )
        docs.append(
            fake_doc(
                synth_key(n + 1),
                mix=mix,
                approach="dbp",
                ws=ws * ws_boost,
                ms=ms * ms_cut,
            )
        )
        n += 2
    return docs


# ---------------------------------------------------------------------------
# row_from_doc
# ---------------------------------------------------------------------------
class TestRowFromDoc:
    def test_extracts_spec_metrics_and_registry_annotations(self):
        doc = fake_doc(synth_key(1), approach="dbp-tcm", ws=2.5)
        row = row_from_doc(doc, mtime=123.0, source="sync")
        assert row["key"] == synth_key(1)
        assert row["version"] == STORE_VERSION
        assert row["mix"] == "M4"
        assert row["approach"] == "dbp-tcm"
        assert row["ws"] == 2.5
        assert row["seed"] == 1
        assert row["num_cores"] == 4
        assert row["mtime"] == 123.0
        assert row["source"] == "sync"
        # Registry annotations: dbp-tcm resolves to its policy/scheduler,
        # and M4 is a registered mix with a category.
        assert row["policy"] == "dbp"
        assert row["scheduler"] == "tcm"
        assert row["category"]

    def test_unknown_approach_still_indexes_with_null_annotations(self):
        doc = fake_doc(synth_key(2), approach="from-the-future")
        row = row_from_doc(doc)
        assert row["approach"] == "from-the-future"
        assert row["policy"] is None
        assert row["scheduler"] is None

    def test_mix_falls_back_to_app_join(self):
        doc = fake_doc(synth_key(3))
        del doc["spec"]["mix"]
        doc["result"]["metrics"]["mix"] = None
        row = row_from_doc(doc)
        assert row["mix"] == "lbm+mcf+gcc+povray"

    def test_malformed_documents_raise(self):
        missing_result = fake_doc(synth_key(4))
        del missing_result["result"]
        with pytest.raises(KeyError):
            row_from_doc(missing_result)
        no_approach = fake_doc(synth_key(5))
        no_approach["spec"]["approach"] = None
        no_approach["result"]["metrics"]["approach"] = None
        with pytest.raises(ValueError):
            row_from_doc(no_approach)
        bad_spec = fake_doc(synth_key(6))
        bad_spec["spec"] = "not-a-dict"
        with pytest.raises(TypeError):
            row_from_doc(bad_spec)
        with pytest.raises(ValueError):
            row_from_doc({"key": "", "version": 2})


# ---------------------------------------------------------------------------
# Index sync.
# ---------------------------------------------------------------------------
class TestIndexSync:
    def test_initial_sync_adds_every_entry(self, tmp_path):
        store = populated_store(tmp_path, c1_grid())
        with ResultIndex(index_path_for(tmp_path)) as index:
            report = index.sync(store)
            assert report.scanned == 4
            assert report.added == 4
            assert report.unchanged == 0
            assert index.count() == 4
            assert index.approaches() == ["dbp", "ebp"]
            assert index.mixes() == ["M4", "M7"]

    def test_resync_of_unchanged_store_touches_nothing(self, tmp_path):
        store = populated_store(tmp_path, c1_grid())
        with ResultIndex(index_path_for(tmp_path)) as index:
            index.sync(store)
            report = index.sync(store)
            assert report.added == 0
            assert report.updated == 0
            assert report.removed == 0
            assert report.unchanged == 4
            assert report.changed == 0
            assert index.count() == 4

    def test_rewritten_blob_is_updated_once(self, tmp_path):
        docs = c1_grid()
        store = populated_store(tmp_path, docs)
        with ResultIndex(index_path_for(tmp_path)) as index:
            index.sync(store)
            changed = dict(docs[0])
            changed["result"] = json.loads(json.dumps(docs[0]["result"]))
            changed["result"]["metrics"]["summary"]["weighted_speedup"] = 9.9
            path = write_blob(tmp_path, changed)
            os.utime(path, (path.stat().st_atime, path.stat().st_mtime + 5))
            report = index.sync(store)
            assert report.updated == 1
            assert report.unchanged == 3
            row = [
                r for r in index.rows() if r["key"] == changed["key"]
            ][0]
            assert row["ws"] == 9.9

    def test_prune_removes_rows_for_deleted_blobs(self, tmp_path):
        docs = c1_grid()
        store = populated_store(tmp_path, docs)
        with ResultIndex(index_path_for(tmp_path)) as index:
            index.sync(store)
            victim = store.path_for(docs[0]["key"])
            victim.unlink()
            no_prune = index.sync(store, prune=False)
            assert no_prune.removed == 0
            assert index.count() == 4
            pruned = index.sync(store)
            assert pruned.removed == 1
            assert index.count() == 3

    def test_malformed_blobs_are_counted_and_skipped(self, tmp_path):
        store = populated_store(tmp_path, c1_grid()[:2])
        bad = tmp_path / "zz" / f"{'zz' + '9' * 62}.json"
        bad.parent.mkdir(parents=True)
        bad.write_text("{ not json")
        lying = fake_doc(synth_key(40))
        lying["key"] = synth_key(41)  # content disagrees with its path
        write_blob(tmp_path, lying)
        # write_blob placed it under its *claimed* key; move the blob so the
        # path says synth_key(40) but the content says synth_key(41).
        src = tmp_path / synth_key(41)[:2] / f"{synth_key(41)}.json"
        dst = tmp_path / synth_key(40)[:2] / f"{synth_key(40)}.json"
        dst.parent.mkdir(parents=True, exist_ok=True)
        src.replace(dst)
        with ResultIndex(index_path_for(tmp_path)) as index:
            report = index.sync(store)
            assert report.added == 2
            assert report.malformed == 2
            assert len(report.malformed_paths) == 2
            assert index.count() == 2
            assert "malformed" in report.render()

    def test_stale_versions_index_but_hide_by_default(self, tmp_path):
        docs = c1_grid()[:2]
        docs.append(
            fake_doc(synth_key(50), approach="dbp", version=STORE_VERSION - 1)
        )
        store = populated_store(tmp_path, docs)
        with ResultIndex(index_path_for(tmp_path)) as index:
            report = index.sync(store)
            assert report.stale == 1
            assert index.count() == 3
            assert len(index.rows()) == 2
            assert len(index.rows(current_version_only=False)) == 3
            assert len(index.rows(version=STORE_VERSION - 1)) == 1
            assert index.version_counts() == {
                STORE_VERSION: 2, STORE_VERSION - 1: 1,
            }

    def test_row_filters(self, tmp_path):
        index = index_of(c1_grid())
        assert len(index.rows(mix="M4")) == 2
        assert len(index.rows(approach="dbp")) == 2
        assert len(index.rows(mix="M4", approach="dbp")) == 1
        assert len(index.rows(seed=1)) == 4
        assert len(index.rows(seed=7)) == 0
        assert len(index.rows(horizon=30_000)) == 4
        row = index.rows(mix="M4", approach="dbp")[0]
        assert row["apps"] == ["lbm", "mcf", "gcc", "povray"]
        index.close()

    def test_upsert_is_idempotent_by_key(self):
        index = ResultIndex(":memory:")
        doc = fake_doc(synth_key(60))
        index.upsert_doc(doc)
        index.upsert_doc(doc)
        assert index.count() == 1
        index.close()

    def test_schema_version_bump_drops_and_rebuilds(self, tmp_path):
        db = tmp_path / "index.sqlite"
        with ResultIndex(db) as index:
            index.upsert_doc(fake_doc(synth_key(61)))
            assert index.count() == 1
        conn = sqlite3.connect(db)
        conn.execute("UPDATE meta SET value='999' WHERE name='schema_version'")
        conn.commit()
        conn.close()
        with ResultIndex(db) as index:
            assert index.count() == 0  # rebuilt; blobs would repopulate it

    def test_open_index_on_directory_and_missing_path(self, tmp_path):
        populated_store(tmp_path, c1_grid())
        with open_index(tmp_path, sync=True) as index:
            assert index.count() == 4
        with pytest.raises(ResultsError):
            open_index(tmp_path / "nope.sqlite")


# ---------------------------------------------------------------------------
# The store's put-time index hook.
# ---------------------------------------------------------------------------
class TestPutTimeIndexHook:
    def test_put_indexes_and_sync_confirms_freshness(
        self, tmp_path, fast_runner
    ):
        store = ResultStore(tmp_path / "store")
        result = fast_runner.run_apps(["lbm", "gcc"], "shared-frfcfs")
        key = "ab" + "0" * 62
        store.put(
            key, result, wall_clock=2.0,
            describe={
                "mix": "TEST", "apps": ["lbm", "gcc"],
                "approach": "shared-frfcfs", "seed": 1,
                "horizon": 30_000, "target_insts": 200_000,
            },
        )
        assert store.stats.index_errors == 0
        assert store.index_path().is_file()
        with ResultIndex(store.index_path()) as index:
            rows = index.rows()
            assert len(rows) == 1
            assert rows[0]["key"] == key
            assert rows[0]["source"] == "put"
            # The hook recorded the blob's mtime, so a sync pass finds
            # nothing to do: put-time indexing and sync agree.
            report = index.sync(ResultStore(store.root, index=False))
            assert report.added == 0
            assert report.unchanged == 1

    def test_index_false_store_never_creates_index(
        self, tmp_path, fast_runner
    ):
        store = ResultStore(tmp_path / "store", index=False)
        result = fast_runner.run_apps(["lbm", "gcc"], "shared-frfcfs")
        store.put("ab" + "1" * 62, result, wall_clock=1.0)
        assert not store.index_path().exists()

    def test_index_failure_never_fails_the_put(self, tmp_path, fast_runner):
        root = tmp_path / "store"
        root.mkdir()
        # A directory where the index file should be: sqlite cannot open it.
        store = ResultStore(root)
        store.index_path().mkdir()
        result = fast_runner.run_apps(["lbm", "gcc"], "shared-frfcfs")
        key = "ab" + "2" * 62
        path = store.put(key, result, wall_clock=1.0)
        assert path.is_file()
        assert store.stats.writes == 1
        assert store.stats.index_errors == 1
        assert store.get(key) is not None


# ---------------------------------------------------------------------------
# Views.
# ---------------------------------------------------------------------------
class TestViews:
    def test_geomean_and_gain_conventions(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ResultsError):
            geomean([])
        with pytest.raises(ResultsError):
            geomean([1.0, 0.0])
        # WS/HS: percent increase is good; MS: percent reduction is good.
        assert gain_pct(1.1, 1.0, metric="ws") == pytest.approx(10.0)
        assert gain_pct(0.9, 1.0, metric="ms") == pytest.approx(10.0)
        assert gain_pct(1.1, 1.0, metric="ms") == pytest.approx(-10.0)
        with pytest.raises(ResultsError):
            gain_pct(1.0, 0.0, metric="ws")

    def test_pair_deltas_match_on_cell_identity(self):
        docs = c1_grid()
        # An ebp run at another seed has no dbp partner: unmatched.
        docs.append(
            fake_doc(synth_key(70), mix="M4", approach="ebp", seed=2)
        )
        index = index_of(docs)
        deltas = pair_deltas(index, "dbp", "ebp")
        assert deltas.matched == 2
        assert deltas.unmatched == {"ebp": 1}
        cell = [c for c in deltas.cells if c["mix"] == "M4"][0]
        assert cell["ws_dbp"] == pytest.approx(3.1 * 1.08)
        assert cell["ws_gain_pct"] == pytest.approx(8.0)
        assert cell["ms_gain_pct"] == pytest.approx(15.0)
        # Uniform per-cell ratios make the geomean summary exact.
        assert deltas.summary_gain("ws") == pytest.approx(8.0)
        assert deltas.summary_gain("ms") == pytest.approx(15.0)
        assert deltas.per_mix_gains("ws") == {
            "M4": pytest.approx(8.0), "M7": pytest.approx(8.0),
        }
        doc = deltas.as_dict()
        assert doc["matched_cells"] == 2
        assert doc["summary_gains_pct"]["ws"] == pytest.approx(8.0)
        rendered = render_pair_deltas(deltas)
        assert "dbp vs ebp" in rendered
        assert "gmean" in rendered
        index.close()

    def test_pair_needs_two_distinct_approaches(self):
        index = index_of(c1_grid())
        with pytest.raises(ResultsError):
            pair_deltas(index, "dbp", "dbp")
        index.close()

    def test_rollup_aggregates_per_approach(self):
        index = index_of(c1_grid())
        rollup = approach_rollup(index)
        assert set(rollup) == {"dbp", "ebp"}
        ebp = rollup["ebp"]
        assert ebp["runs"] == 2
        assert ebp["mixes"] == ["M4", "M7"]
        assert ebp["ws"]["min"] == pytest.approx(3.1)
        assert ebp["ws"]["max"] == pytest.approx(3.7)
        assert ebp["ws"]["mean"] == pytest.approx(3.4)
        assert ebp["ws"]["geomean"] == pytest.approx(geomean([3.1, 3.7]))
        index.close()

    def test_intensity_breakdown_groups_by_category(self):
        docs = c1_grid()
        docs.append(
            fake_doc(synth_key(71), mix="adhoc", approach="dbp", ws=2.0)
        )
        index = index_of(docs)
        breakdown = intensity_breakdown(index)
        assert "?" in breakdown  # the uncategorized ad-hoc mix
        assert breakdown["?"]["dbp"]["runs"] == 1
        categorized = [c for c in breakdown if c != "?"]
        assert categorized  # M4/M7 carry their registry categories
        index.close()


# ---------------------------------------------------------------------------
# A/B compare.
# ---------------------------------------------------------------------------
class TestCompare:
    def test_identical_sides_are_all_same(self):
        a, b = index_of(c1_grid()), index_of(c1_grid())
        summary = compare_indexes(a, b)
        assert summary.counts == {"same": 4}
        assert all(r["identical_key"] for r in summary.rows)
        assert summary.regressions == []
        a.close(), b.close()

    def test_regressions_and_improvements_flagged(self):
        docs_b = c1_grid()
        # B regressed M4/dbp on WS and improved M7/ebp on MS.
        docs_b[1]["result"]["metrics"]["summary"]["weighted_speedup"] *= 0.9
        docs_b[2]["result"]["metrics"]["summary"]["max_slowdown"] *= 0.8
        a, b = index_of(c1_grid()), index_of(docs_b)
        summary = compare_indexes(a, b, tolerance_pct=0.5)
        assert summary.counts == {"same": 2, "improved": 1, "regressed": 1}
        reg = summary.regressions[0]
        assert (reg["mix"], reg["approach"]) == ("M4", "dbp")
        assert reg["ws_delta_pct"] == pytest.approx(-10.0)
        rendered = render_compare(summary)
        assert "REGRESSION: M4/dbp" in rendered
        doc = summary.as_dict()
        assert len(doc["compare_summary"]) == 4
        a.close(), b.close()

    def test_one_sided_runs_reported(self):
        a = index_of(c1_grid())
        b = index_of(c1_grid()[:2])
        b_extra = fake_doc(synth_key(80), mix="M9", approach="dbp")
        b.upsert_doc(b_extra)
        summary = compare_indexes(a, b)
        assert summary.counts["only_a"] == 2
        assert summary.counts["only_b"] == 1
        a.close(), b.close()

    def test_within_tolerance_is_same(self):
        docs_b = c1_grid()
        docs_b[0]["result"]["metrics"]["summary"]["weighted_speedup"] *= 1.001
        a, b = index_of(c1_grid()), index_of(docs_b)
        summary = compare_indexes(a, b, tolerance_pct=0.5)
        assert summary.counts == {"same": 4}
        a.close(), b.close()


# ---------------------------------------------------------------------------
# Gates.
# ---------------------------------------------------------------------------
def full_claims_grid():
    """Synthetic results satisfying every C1-C3 gate, two mixes."""
    docs = []
    n = 100
    # (approach, ws_factor, ms_factor) against a per-mix base; crafted so
    # C3's gains exceed C1's and C2's (the ordering gates).
    shape = (
        ("ebp", 1.00, 1.00),
        ("dbp", 1.04, 0.90),      # C1: +4% WS, 10% MS cut vs ebp
        ("tcm", 1.06, 0.95),
        ("dbp-tcm", 1.05, 0.80),  # C2: -0.94% WS (floor), 15.8% MS cut
        ("mcp", 0.98, 0.95),      # C3: +7.1% WS, 15.8% MS cut for dbp-tcm
    )
    for mix, ws, ms in (("M4", 3.0, 1.6), ("M7", 3.6, 1.4)):
        for approach, ws_f, ms_f in shape:
            docs.append(
                fake_doc(
                    synth_key(n), mix=mix, approach=approach,
                    ws=ws * ws_f, ms=ms * ms_f,
                )
            )
            n += 1
    return docs


class TestGates:
    def test_full_grid_passes_every_paper_gate(self):
        index = index_of(full_claims_grid())
        report = evaluate_gates(index)
        assert len(report.checks) == len(PAPER_GATES)
        assert report.ok()
        assert report.ok(strict=True)
        assert {c.status for c in report.checks} == {"pass"}
        rendered = report.render()
        assert "gates: PASS" in rendered
        index.close()

    def test_broken_approach_fails_its_gates(self):
        docs = [
            d for d in full_claims_grid()
            if d["spec"]["approach"] in ("ebp", "dbp")
        ]
        for doc in docs:
            if doc["spec"]["approach"] == "dbp":
                summary = doc["result"]["metrics"]["summary"]
                summary["weighted_speedup"] *= 0.9   # now loses to ebp
                summary["max_slowdown"] *= 1.3
        index = index_of(docs)
        report = evaluate_gates(index, claims=["C1"])
        assert not report.ok()
        assert [c.status for c in report.checks] == ["fail", "fail"]
        assert "needs > +0.00%" in report.checks[0].reason
        assert "gates: FAIL" in report.render()
        index.close()

    def test_missing_approaches_skip_not_fail(self):
        index = index_of(c1_grid())  # only ebp/dbp: C2/C3 have no runs
        report = evaluate_gates(index)
        by_name = {c.gate.name: c for c in report.checks}
        assert by_name["c1-throughput"].status == "pass"
        assert by_name["c2-fairness"].status == "skipped"
        assert by_name["c3-over-c1-throughput"].status == "skipped"
        assert report.ok()
        assert not report.ok(strict=True)
        index.close()

    def test_claims_filter(self):
        index = index_of(c1_grid())
        report = evaluate_gates(index, claims=["C1"])
        assert len(report.checks) == 2
        assert {c.gate.claim for c in report.checks} == {"C1"}
        index.close()

    def test_per_mix_scope_catches_a_losing_mix(self):
        docs = c1_grid()
        # Make M7's dbp lose on WS while the overall gmean still wins.
        for doc in docs:
            spec = doc["spec"]
            if spec["approach"] == "dbp" and spec["mix"] == "M7":
                doc["result"]["metrics"]["summary"]["weighted_speedup"] = 3.5
        index = index_of(docs)
        gmean_gate = DeltaGate("g", "C1", "ws", "dbp", "ebp", scope="gmean")
        per_mix_gate = DeltaGate(
            "p", "C1", "ws", "dbp", "ebp", scope="per_mix"
        )
        report = evaluate_gates(index, [gmean_gate, per_mix_gate])
        assert report.checks[0].status == "pass"
        assert report.checks[1].status == "fail"
        assert report.checks[1].observed["worst"]["where"] == "M7"
        index.close()

    def test_per_cell_scope_names_the_worst_cell(self):
        index = index_of(c1_grid())
        gate = DeltaGate("c", "C1", "ms", "dbp", "ebp", scope="per_cell")
        report = evaluate_gates(index, [gate])
        check = report.checks[0]
        assert check.status == "pass"
        assert "s1" in check.observed["worst"]["where"]
        index.close()

    def test_min_gain_floor_allows_bounded_loss(self):
        index = index_of(full_claims_grid())
        floor = DeltaGate(
            "floor", "C2", "ws", "dbp-tcm", "tcm", min_gain_pct=-2.0
        )
        strict_win = DeltaGate("win", "C2", "ws", "dbp-tcm", "tcm")
        report = evaluate_gates(index, [floor, strict_win])
        assert report.checks[0].status == "pass"   # loses ~0.94%, within -2
        assert report.checks[1].status == "fail"   # but it is still a loss
        index.close()

    def test_ordering_gate_detects_violation(self):
        index = index_of(full_claims_grid())
        ok = OrderingGate(
            "o1", "C3", "ws", hi=("dbp-tcm", "mcp"), lo=("dbp", "ebp")
        )
        violated = OrderingGate(
            "o2", "C3", "ws", hi=("dbp", "ebp"), lo=("dbp-tcm", "mcp")
        )
        report = evaluate_gates(index, [ok, violated])
        assert report.checks[0].status == "pass"
        assert report.checks[1].status == "fail"
        assert "ordering violated" in report.checks[1].reason
        index.close()

    def test_invalid_gate_definitions_rejected(self):
        with pytest.raises(ResultsError):
            DeltaGate("x", "C1", "ws", "dbp", "ebp", scope="sometimes")
        with pytest.raises(ResultsError):
            DeltaGate("x", "C1", "ipc", "dbp", "ebp")
        with pytest.raises(ResultsError):
            OrderingGate("x", "C1", "ipc", hi=("a", "b"), lo=("c", "d"))

    def test_gate_json_round_trip(self, tmp_path):
        for gate in PAPER_GATES:
            assert gate_from_dict(gate_to_dict(gate)) == gate
        path = tmp_path / "gates.json"
        path.write_text(
            json.dumps({"gates": [gate_to_dict(g) for g in PAPER_GATES]})
        )
        loaded = load_gates_file(path)
        assert tuple(loaded) == PAPER_GATES
        # A bare list works too.
        path.write_text(json.dumps([gate_to_dict(PAPER_GATES[0])]))
        assert load_gates_file(path) == [PAPER_GATES[0]]
        with pytest.raises(ResultsError):
            gate_from_dict({"kind": "vibes", "name": "x"})
        with pytest.raises(ResultsError):
            gate_from_dict({"kind": "delta", "name": "x"})
        path.write_text("{}")
        with pytest.raises(ResultsError):
            load_gates_file(path)
        with pytest.raises(ResultsError):
            load_gates_file(tmp_path / "missing.json")

    def test_report_as_dict_is_machine_readable(self):
        index = index_of(c1_grid())
        doc = evaluate_gates(index, claims=["C1"]).as_dict()
        assert doc["passed"] is True
        assert doc["counts"] == {"pass": 2, "fail": 0, "skipped": 0}
        assert doc["checks"][0]["gate"]["name"] == "c1-throughput"
        assert "gain_pct" in doc["checks"][0]["observed"]
        index.close()


# ---------------------------------------------------------------------------
# Concurrency: two processes writing/indexing one store.
# ---------------------------------------------------------------------------
_WRITER_SCRIPT = """
import json, sys
sys.path.insert(0, "src")
from repro.results import ResultIndex
from repro.campaign.store import STORE_VERSION

db, start, count = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
with ResultIndex(db) as index:
    for n in range(start, start + count):
        key = f"{n:064x}"
        index.upsert(
            {
                "key": key,
                "version": STORE_VERSION,
                "mix": f"MIX{n % 7}",
                "approach": "dbp" if n % 2 else "ebp",
                "policy": None,
                "scheduler": None,
                "apps": json.dumps(["a", "b"]),
                "seed": 1,
                "horizon": 30000,
                "target_insts": 200000,
                "num_cores": 2,
                "intensive_count": None,
                "category": None,
                "ws": 2.0 + n / 1000.0,
                "hs": 0.8,
                "ms": 1.2,
                "wall_clock": 0.1,
                "trace_digests": None,
                "mtime": float(n),
                "source": "put",
            }
        )
print("done", start)
"""


class TestConcurrentWriters:
    def test_two_processes_share_one_index_without_lost_rows(self, tmp_path):
        """Two writers upsert overlapping key ranges concurrently.

        Keys 0..119 and 80..199 overlap on 80..119: the index must end up
        with exactly 200 rows — nothing lost to lock contention, nothing
        duplicated by the overlap.
        """
        db = tmp_path / "index.sqlite"
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT, str(db), start, "120"],
                cwd=REPO_ROOT,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for start in ("0", "80")
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert "done" in out
        with ResultIndex(db) as index:
            assert index.count() == 200
            keys = [r["key"] for r in index.rows()]
            assert len(keys) == len(set(keys)) == 200

    def test_two_processes_sync_one_store_concurrently(self, tmp_path):
        """Two full sync passes over one store race without corruption."""
        populated_store(tmp_path, c1_grid())
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.campaign import ResultStore\n"
            "from repro.results import ResultIndex, index_path_for\n"
            f"root = {str(tmp_path)!r}\n"
            "with ResultIndex(index_path_for(root)) as index:\n"
            "    index.sync(ResultStore(root, index=False))\n"
            "print('synced')\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script],
                cwd=REPO_ROOT,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
        with ResultIndex(index_path_for(tmp_path)) as index:
            assert index.count() == 4


# ---------------------------------------------------------------------------
# CLI verbs.
# ---------------------------------------------------------------------------
class TestResultsCLI:
    @pytest.fixture
    def store_dir(self, tmp_path):
        populated_store(tmp_path / "store", full_claims_grid())
        return tmp_path / "store"

    def run_cli(self, argv):
        from repro.cli import main

        return main(argv)

    def test_index_builds_then_reports_idempotent(self, store_dir, capsys):
        assert self.run_cli(["results", "index", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "10 added" in out
        assert self.run_cli(["results", "index", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "0 added" in out
        assert "10 unchanged" in out

    def test_query_views(self, store_dir, capsys):
        base = ["results", "query", "--store", str(store_dir)]
        assert self.run_cli(base + ["--approach", "dbp"]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out
        assert self.run_cli(base + ["--view", "rollup", "--format", "json"]) == 0
        rollup = json.loads(capsys.readouterr().out)
        assert rollup["dbp"]["runs"] == 2
        assert (
            self.run_cli(
                base + ["--view", "deltas", "--pair", "dbp", "ebp"]
            )
            == 0
        )
        assert "dbp vs ebp" in capsys.readouterr().out
        assert self.run_cli(base + ["--view", "intensity"]) == 0
        capsys.readouterr()

    def test_query_deltas_requires_pair(self, store_dir, capsys):
        code = self.run_cli(
            [
                "results", "query", "--store", str(store_dir),
                "--view", "deltas",
            ]
        )
        assert code != 0
        assert "--pair" in capsys.readouterr().err

    def test_gates_pass_and_write_report(self, store_dir, tmp_path, capsys):
        out_path = tmp_path / "gates.json"
        code = self.run_cli(
            [
                "results", "gates", "--store", str(store_dir),
                "--out", str(out_path),
            ]
        )
        assert code == 0
        assert "gates: PASS" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        assert doc["passed"] is True
        assert doc["counts"]["fail"] == 0

    def test_gates_fail_on_broken_approach(self, tmp_path, capsys):
        """The regression demo: a broken dbp makes `results gates` exit 1."""
        docs = full_claims_grid()
        for doc in docs:
            if doc["spec"]["approach"] == "dbp":
                summary = doc["result"]["metrics"]["summary"]
                summary["weighted_speedup"] *= 0.85
                summary["max_slowdown"] *= 1.4
        populated_store(tmp_path / "broken", docs)
        code = self.run_cli(
            [
                "results", "gates", "--store", str(tmp_path / "broken"),
                "--claims", "C1",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "gates: FAIL" in out
        assert "FAIL" in out

    def test_gates_strict_fails_on_skips(self, tmp_path, capsys):
        populated_store(tmp_path / "store", c1_grid())
        base = ["results", "gates", "--store", str(tmp_path / "store")]
        assert self.run_cli(base) == 0
        capsys.readouterr()
        assert self.run_cli(base + ["--strict"]) == 1
        capsys.readouterr()

    def test_gates_file(self, store_dir, tmp_path, capsys):
        gates_path = tmp_path / "custom.json"
        gates_path.write_text(
            json.dumps(
                [
                    {
                        "kind": "delta", "name": "custom-win", "claim": "C9",
                        "metric": "ws", "better": "tcm", "baseline": "ebp",
                    }
                ]
            )
        )
        code = self.run_cli(
            [
                "results", "gates", "--store", str(store_dir),
                "--gates-file", str(gates_path), "--format", "json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["checks"][0]["gate"]["name"] == "custom-win"

    def test_compare_detects_regression_exit_code(
        self, store_dir, tmp_path, capsys
    ):
        docs = full_claims_grid()
        for doc in docs:
            if doc["spec"]["approach"] == "dbp":
                doc["result"]["metrics"]["summary"]["weighted_speedup"] *= 0.9
        populated_store(tmp_path / "b", docs)
        argv = [
            "results", "compare", str(store_dir), str(tmp_path / "b"),
            "--fail-on-regression",
        ]
        assert self.run_cli(argv) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # Identical sides: exit 0.
        assert (
            self.run_cli(
                [
                    "results", "compare", str(store_dir), str(store_dir),
                    "--fail-on-regression",
                ]
            )
            == 0
        )
        capsys.readouterr()


class TestCampaignGatesCLI:
    def test_campaign_gates_fail_on_deliberately_broken_approach(
        self, monkeypatch, capsys
    ):
        """`campaign --gates` exits non-zero when dbp is sabotaged.

        The broken "dbp" resolves to ebp's policy/scheduler, so its metrics
        tie ebp's exactly — a strict-win gate must fail on a tie, which
        makes the demo deterministic at any horizon.
        """
        from repro.cli import main
        from repro.core.integration import APPROACHES, Approach

        monkeypatch.setitem(
            APPROACHES, "dbp", Approach("dbp", "ebp", "frfcfs")
        )
        argv = [
            "--horizon", "20000", "campaign", "--mixes", "D2",
            "--approaches", "ebp", "dbp", "--jobs", "1", "--no-store",
            "--quiet", "--gates", "--gates-claims", "C1",
        ]
        assert main(argv) == 1
        out = capsys.readouterr().out
        assert "Acceptance gates:" in out
        assert "gates: FAIL" in out

    def test_campaign_gates_json_document_carries_checks(
        self, monkeypatch, capsys
    ):
        from repro.cli import main
        from repro.core.integration import APPROACHES, Approach

        monkeypatch.setitem(
            APPROACHES, "dbp", Approach("dbp", "ebp", "frfcfs")
        )
        argv = [
            "--horizon", "20000", "campaign", "--mixes", "D2",
            "--approaches", "ebp", "dbp", "--jobs", "1", "--no-store",
            "--quiet", "--gates", "--gates-claims", "C1",
            "--format", "json",
        ]
        assert main(argv) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["gates"]["passed"] is False
        assert doc["gates"]["counts"]["fail"] == 2


class TestStoreCLI:
    def run_cli(self, argv):
        from repro.cli import main

        return main(argv)

    def test_stats_reports_entries_and_index(self, tmp_path, capsys):
        root = tmp_path / "store"
        populated_store(root, c1_grid())
        assert self.run_cli(["results", "index", "--store", str(root)]) == 0
        capsys.readouterr()
        assert (
            self.run_cli(
                ["store", "stats", "--store", str(root), "--format", "json"]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["entries"] == 4
        assert doc["index_exists"] is True
        assert doc["index_rows"] == 4
        assert doc["index_version_counts"] == {str(STORE_VERSION): 4}

    def test_ls_lists_entries_and_quarantine(self, tmp_path, capsys):
        root = tmp_path / "store"
        populated_store(root, c1_grid())
        bad = root / "aa" / ("aa" + "5" * 62 + ".json.corrupt")
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("junk")
        assert self.run_cli(["store", "ls", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert "4 entries" in out
        assert "dbp" in out
        assert (
            self.run_cli(["store", "ls", "--store", str(root), "--corrupt"])
            == 0
        )
        out = capsys.readouterr().out
        assert "1 quarantined file(s)" in out
        assert ".corrupt" in out

    def test_gc_purges_quarantine_tmp_and_stale(self, tmp_path, capsys):
        root = tmp_path / "store"
        docs = c1_grid()
        docs.append(
            fake_doc(synth_key(90), approach="dbp", version=STORE_VERSION - 1)
        )
        populated_store(root, docs)
        (root / "aa").mkdir(exist_ok=True)
        (root / "aa" / ("aa" + "6" * 62 + ".json.corrupt")).write_text("x")
        (root / "aa" / ("aa" + "7" * 62 + ".json.tmp.1234")).write_text("x")
        argv = ["store", "gc", "--store", str(root), "--stale"]
        assert self.run_cli(argv + ["--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would delete" in out
        assert "1 quarantined, 1 tmp, 1 stale" in out
        store = ResultStore(root, index=False)
        assert store.entry_count() == 5  # dry run deleted nothing
        assert self.run_cli(argv) == 0
        capsys.readouterr()
        assert store.entry_count() == 4
        assert store.quarantined_paths() == []
        assert store.orphaned_tmp_paths() == []
        assert store.stale_paths() == []
