"""CLI tests driving main(argv) directly."""

import pytest

from repro.cli import main


class TestList:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "experiments:" in out
        assert "dbp-tcm" in out
        assert "M1" in out


class TestConfig:
    def test_config_prints_system(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "DDR3-1066" in out
        assert "Bank colors" in out


class TestMix:
    def test_mix_runs_default_approaches(self, capsys):
        assert main(["--horizon", "20000", "mix", "M4"]) == 0
        out = capsys.readouterr().out
        assert "shared-frfcfs" in out
        assert "dbp" in out
        assert "WS" in out

    def test_unknown_mix_errors(self, capsys):
        assert main(["--horizon", "20000", "mix", "M99"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_approach_errors(self, capsys):
        assert main(["--horizon", "20000", "mix", "M4", "warp-drive"]) == 1
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_run_t3(self, capsys):
        assert main(["run", "T3"]) == 0
        assert "Workload mixes" in capsys.readouterr().out

    def test_run_t1(self, capsys):
        assert main(["run", "T1"]) == 0
        assert "configuration" in capsys.readouterr().out

    def test_run_f2_with_mix_subset(self, capsys):
        assert main(["--horizon", "20000", "run", "F2", "--mixes", "M4"]) == 0
        out = capsys.readouterr().out
        assert "Weighted speedup" in out
        assert "gmean" in out

    def test_run_unknown_experiment_errors(self, capsys):
        assert main(["run", "F77"]) == 1
        assert "error" in capsys.readouterr().err
