"""CLI tests driving main(argv) directly."""

import pytest

from repro.cli import main


class TestList:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "experiments:" in out
        assert "dbp-tcm" in out
        assert "M1" in out


class TestConfig:
    def test_config_prints_system(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "DDR3-1066" in out
        assert "Bank colors" in out


class TestMix:
    def test_mix_runs_default_approaches(self, capsys):
        assert main(["--horizon", "20000", "mix", "M4"]) == 0
        out = capsys.readouterr().out
        assert "shared-frfcfs" in out
        assert "dbp" in out
        assert "WS" in out

    def test_unknown_mix_errors(self, capsys):
        assert main(["--horizon", "20000", "mix", "M99"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_approach_errors(self, capsys):
        assert main(["--horizon", "20000", "mix", "M4", "warp-drive"]) == 1
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_run_t3(self, capsys):
        assert main(["run", "T3"]) == 0
        assert "Workload mixes" in capsys.readouterr().out

    def test_run_t1(self, capsys):
        assert main(["run", "T1"]) == 0
        assert "configuration" in capsys.readouterr().out

    def test_run_f2_with_mix_subset(self, capsys):
        assert main(["--horizon", "20000", "run", "F2", "--mixes", "M4"]) == 0
        out = capsys.readouterr().out
        assert "Weighted speedup" in out
        assert "gmean" in out

    def test_run_unknown_experiment_errors(self, capsys):
        assert main(["run", "F77"]) == 1
        assert "error" in capsys.readouterr().err


class TestTrace:
    def test_trace_renders_timeline_and_decisions(self, capsys):
        assert main(["--horizon", "45000", "trace", "M4"]) == 0
        out = capsys.readouterr().out
        assert "cycle" in out
        assert "scheduler" in out

    def test_trace_streams_then_rerenders_from_jsonl(self, tmp_path, capsys):
        stream = tmp_path / "run.jsonl"
        assert main(
            ["--horizon", "45000", "trace", "M4", "--stream", str(stream)]
        ) == 0
        live = capsys.readouterr().out
        assert f"streamed" in live
        assert stream.exists()

        assert main(["trace", "--from-jsonl", str(stream)]) == 0
        stored = capsys.readouterr().out
        assert "epochs" in stored
        # The stored rendering repeats the live tables verbatim.
        for line in live.splitlines():
            if line.startswith("| "):
                assert line in stored

    def test_trace_small_capacity_reports_dropped_epochs(
        self, tmp_path, capsys
    ):
        stream = tmp_path / "run.jsonl"
        assert main(
            [
                "--horizon", "130000", "trace", "M4",
                "--capacity", "2", "--stream", str(stream),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "--from-jsonl", str(stream)]) == 0
        out = capsys.readouterr().out
        # All 5 boundaries survive on disk even though the ring held 2.
        assert "epochs=5" in out
        assert "dropped_epochs=0" in out

    def test_from_jsonl_with_mix_is_an_error(self, tmp_path, capsys):
        assert main(
            ["trace", "M4", "--from-jsonl", str(tmp_path / "x.jsonl")]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_without_mix_or_jsonl_is_an_error(self, capsys):
        assert main(["trace"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_corrupt_jsonl_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            '{"kind": "header", "schema": "repro-dbp-telemetry",'
            ' "schema_version": 1, "seq": 0}\n'
            '{"cycle": 10000, "truncat\n'
        )
        assert main(["trace", "--from-jsonl", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "corrupt" in err

    def test_missing_jsonl_fails_cleanly(self, tmp_path, capsys):
        assert main(
            ["trace", "--from-jsonl", str(tmp_path / "nope.jsonl")]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_profile_prints_breakdown(self, capsys):
        assert main(
            ["--horizon", "30000", "trace", "M4", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "cycles/sec" in out
        assert "ChannelController" in out


class TestMetrics:
    def test_metrics_prometheus_output(self, capsys):
        assert main(["--horizon", "20000", "metrics", "M4"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_ctrl_requests_served_total counter" in out
        assert "repro_sim_cycles 20000" in out

    def test_metrics_json_output(self, capsys):
        assert main(
            ["--horizon", "20000", "metrics", "M4", "--format", "json"]
        ) == 0
        out = capsys.readouterr().out
        import json

        snapshot = json.loads(out)
        names = [m["name"] for m in snapshot["metrics"]]
        assert "repro_dram_commands_total" in names

    def test_metrics_unknown_mix_errors(self, capsys):
        assert main(["metrics", "M99"]) == 1
        assert "error" in capsys.readouterr().err
