"""Experiment runner tests."""

import pytest

from repro.core.dbp import DBPConfig, DynamicBankPartitioning
from repro.errors import ExperimentError
from repro.workloads import Mix


@pytest.fixture
def mix():
    return Mix("TEST", ("lbm", "gcc"), "H1L1")


class TestTraceCache:
    def test_traces_cached(self, fast_runner):
        a = fast_runner.trace_for("lbm")
        b = fast_runner.trace_for("lbm")
        assert a is b

    def test_traces_seeded(self, fast_runner):
        assert fast_runner.trace_for("lbm").name == "lbm"

    def test_trace_cache_keyed_by_generator_inputs(self, fast_runner):
        """Mutating seed or target_insts must never serve a stale trace."""
        a = fast_runner.trace_for("lbm")
        fast_runner.seed = 7
        b = fast_runner.trace_for("lbm")
        assert a is not b
        fast_runner.seed = 1
        assert fast_runner.trace_for("lbm") is a
        fast_runner.target_insts = 100_000
        c = fast_runner.trace_for("lbm")
        assert c is not a


class TestAloneRuns:
    def test_alone_ipc_positive_and_cached(self, fast_runner):
        first = fast_runner.alone_ipc("lbm")
        assert first > 0
        assert fast_runner.alone_ipc("lbm") == first
        assert (
            "lbm",
            fast_runner.seed,
            fast_runner.target_insts,
        ) in fast_runner._alone_cache

    def test_light_app_faster_alone(self, fast_runner):
        assert fast_runner.alone_ipc("gcc") > fast_runner.alone_ipc("lbm")


class TestRunApps:
    def test_metrics_populated(self, fast_runner, mix):
        result = fast_runner.run_mix(mix, "shared-frfcfs")
        metrics = result.metrics
        assert metrics.mix == "TEST"
        assert metrics.approach == "shared-frfcfs"
        assert metrics.weighted_speedup > 0
        assert metrics.max_slowdown >= 1.0 or metrics.max_slowdown > 0
        assert set(metrics.slowdowns) == {0, 1}
        assert metrics.apps == ("lbm", "gcc")
        assert set(result.alone_ipcs) == {0, 1}
        assert set(result.shared_ipcs) == {0, 1}

    def test_run_cache_reuses_results(self, fast_runner, mix):
        a = fast_runner.run_mix(mix, "shared-frfcfs")
        b = fast_runner.run_mix(mix, "shared-frfcfs")
        assert a is b

    def test_different_approaches_not_conflated(self, fast_runner, mix):
        a = fast_runner.run_mix(mix, "shared-frfcfs")
        b = fast_runner.run_mix(mix, "ebp")
        assert a is not b
        assert b.metrics.approach == "ebp"

    def test_unknown_approach_rejected(self, fast_runner, mix):
        with pytest.raises(Exception):
            fast_runner.run_mix(mix, "nonsense")

    def test_default_mix_name_joins_apps(self, fast_runner):
        result = fast_runner.run_apps(["lbm", "gcc"], "shared-frfcfs")
        assert result.metrics.mix == "lbm+gcc"


class TestRunCacheKey:
    def test_key_binds_resolved_scheduler(self, fast_runner, monkeypatch):
        """Two registrations sharing a label must not share cache entries."""
        from repro.core.integration import APPROACHES, Approach

        monkeypatch.setitem(
            APPROACHES, "tmp-x", Approach("tmp-x", "shared", "fcfs")
        )
        key_fcfs = fast_runner.run_cache_key(("lbm", "gcc"), "tmp-x")
        monkeypatch.setitem(
            APPROACHES, "tmp-x", Approach("tmp-x", "shared", "frfcfs")
        )
        key_frfcfs = fast_runner.run_cache_key(("lbm", "gcc"), "tmp-x")
        assert key_fcfs != key_frfcfs

    def test_key_binds_scheduler_params(self, fast_runner, monkeypatch):
        from repro.core.integration import APPROACHES, Approach

        monkeypatch.setitem(
            APPROACHES,
            "tmp-x",
            Approach("tmp-x", "shared", "tcm", scheduler_params={"cluster_fraction": 0.2}),
        )
        key_a = fast_runner.run_cache_key(("lbm", "gcc"), "tmp-x")
        monkeypatch.setitem(
            APPROACHES,
            "tmp-x",
            Approach("tmp-x", "shared", "tcm", scheduler_params={"cluster_fraction": 0.4}),
        )
        key_b = fast_runner.run_cache_key(("lbm", "gcc"), "tmp-x")
        assert key_a != key_b

    def test_adopt_result_round_trips(self, fast_runner, mix):
        result = fast_runner.run_mix(mix, "shared-frfcfs")
        assert fast_runner.cached_run(mix.apps, "shared-frfcfs") is result
        fast_runner._run_cache.clear()
        assert fast_runner.cached_run(mix.apps, "shared-frfcfs") is None
        fast_runner.adopt_result(mix.apps, "shared-frfcfs", result)
        assert fast_runner.run_mix(mix, "shared-frfcfs") is result


class TestRunCustom:
    def test_custom_policy_run(self, fast_runner):
        policy = DynamicBankPartitioning(DBPConfig(epoch_cycles=5_000))
        result = fast_runner.run_custom(
            ["lbm", "gcc"], policy, label="dbp-test"
        )
        assert result.metrics.approach == "dbp-test"
        assert result.metrics.weighted_speedup > 0

    def test_custom_scheduler_params(self, fast_runner):
        from repro.baselines import SharedPolicy

        result = fast_runner.run_custom(
            ["lbm", "gcc"],
            SharedPolicy(),
            scheduler="tcm",
            label="tcm-wide",
            cluster_fraction=0.3,
        )
        assert result.metrics.weighted_speedup > 0


class TestValidation:
    def test_bad_horizon_rejected(self, small_config):
        from repro.sim.runner import Runner

        with pytest.raises(ExperimentError):
            Runner(config=small_config, horizon=0)
