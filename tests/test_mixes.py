"""Workload mix table tests."""

import pytest

from repro.errors import ConfigError
from repro.workloads import MIXES, Mix, get_mix, get_profile, mixes_for_cores
from repro.workloads.mixes import MAIN_MIXES


class TestMixTable:
    def test_main_mixes_are_four_core(self):
        for name in MAIN_MIXES:
            assert get_mix(name).num_cores == 4

    def test_every_app_name_valid(self):
        for mix in MIXES.values():
            for app in mix.apps:
                get_profile(app)  # raises on unknown names

    def test_categories_match_intensive_counts(self):
        # H<k> categories must actually contain k intensive apps.
        for mix in MIXES.values():
            if mix.category.startswith("H") and "L" in mix.category:
                heavy = int(mix.category[1 : mix.category.index("L")])
                assert mix.intensive_count() == heavy
            elif mix.category in ("H2", "H4", "H8"):
                assert mix.intensive_count() == mix.num_cores

    def test_core_count_coverage(self):
        assert len(mixes_for_cores(2)) >= 3
        assert len(mixes_for_cores(4)) >= 10
        assert len(mixes_for_cores(8)) >= 3
        assert mixes_for_cores(16) == []

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigError):
            get_mix("M99")

    def test_mix_with_unknown_app_rejected(self):
        with pytest.raises(ConfigError):
            Mix("BAD", ("doom3",), "H1")

    def test_intensity_spread_across_main_mixes(self):
        counts = {get_mix(n).intensive_count() for n in MAIN_MIXES}
        # The evaluation set spans light to all-heavy mixes.
        assert {1, 2, 3, 4} <= counts
