"""Cache model tests: hits, LRU, writebacks, invalidation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import Cache
from repro.config import CacheConfig


def small_cache(sets=4, assoc=2, writeback=True):
    config = CacheConfig(
        size_bytes=sets * assoc * 64,
        associativity=assoc,
        line_size=64,
        writeback=writeback,
    )
    return Cache(config)


class TestBasics:
    def test_first_access_misses(self):
        cache = small_cache()
        assert not cache.access(0, False).hit

    def test_second_access_hits(self):
        cache = small_cache()
        cache.access(0, False)
        assert cache.access(0, True).hit

    def test_different_sets_independent(self):
        cache = small_cache(sets=4)
        cache.access(0, False)
        assert not cache.access(1, False).hit  # next set

    def test_contains(self):
        cache = small_cache()
        cache.access(5, False)
        assert cache.contains(5)
        assert not cache.contains(9)

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0, False)
        cache.access(0, False)
        assert cache.miss_rate == pytest.approx(0.5)
        assert small_cache().miss_rate == 0.0


class TestLRU:
    def test_lru_victim_is_oldest(self):
        cache = small_cache(sets=1, assoc=2)
        cache.access(0, False)  # tags 0, 1 fill set 0
        cache.access(1, False)
        cache.access(0, False)  # touch 0: now 1 is LRU
        cache.access(2, False)  # evicts 1
        assert cache.contains(0)
        assert not cache.contains(1)
        assert cache.contains(2)

    def test_fill_uses_free_way_before_evicting(self):
        cache = small_cache(sets=1, assoc=4)
        for tag in range(4):
            cache.access(tag, False)
        assert all(cache.contains(t) for t in range(4))


class TestWriteback:
    def test_dirty_eviction_reports_victim_line(self):
        cache = small_cache(sets=1, assoc=1)
        cache.access(0, True)  # dirty
        result = cache.access(1, False)  # evicts 0
        assert result.writeback_line == 0
        assert cache.stat_writebacks == 1

    def test_clean_eviction_silent(self):
        cache = small_cache(sets=1, assoc=1)
        cache.access(0, False)
        assert cache.access(1, False).writeback_line is None

    def test_write_hit_marks_dirty(self):
        cache = small_cache(sets=1, assoc=1)
        cache.access(0, False)  # clean fill
        cache.access(0, True)  # dirty it
        assert cache.access(1, False).writeback_line == 0

    def test_writethrough_mode_never_dirty(self):
        cache = small_cache(sets=1, assoc=1, writeback=False)
        cache.access(0, True)
        assert cache.access(1, False).writeback_line is None


class TestInvalidate:
    def test_invalidate_removes_line(self):
        cache = small_cache()
        cache.access(7, True)
        assert cache.invalidate(7)
        assert not cache.contains(7)
        assert not cache.access(7, False).hit

    def test_invalidate_absent_returns_false(self):
        cache = small_cache()
        assert not cache.invalidate(3)


class TestCapacityProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
    def test_never_holds_more_than_capacity(self, addresses):
        cache = small_cache(sets=4, assoc=2)
        for addr in addresses:
            cache.access(addr, False)
        resident = sum(1 for a in range(256) if cache.contains(a))
        assert resident <= 8

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = small_cache()
        for addr in addresses:
            cache.access(addr, addr % 2 == 0)
        assert cache.stat_hits + cache.stat_misses == len(addresses)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=50))
    def test_working_set_within_one_set_capacity_always_hits_after_fill(
        self, addresses
    ):
        # 8 distinct lines mapping to 4 sets x 2 ways always fit.
        cache = small_cache(sets=4, assoc=2)
        for addr in range(8):
            cache.access(addr, False)
        for addr in addresses:
            assert cache.access(addr, False).hit
