"""Cross-validation of the event-driven core against a per-cycle reference.

The production :class:`~repro.cpu.core.Core` is an event-driven interval
model; this file implements the same processor abstraction as a naive
cycle-by-cycle simulator (retire W per cycle, ROB window of R instructions,
M MSHRs, fixed memory latency) and checks that the two agree. The reference
is deliberately simple and slow — its value is that it shares no code or
cleverness with the production model.

Cycle semantics of the reference (matching the interval model's documented
retirement granularity — see :mod:`repro.cpu.core`):
* up to W instructions retire per cycle, in order, all from the *current
  record's* bundle (one record never packs into another record's final
  retire cycle — each bundle costs ceil((gap+1)/W) cycles);
* a read instruction may retire only on a cycle strictly after its data
  returned;
* a record's request issues (at most one per cycle) once the instruction
  window reaches it — retired + R >= its instruction index — and, for
  reads, an MSHR is free; reads complete a fixed L cycles after issue;
* writes never block retirement and never consume MSHRs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CoreConfig
from repro.cpu.core import Core
from repro.cpu.trace import Trace, TraceRecord
from repro.sim.engine import Engine


def reference_retired(trace, width, rob, mshrs, latency, horizon):
    """Instructions retired by `horizon` under the per-cycle reference."""
    records = trace.records
    n = len(records)
    cum = trace.cumulative_insts
    total = trace.total_insts

    def m(virt):
        loops, i = divmod(virt, n)
        return loops * total + cum[i]

    def rec(virt):
        return records[virt % n]

    retired = 0  # instructions fully retired
    retire_idx = 0  # current record being retired
    within = 0  # instructions of current record already retired
    issue_idx = 0
    outstanding = []  # completion times of in-flight reads
    complete = {}  # virt idx -> completion cycle
    for cycle in range(horizon):
        # Issue one request per cycle if the window has reached it.
        outstanding = [c for c in outstanding if c > cycle]
        record = rec(issue_idx)
        window_ok = m(issue_idx) - rob <= retired
        if window_ok:
            if record.is_write:
                issue_idx += 1
            elif len(outstanding) < mshrs:
                complete[issue_idx] = cycle + latency
                outstanding.append(cycle + latency)
                issue_idx += 1
        # Retire up to `width` instructions, all from the current record.
        budget = width
        record = rec(retire_idx)
        if within < record.gap:
            take = min(budget, record.gap - within)
            within += take
            retired += take
            budget -= take
        if budget > 0 and within == record.gap:
            # The record's memory instruction is at the head.
            ready = True
            if not record.is_write:
                done = complete.get(retire_idx)
                ready = done is not None and done < cycle
            if ready:
                retired += 1
                retire_idx += 1
                within = 0
    return retired


def event_model_retired(trace, width, rob, mshrs, latency, horizon):
    engine = Engine(horizon)

    class Port:
        def access(self, tid, vline, is_write, at, cb):
            if is_write:
                return None
            engine.schedule(at + latency, cb)
            return None

    core = Core(
        0,
        CoreConfig(width=width, rob_size=rob, mshrs=mshrs),
        trace,
        Port(),
        engine,
        horizon=horizon,
        ahead_limit=4096,
    )
    core.start()
    engine.run()
    return core.stats.retired_insts if core.stats.finished else core.retired_insts_processed


def compare(trace, width=4, rob=64, mshrs=4, latency=40, horizon=4_000, tol=0.03):
    ref = reference_retired(trace, width, rob, mshrs, latency, horizon)
    fast = event_model_retired(trace, width, rob, mshrs, latency, horizon)
    assert ref > 0
    # Relative tolerance for issue-timing jitter, with an absolute floor:
    # start-of-trace off-by-ones dominate when only a handful of
    # instructions retire within the horizon.
    assert abs(fast - ref) <= max(tol * ref, 4), (
        f"event model {fast} vs reference {ref}"
    )


class TestAgainstReference:
    def test_pure_memory_serial(self):
        trace = Trace("m", [TraceRecord(0, i, False) for i in range(64)])
        compare(trace, mshrs=1)

    def test_pure_memory_parallel(self):
        trace = Trace("m", [TraceRecord(0, i, False) for i in range(64)])
        compare(trace, mshrs=8)

    def test_compute_heavy(self):
        trace = Trace("c", [TraceRecord(500, i, False) for i in range(16)])
        compare(trace)

    def test_balanced(self):
        trace = Trace("b", [TraceRecord(20, i, False) for i in range(64)])
        compare(trace)

    def test_write_mix(self):
        trace = Trace(
            "w",
            [TraceRecord(5, i, i % 2 == 0) for i in range(64)],
        )
        compare(trace)

    def test_window_limited(self):
        trace = Trace("win", [TraceRecord(60, i, False) for i in range(32)])
        compare(trace, rob=32, mshrs=16)

    @settings(max_examples=20, deadline=None, derandomize=True)
    @given(
        gaps=st.lists(st.integers(0, 80), min_size=4, max_size=40),
        writes=st.data(),
        width=st.sampled_from([1, 2, 4]),
        mshrs=st.sampled_from([1, 2, 8]),
        latency=st.sampled_from([10, 40, 120]),
    )
    def test_random_traces_agree(self, gaps, writes, width, mshrs, latency):
        records = [
            TraceRecord(gap, i, writes.draw(st.booleans(), label=f"w{i}"))
            for i, gap in enumerate(gaps)
        ]
        if all(r.is_write for r in records):
            records[0] = TraceRecord(records[0].gap, 0, False)
        trace = Trace("rand", records)
        compare(
            trace,
            width=width,
            rob=64,
            mshrs=mshrs,
            latency=latency,
            horizon=3_000,
            tol=0.05,
        )
