"""Checkpoint codec units and the checkpoint-resume differential grid.

Two layers:

* codec/file units — header validation, digest verification, torn-write
  detection, lambda/closure round-trips, the ``System.checkpoint`` guards,
  and the fault-harness hooks on ``write_checkpoint_file``;
* the differential grid — every kernel-golden spec run *through* a
  mid-flight checkpoint round trip (serialize at a safepoint, rebuild a
  System from the bytes, resume) must produce the exact committed golden
  document, engine event counts included. This is the acceptance bar for
  the whole checkpoint format: a resumed run is bit-identical to an
  uninterrupted one.
"""

from __future__ import annotations

import json
import os
import struct

import pytest

from repro.faults import FaultPlan, FaultSpec, TransientFaultError
from repro.faults import install_plan, reset as faults_reset
from repro.kernelgrid import (
    GRID,
    build_grid_system,
    run_grid_spec_checkpointed,
)
from repro.sim.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    dump_checkpoint,
    load_checkpoint,
    read_checkpoint_file,
    read_checkpoint_file_header,
    read_checkpoint_header,
    write_checkpoint_file,
)
from repro.sim.system import System

_GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "kernel_golden.json"
)

_MAGIC = b"RDBPCKPT\n"
_LEN = struct.Struct(">I")


@pytest.fixture(scope="module")
def golden():
    with open(_GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.fixture
def clean_faults():
    faults_reset()
    yield
    faults_reset()


def _rewrite_header(blob: bytes, **overrides) -> bytes:
    """The same blob with selected header fields replaced."""
    offset = len(_MAGIC)
    (header_len,) = _LEN.unpack_from(blob, offset)
    start = offset + _LEN.size
    header = json.loads(blob[start : start + header_len].decode("utf-8"))
    header.update(overrides)
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    return (
        _MAGIC
        + _LEN.pack(len(header_bytes))
        + header_bytes
        + blob[start + header_len :]
    )


# ---------------------------------------------------------------------------
# Codec units.
# ---------------------------------------------------------------------------
class TestCodec:
    def test_roundtrip_with_meta(self):
        root = {"a": 1, "nested": [1, 2, {"b": "x"}]}
        blob = dump_checkpoint(root, meta={"run_key": "k", "cycle": 7})
        loaded, header = load_checkpoint(blob)
        assert loaded == root
        assert header["version"] == CHECKPOINT_VERSION
        assert header["meta"]["run_key"] == "k"
        assert header["meta"]["cycle"] == 7

    def test_header_readable_without_payload_digest(self):
        blob = dump_checkpoint({"x": 1}, meta={"run_key": "k"})
        # Damage the payload: the header pre-check must still succeed —
        # that is the point of reading it before paying for verification.
        damaged = blob[:-1] + bytes([blob[-1] ^ 0xFF])
        header = read_checkpoint_header(damaged)
        assert header["meta"]["run_key"] == "k"
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(damaged)

    def test_bad_magic_is_corrupt(self):
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint_header(b"NOTACKPT" + b"\x00" * 64)

    def test_truncated_header_is_corrupt(self):
        blob = dump_checkpoint({"x": 1})
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint_header(blob[: len(_MAGIC) + 2])

    def test_truncated_payload_is_corrupt(self):
        blob = dump_checkpoint({"x": list(range(100))})
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(blob[:-10])

    def test_flipped_payload_byte_is_corrupt(self):
        blob = dump_checkpoint({"x": 1})
        mid = len(blob) - 3
        damaged = blob[:mid] + bytes([blob[mid] ^ 0x5A]) + blob[mid + 1 :]
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(damaged)

    def test_foreign_version_is_stale_not_corrupt(self):
        blob = _rewrite_header(
            dump_checkpoint({"x": 1}), version=CHECKPOINT_VERSION + 1
        )
        with pytest.raises(CheckpointError) as excinfo:
            read_checkpoint_header(blob)
        assert not isinstance(excinfo.value, CheckpointCorruptError)

    def test_foreign_interpreter_is_stale_not_corrupt(self):
        blob = _rewrite_header(
            dump_checkpoint({"x": 1}), interp="cpython-2.7"
        )
        with pytest.raises(CheckpointError) as excinfo:
            read_checkpoint_header(blob)
        assert not isinstance(excinfo.value, CheckpointCorruptError)

    def test_garbage_header_is_corrupt(self):
        blob = _MAGIC + _LEN.pack(4) + b"\xff\xfe\x00\x01"
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint_header(blob)

    def test_cyclic_closure_roundtrip(self):
        # The exact shape stock pickle refuses: a nested lambda whose
        # closure reaches the container that holds the lambda.
        def make():
            box = {}
            box["fn"] = lambda: box
            return box

        blob = dump_checkpoint(make())
        loaded, _header = load_checkpoint(blob)
        assert loaded["fn"]() is loaded


# ---------------------------------------------------------------------------
# File helpers + injected write faults.
# ---------------------------------------------------------------------------
class TestCheckpointFiles:
    def test_write_read_roundtrip_is_atomic(self, tmp_path):
        path = tmp_path / "run.ckpt"
        blob = dump_checkpoint({"x": 1}, meta={"run_key": "k"})
        write_checkpoint_file(path, blob)
        loaded, header = read_checkpoint_file(path)
        assert loaded == {"x": 1}
        assert read_checkpoint_file_header(path)["meta"] == header["meta"]
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_missing_file_is_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_checkpoint_file(tmp_path / "absent.ckpt")

    def test_torn_write_leaves_detectably_corrupt_file(
        self, tmp_path, clean_faults
    ):
        install_plan(
            FaultPlan(
                seed=3,
                faults=(
                    FaultSpec(site="checkpoint.write", kind="torn_checkpoint"),
                ),
            )
        )
        path = tmp_path / "run.ckpt"
        blob = dump_checkpoint({"x": list(range(200))})
        with pytest.raises(TransientFaultError):
            write_checkpoint_file(path, blob, fault_key="run")
        assert path.is_file()
        assert path.stat().st_size < len(blob)
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint_file(path)

    def test_death_after_flush_leaves_valid_checkpoint(
        self, tmp_path, clean_faults
    ):
        install_plan(
            FaultPlan(
                seed=3,
                faults=(FaultSpec(site="checkpoint.write", kind="transient"),),
            )
        )
        path = tmp_path / "run.ckpt"
        blob = dump_checkpoint({"x": 1})
        with pytest.raises(TransientFaultError):
            write_checkpoint_file(path, blob, fault_key="run")
        loaded, _header = read_checkpoint_file(path)
        assert loaded == {"x": 1}

    def test_write_faults_converge_on_later_attempts(
        self, tmp_path, clean_faults
    ):
        install_plan(
            FaultPlan(
                seed=3,
                faults=(
                    FaultSpec(
                        site="checkpoint.write",
                        kind="torn_checkpoint",
                        times=1,
                    ),
                ),
            )
        )
        path = tmp_path / "run.ckpt"
        blob = dump_checkpoint({"x": 1})
        # Attempt 2 is past times=1: the write must succeed untouched.
        write_checkpoint_file(path, blob, fault_key="run", fault_attempt=2)
        loaded, _header = read_checkpoint_file(path)
        assert loaded == {"x": 1}


# ---------------------------------------------------------------------------
# System-level guards.
# ---------------------------------------------------------------------------
class TestSystemGuards:
    def test_checkpoint_after_finish_refused(self):
        system = build_grid_system(GRID[1], horizon=2_000)
        system.run()
        with pytest.raises(CheckpointError):
            system.checkpoint()

    def test_checkpoint_inside_event_loop_refused(self):
        system = build_grid_system(GRID[1], horizon=2_000)
        seen = []

        def probe(_cycle):
            try:
                system.checkpoint()
            except CheckpointError as error:
                seen.append(str(error))

        system.engine.schedule(1_000, probe)
        system.run()
        assert seen and "inside the event loop" in seen[0]

    def test_restore_rejects_non_system_blob(self):
        blob = dump_checkpoint({"not": "a system"})
        with pytest.raises(CheckpointError):
            System.restore(blob)


# ---------------------------------------------------------------------------
# The differential grid: interrupted + resumed == golden, bit for bit.
# ---------------------------------------------------------------------------
def _diff_paths(expected, actual, prefix=""):
    if isinstance(expected, dict) and isinstance(actual, dict):
        out = []
        for key in sorted(set(expected) | set(actual)):
            if key not in expected or key not in actual:
                out.append(f"{prefix}.{key} (missing on one side)")
            else:
                out.extend(
                    _diff_paths(expected[key], actual[key], f"{prefix}.{key}")
                )
        return out
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            return [f"{prefix} (length {len(expected)} != {len(actual)})"]
        out = []
        for i, (e, a) in enumerate(zip(expected, actual)):
            out.extend(_diff_paths(e, a, f"{prefix}[{i}]"))
        return out
    if expected != actual:
        return [f"{prefix}: {expected!r} != {actual!r}"]
    return []


@pytest.mark.parametrize("spec", GRID, ids=[spec[0] for spec in GRID])
def test_checkpoint_resume_matches_golden(spec, golden):
    expected = golden["runs"][spec[0]]
    actual = json.loads(json.dumps(run_grid_spec_checkpointed(spec)))
    if actual != expected:
        diffs = _diff_paths(expected, actual, prefix=spec[0])
        pytest.fail(
            f"checkpoint-resumed run diverged from golden on {spec[0]}:\n"
            + "\n".join(diffs[:20])
        )


def test_interrupt_point_does_not_change_results(golden):
    # Two different interruption cycles, one early and one late, must both
    # land on the same golden document — the checkpoint is position-free.
    name = "dbp-tcm/open"
    spec = next(s for s in GRID if s[0] == name)
    for interrupt_at in (5_000, 50_000):
        actual = json.loads(
            json.dumps(run_grid_spec_checkpointed(spec, interrupt_at=interrupt_at))
        )
        assert actual == golden["runs"][name], f"interrupt_at={interrupt_at}"
