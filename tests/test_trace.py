"""Trace container and file-format tests."""

import pytest

from repro.cpu.trace import Trace, TraceRecord, concatenate, load_trace, save_trace
from repro.errors import TraceError


def simple_trace(name="t"):
    return Trace(
        name,
        [
            TraceRecord(3, 10, False),
            TraceRecord(0, 11, True),
            TraceRecord(5, 12, False),
        ],
    )


class TestConstruction:
    def test_cumulative_insts(self):
        trace = simple_trace()
        assert trace.cumulative_insts == [4, 5, 11]
        assert trace.total_insts == 11
        assert trace.total_requests == 3

    def test_len_and_iter(self):
        trace = simple_trace()
        assert len(trace) == 3
        assert list(trace)[0] == TraceRecord(3, 10, False)

    def test_mean_gap(self):
        assert simple_trace().mean_gap == pytest.approx(8 / 3)

    def test_intrinsic_mpki(self):
        assert simple_trace().intrinsic_mpki == pytest.approx(3000 / 11)

    def test_footprint(self):
        assert simple_trace().footprint_lines() == 3

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            Trace("empty", [])

    def test_negative_gap_rejected(self):
        with pytest.raises(TraceError):
            Trace("bad", [TraceRecord(-1, 0, False)])

    def test_negative_address_rejected(self):
        with pytest.raises(TraceError):
            Trace("bad", [TraceRecord(0, -5, False)])


class TestFileFormat:
    def test_roundtrip(self, tmp_path):
        trace = simple_trace("roundtrip")
        path = tmp_path / "t.trace"
        save_trace(trace, str(path))
        loaded = load_trace(str(path))
        assert loaded.name == "roundtrip"
        assert loaded.records == trace.records

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("#trace x\n\n1 2 R\n\n")
        assert len(load_trace(str(path))) == 1

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("1 2\n")
        with pytest.raises(TraceError):
            load_trace(str(path))

    def test_bad_kind_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("1 2 X\n")
        with pytest.raises(TraceError):
            load_trace(str(path))

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("a 2 R\n")
        with pytest.raises(TraceError):
            load_trace(str(path))


class TestConcatenate:
    def test_joins_records(self):
        joined = concatenate("joined", [simple_trace("a"), simple_trace("b")])
        assert len(joined) == 6
        assert joined.total_insts == 22
