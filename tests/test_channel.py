"""Channel-level tests: buses, turnaround rules, and command issue."""

import pytest

from repro.dram.channel import Channel
from repro.dram.commands import Command, CommandType
from repro.errors import ProtocolError


def make_channel(timings, ranks=2, banks=4, ratio=1):
    return Channel(0, ranks, banks, timings, clock_ratio=ratio)


def cmd(cycle, kind, rank=0, bank=0, row=-1):
    return Command(cycle=cycle, kind=kind, channel=0, rank=rank, bank=bank, row=row)


def open_row(channel, timings, rank=0, bank=0, row=1, at=0):
    channel.issue(cmd(at, CommandType.ACTIVATE, rank, bank, row))
    return at + timings.tRCD


class TestCommandBus:
    def test_one_command_per_bus_cycle(self, timings):
        channel = make_channel(timings, ratio=4)
        channel.issue(cmd(0, CommandType.ACTIVATE, 0, 0, 1))
        with pytest.raises(ProtocolError):
            channel.issue(cmd(3, CommandType.ACTIVATE, 0, 1, 1))
        channel.issue(cmd(4, CommandType.ACTIVATE, 0, 1, 1))

    def test_bus_free_time_advances(self, timings):
        channel = make_channel(timings, ratio=4)
        channel.issue(cmd(0, CommandType.ACTIVATE, 0, 0, 1))
        assert channel.command_bus_free_at() == 4


class TestCas:
    def test_read_after_trcd(self, timings):
        channel = make_channel(timings)
        ready = open_row(channel, timings)
        assert channel.earliest_cas(0, 0, False) == ready
        data_end = channel.issue(cmd(ready, CommandType.READ, 0, 0))
        assert data_end == ready + timings.CL + timings.tBURST

    def test_tccd_same_rank(self, timings):
        channel = make_channel(timings)
        ready = open_row(channel, timings)
        channel.issue(cmd(ready, CommandType.READ, 0, 0))
        assert channel.earliest_cas(0, 0, False) >= ready + timings.tCCD

    def test_wtr_same_rank(self, timings):
        channel = make_channel(timings)
        ready = open_row(channel, timings)
        data_end = channel.issue(cmd(ready, CommandType.WRITE, 0, 0))
        assert channel.earliest_cas(0, 0, False) >= data_end + timings.tWTR

    def test_rtw_turnaround(self, timings):
        channel = make_channel(timings)
        ready = open_row(channel, timings)
        channel.issue(cmd(ready, CommandType.READ, 0, 0))
        assert channel.earliest_cas(0, 0, True) >= ready + timings.tRTW

    def test_rank_switch_needs_trtrs_gap(self, timings):
        channel = make_channel(timings)
        r0 = open_row(channel, timings, rank=0)
        open_row(channel, timings, rank=1, at=timings.tRRD)  # other rank: no tRRD issue
        data_end = channel.issue(cmd(r0, CommandType.READ, 0, 0))
        earliest_other = channel.earliest_cas(1, 0, False)
        assert earliest_other + timings.CL >= data_end + timings.tRTRS

    def test_cas_without_open_row_rejected(self, timings):
        channel = make_channel(timings)
        with pytest.raises(ProtocolError):
            channel.issue(cmd(100, CommandType.READ, 0, 0))

    def test_early_cas_rejected(self, timings):
        channel = make_channel(timings)
        open_row(channel, timings)
        with pytest.raises(ProtocolError):
            channel.issue(cmd(timings.tRCD - 1, CommandType.READ, 0, 0))


class TestEarliestQueries:
    def test_activate_folds_rank_constraints(self, timings):
        channel = make_channel(timings)
        channel.issue(cmd(0, CommandType.ACTIVATE, 0, 0, 1))
        assert channel.earliest_activate(0, 1) >= timings.tRRD
        # Other rank unconstrained by this rank's tRRD (only bus).
        assert channel.earliest_activate(1, 0) <= timings.tRRD

    def test_precharge_query(self, timings):
        channel = make_channel(timings)
        open_row(channel, timings)
        assert channel.earliest_precharge(0, 0) == timings.tRAS


class TestRefresh:
    def test_refresh_blocks_rank(self, timings):
        channel = make_channel(timings)
        done = channel.issue(
            cmd(timings.tREFI, CommandType.REFRESH, rank=0, bank=-1)
        )
        assert done == timings.tREFI + timings.tRFC
        assert channel.earliest_activate(0, 0) >= done

    def test_refresh_pending_report(self, timings):
        channel = make_channel(timings)
        assert channel.refresh_pending(timings.tREFI) == [0, 1]
        assert channel.refresh_pending(0) == []


class TestBookkeeping:
    def test_wrong_channel_rejected(self, timings):
        channel = make_channel(timings)
        bad = Command(0, CommandType.ACTIVATE, channel=1, rank=0, bank=0, row=1)
        with pytest.raises(ProtocolError):
            channel.issue(bad)

    def test_command_log(self, timings):
        channel = make_channel(timings)
        channel.enable_logging()
        open_row(channel, timings)
        assert len(channel.command_log) == 1
        assert channel.command_log[0].kind is CommandType.ACTIVATE
        assert channel.stat_commands == 1

    def test_open_banks_report(self, timings):
        channel = make_channel(timings)
        open_row(channel, timings, bank=2, row=9)
        assert channel.open_banks(0) == [(2, 9)]
