"""Differential test: fast kernel == reference kernel == committed golden.

The controller's fast path (per-bank indexed queues, memoized best-request
cache, wake memo, direct agenda pushes) must be *bit-identical* to the
transparent reference rescan — same commands, same cycles, same metrics,
same engine event counts. This test runs every grid spec (all six
schedulers x every partitioning policy x open/closed page x validator-on)
under both kernels and compares the full result document against
``tests/data/kernel_golden.json``, which was generated from the reference
implementation.

A mismatch in anything — even ``engine_events`` — means the fast path
changed simulation-visible behaviour and is a bug (or, if the semantic
change is intended, the fixture must be deliberately regenerated via
``scripts/gen_kernel_golden.py`` and the change called out in the commit).
"""

import json
import os

import pytest

from repro.kernelgrid import GRID, run_grid_spec

_GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "kernel_golden.json"
)


@pytest.fixture(scope="module")
def golden():
    with open(_GOLDEN_PATH) as handle:
        return json.load(handle)


def _diff_paths(expected, actual, prefix=""):
    """Leaf-level paths where two JSON documents disagree (for messages)."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        out = []
        for key in sorted(set(expected) | set(actual)):
            if key not in expected or key not in actual:
                out.append(f"{prefix}.{key} (missing on one side)")
            else:
                out.extend(
                    _diff_paths(expected[key], actual[key], f"{prefix}.{key}")
                )
        return out
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            return [f"{prefix} (length {len(expected)} != {len(actual)})"]
        out = []
        for i, (e, a) in enumerate(zip(expected, actual)):
            out.extend(_diff_paths(e, a, f"{prefix}[{i}]"))
        return out
    if expected != actual:
        return [f"{prefix}: {expected!r} != {actual!r}"]
    return []


def _roundtrip(doc):
    # The golden was written through json.dump; round-trip the live result
    # the same way so float formatting cannot produce spurious diffs.
    return json.loads(json.dumps(doc))


@pytest.mark.parametrize("kernel", ["fast", "reference"])
@pytest.mark.parametrize("spec", GRID, ids=[spec[0] for spec in GRID])
def test_kernel_matches_golden(spec, kernel, golden):
    expected = golden["runs"][spec[0]]
    actual = _roundtrip(run_grid_spec(spec, kernel=kernel))
    if actual != expected:
        diffs = _diff_paths(expected, actual, prefix=spec[0])
        pytest.fail(
            f"{kernel} kernel diverged from golden on {spec[0]}:\n"
            + "\n".join(diffs[:20])
        )


def test_golden_covers_full_grid(golden):
    assert sorted(golden["runs"]) == sorted(spec[0] for spec in GRID)
