"""Shared fixtures: small, fast configurations for the test suite."""

from __future__ import annotations

import pytest

from repro import (
    CacheConfig,
    ControllerConfig,
    CoreConfig,
    DRAMOrganization,
    OSConfig,
    SystemConfig,
)
from repro.dram.timing import DDR3_1066, scaled_timings
from repro.mapping import AddressMap
from repro.sim.runner import Runner


@pytest.fixture
def timings():
    """Unscaled DDR3-1066 timings (small numbers, easy to reason about)."""
    return DDR3_1066


@pytest.fixture
def scaled():
    """DDR3-1066 scaled to a 4:1 CPU clock."""
    return scaled_timings(DDR3_1066, 4)


@pytest.fixture
def small_org():
    """One channel, one rank, four banks — the smallest useful device."""
    return DRAMOrganization(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=4,
        rows_per_bank=256,
        row_size_bytes=8192,
    )


@pytest.fixture
def small_config(small_org):
    """Two cores on the small device, tiny cache, fast epochs."""
    return SystemConfig(
        num_cores=2,
        clock_ratio=2,
        dram_preset="DDR3-1066",
        organization=small_org,
        core=CoreConfig(width=4, rob_size=64, mshrs=8),
        cache=CacheConfig(size_bytes=16 * 1024, associativity=4),
        controller=ControllerConfig(
            read_queue_depth=32,
            write_queue_depth=32,
            write_high_watermark=24,
            write_low_watermark=8,
        ),
        osmm=OSConfig(migration_budget_pages=4, migration_lines_per_page=2),
    )


@pytest.fixture
def address_map(small_config):
    return AddressMap(small_config.organization, small_config.osmm.page_size)


@pytest.fixture
def fast_runner(small_config):
    """A Runner with a short horizon for integration tests."""
    return Runner(config=small_config, horizon=30_000, target_insts=200_000)
