"""Streaming telemetry sink: spill-to-disk, rotation, loading, corruption.

The acceptance property pinned here: a run longer than the ring capacity
keeps only ``capacity`` epochs in memory but *every* epoch on disk, and the
stored stream renders the same timeline as the live recorder for the
retained window.
"""

from __future__ import annotations

import json

import pytest

from repro.core.dbp import DBPConfig, DynamicBankPartitioning
from repro.errors import ConfigError
from repro.sim.system import System
from repro.telemetry import (
    STREAM_SCHEMA,
    STREAM_SCHEMA_VERSION,
    TelemetryConfig,
    TelemetryRecorder,
    TelemetryStreamWriter,
    load_stream,
    render_decisions,
    render_timeline,
)
from repro.workloads import AppProfile, generate_trace

HEAVY = AppProfile("heavy", 25.0, 0.7, 4, 0.3, 1)
LIGHT = AppProfile("light", 0.4, 0.6, 2, 0.2, 1)


def traces(seed=1, target_insts=500_000):
    return [
        generate_trace(HEAVY, seed=seed, target_insts=target_insts),
        generate_trace(LIGHT, seed=seed, target_insts=target_insts),
    ]


def run_system(small_config, recorder, horizon=65_000):
    config = small_config.with_scheduler("tcm", quantum_cycles=10_000)
    policy = DynamicBankPartitioning(DBPConfig(epoch_cycles=20_000))
    system = System(
        config, traces(), horizon=horizon, policy=policy, telemetry=recorder
    )
    result = system.run()
    return system, result


class TestStreamWriter:
    def test_segment_starts_with_schema_header(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        writer = TelemetryStreamWriter(str(path), capacity=4, latency_buckets=14)
        writer.write({"cycle": 10})
        writer.close()
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["schema"] == STREAM_SCHEMA
        assert header["schema_version"] == STREAM_SCHEMA_VERSION
        assert header["seq"] == 0
        assert header["capacity"] == 4
        assert json.loads(lines[1]) == {"cycle": 10}

    def test_rotation_carries_seq_and_bounds_files(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        writer = TelemetryStreamWriter(
            str(path),
            capacity=4,
            latency_buckets=14,
            max_bytes=4096,
            max_files=2,
        )
        # ~300 bytes per record forces several rotations within 100 writes.
        pad = "x" * 280
        for cycle in range(100):
            writer.write({"cycle": cycle, "pad": pad})
        writer.close()
        assert path.exists()
        assert (tmp_path / "stream.jsonl.1").exists()
        assert (tmp_path / "stream.jsonl.2").exists()
        assert not (tmp_path / "stream.jsonl.3").exists()
        stored = load_stream(str(path))
        # Retained records are contiguous and end at the newest write.
        cycles = [r["cycle"] for r in stored.records]
        assert cycles == list(range(stored.dropped_epochs, 100))
        assert stored.dropped_epochs > 0
        assert stored.epochs == 100

    def test_close_is_idempotent_and_write_after_close_raises(self, tmp_path):
        writer = TelemetryStreamWriter(
            str(tmp_path / "s.jsonl"), capacity=4, latency_buckets=14
        )
        writer.close()
        writer.close()
        with pytest.raises(ConfigError):
            writer.write({"cycle": 1})

    def test_rejects_tiny_max_bytes(self, tmp_path):
        with pytest.raises(ConfigError):
            TelemetryStreamWriter(
                str(tmp_path / "s.jsonl"),
                capacity=4,
                latency_buckets=14,
                max_bytes=100,
            )


class TestRecorderStreaming:
    def test_all_epochs_survive_on_disk_past_ring_capacity(
        self, small_config, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        recorder = TelemetryRecorder(
            TelemetryConfig(capacity=2, stream_path=str(path))
        )
        run_system(small_config, recorder)
        # The ring kept 2 of 6 epochs; the stream kept all 6.
        assert recorder.epochs == 6
        assert len(recorder.records) == 2
        assert recorder.dropped_epochs == 4
        stored = load_stream(str(path))
        assert stored.epochs == 6
        assert [r["cycle"] for r in stored.records] == [
            10_000, 20_000, 30_000, 40_000, 50_000, 60_000
        ]
        assert recorder.summary()["streamed_epochs"] == 6

    def test_streamed_records_match_ring_records_exactly(
        self, small_config, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        recorder = TelemetryRecorder(
            TelemetryConfig(stream_path=str(path))
        )
        run_system(small_config, recorder)
        stored = load_stream(str(path))
        assert stored.records == list(recorder.records)
        assert stored.dropped_epochs == 0

    def test_stored_stream_renders_same_tables_as_recorder(
        self, small_config, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        recorder = TelemetryRecorder(
            TelemetryConfig(stream_path=str(path))
        )
        run_system(small_config, recorder)
        stored = load_stream(str(path))
        assert render_timeline(stored) == render_timeline(recorder)
        assert render_decisions(stored) == render_decisions(recorder)

    def test_streaming_does_not_change_simulation_results(
        self, small_config, tmp_path
    ):
        baseline, base_result = run_system(small_config, recorder=None)
        streamed_rec = TelemetryRecorder(
            TelemetryConfig(capacity=2, stream_path=str(tmp_path / "s.jsonl"))
        )
        streamed, stream_result = run_system(small_config, recorder=streamed_rec)
        assert baseline.engine.stat_events == streamed.engine.stat_events
        assert base_result.threads == stream_result.threads
        assert base_result.total_commands == stream_result.total_commands
        assert base_result.pages_migrated == stream_result.pages_migrated


class TestLoadStreamErrors:
    def _valid_stream(self, tmp_path):
        path = tmp_path / "v.jsonl"
        writer = TelemetryStreamWriter(str(path), capacity=4, latency_buckets=14)
        writer.write({"cycle": 1, "fired_quantum": True, "fired_policy": False})
        writer.write({"cycle": 2, "fired_quantum": True, "fired_policy": True})
        writer.close()
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            load_stream(str(tmp_path / "nope.jsonl"))

    def test_truncated_record_line_names_file_and_line(self, tmp_path):
        path = self._valid_stream(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) - 20])  # chop mid-record
        with pytest.raises(ConfigError, match=r"\.jsonl:3: corrupt"):
            load_stream(str(path))

    def test_garbage_line_raises_config_error(self, tmp_path):
        path = self._valid_stream(tmp_path)
        with open(path, "a") as handle:
            handle.write("!!! not json !!!\n")
        with pytest.raises(ConfigError, match="corrupt telemetry record"):
            load_stream(str(path))

    def test_non_record_document_rejected(self, tmp_path):
        path = self._valid_stream(tmp_path)
        with open(path, "a") as handle:
            handle.write('{"no_cycle": true}\n')
        with pytest.raises(ConfigError, match="missing 'cycle'"):
            load_stream(str(path))

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"cycle": 1}\n')
        with pytest.raises(ConfigError, match="missing header"):
            load_stream(str(path))

    def test_foreign_schema_rejected(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text('{"kind": "header", "schema": "other", "seq": 0}\n')
        with pytest.raises(ConfigError, match="unknown telemetry schema"):
            load_stream(str(path))

    def test_newer_schema_version_rejected(self, tmp_path):
        path = tmp_path / "n.jsonl"
        path.write_text(
            json.dumps(
                {
                    "kind": "header",
                    "schema": STREAM_SCHEMA,
                    "schema_version": STREAM_SCHEMA_VERSION + 1,
                    "seq": 0,
                }
            )
            + "\n"
        )
        with pytest.raises(ConfigError, match="newer than this reader"):
            load_stream(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("")
        with pytest.raises(ConfigError, match="empty telemetry stream"):
            load_stream(str(path))

    def test_segment_gap_detected(self, tmp_path):
        path = tmp_path / "g.jsonl"
        header = {
            "kind": "header",
            "schema": STREAM_SCHEMA,
            "schema_version": STREAM_SCHEMA_VERSION,
            "capacity": 4,
            "latency_buckets": 14,
        }
        (tmp_path / "g.jsonl.1").write_text(
            json.dumps({**header, "seq": 0}) + "\n" + '{"cycle": 1}\n'
        )
        # Active segment claims 5 records precede it; only 1 exists.
        path.write_text(
            json.dumps({**header, "seq": 5}) + "\n" + '{"cycle": 6}\n'
        )
        with pytest.raises(ConfigError, match="missing rotation"):
            load_stream(str(path))
