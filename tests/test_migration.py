"""Migration engine tests: both modes, hotness ordering, plan contents."""

import pytest

from repro.config import DRAMOrganization
from repro.errors import ConfigError
from repro.mapping import AddressMap
from repro.osmm import ColorAwareAllocator, MigrationEngine, PageTable


def make_world(mode="remap", budget=2, lines=2):
    org = DRAMOrganization(
        channels=2,
        ranks_per_channel=1,
        banks_per_rank=4,
        rows_per_bank=64,
        row_size_bytes=8192,
    )
    amap = AddressMap(org, page_size=4096)
    allocator = ColorAwareAllocator(amap)
    table = PageTable(0, allocator, amap)
    engine = MigrationEngine(allocator, amap, budget, lines, mode=mode)
    return table, allocator, amap, engine


def touch_pages(table, count, per_page_accesses=None):
    for vpage in range(count):
        accesses = (per_page_accesses or {}).get(vpage, 1)
        for _ in range(accesses):
            table.translate_line(vpage * 64)


class TestRemapMode:
    def test_all_misplaced_pages_move(self):
        table, allocator, amap, engine = make_world(mode="remap", budget=1)
        allocator.set_thread_colors(0, {0})
        touch_pages(table, 6)
        plan = engine.migrate(table, frozenset({1}))
        assert plan.moved_pages == 6
        for vpage, _old, new in plan.moves:
            assert amap.frame_bank_color(new) == 1
            assert table.frame_of(vpage) == new

    def test_copy_traffic_only_for_budget(self):
        table, allocator, _, engine = make_world(mode="remap", budget=2, lines=3)
        allocator.set_thread_colors(0, {0})
        touch_pages(table, 5)
        plan = engine.migrate(table, frozenset({1}))
        assert plan.moved_pages == 5
        assert len(plan.copy_lines) == 2 * 3  # budget pages x lines

    def test_well_placed_pages_untouched(self):
        table, allocator, _, engine = make_world()
        allocator.set_thread_colors(0, {0, 1})
        touch_pages(table, 4)
        plan = engine.migrate(table, frozenset({0, 1}))
        assert plan.moved_pages == 0
        assert plan.copy_lines == []


class TestBudgetMode:
    def test_only_budget_pages_move(self):
        table, allocator, _, engine = make_world(mode="budget", budget=2)
        allocator.set_thread_colors(0, {0})
        touch_pages(table, 6)
        plan = engine.migrate(table, frozenset({1}))
        assert plan.moved_pages == 2

    def test_hottest_pages_move_first(self):
        table, allocator, amap, engine = make_world(mode="budget", budget=1)
        allocator.set_thread_colors(0, {0})
        touch_pages(table, 4, per_page_accesses={2: 10})
        plan = engine.migrate(table, frozenset({1}))
        assert plan.moved_pages == 1
        assert plan.moves[0][0] == 2  # the hot vpage

    def test_zero_budget_is_noop(self):
        table, allocator, _, engine = make_world(mode="budget", budget=0)
        allocator.set_thread_colors(0, {0})
        touch_pages(table, 3)
        plan = engine.migrate(table, frozenset({1}))
        assert plan.moved_pages == 0


class TestPlacementRules:
    def test_channel_preserved_when_allowed(self):
        table, allocator, amap, engine = make_world()
        allocator.set_thread_colors(0, {0})
        touch_pages(table, 4)
        before = {v: amap.frame_channel(f) for v, f in table.mapped_pages()}
        engine.migrate(table, frozenset({2}))
        after = {v: amap.frame_channel(f) for v, f in table.mapped_pages()}
        assert before == after

    def test_channel_constraint_enforced(self):
        table, allocator, amap, engine = make_world()
        touch_pages(table, 6)
        engine.migrate(table, frozenset({0, 1, 2, 3}), frozenset({1}))
        for _v, frame in table.mapped_pages():
            assert amap.frame_channel(frame) == 1

    def test_old_frames_freed_for_reuse(self):
        table, allocator, amap, engine = make_world()
        allocator.set_thread_colors(0, {0})
        touch_pages(table, 2)
        old = [f for _v, f in table.mapped_pages()]
        engine.migrate(table, frozenset({1}))
        freed = {
            allocator.allocate_in(
                amap.frame_channel(f), amap.frame_bank_color(f)
            )
            for f in old
        }
        assert set(old) == freed

    def test_stat_accumulates(self):
        table, allocator, _, engine = make_world()
        allocator.set_thread_colors(0, {0})
        touch_pages(table, 3)
        engine.migrate(table, frozenset({1}))
        touch_pages(table, 3)  # already mapped, no change
        engine.migrate(table, frozenset({2}))
        assert engine.stat_pages_moved == 6

    def test_bad_mode_rejected(self):
        table, allocator, amap, _ = make_world()
        with pytest.raises(ConfigError):
            MigrationEngine(allocator, amap, 1, 1, mode="warp")

    def test_negative_budget_rejected(self):
        table, allocator, amap, _ = make_world()
        with pytest.raises(ConfigError):
            MigrationEngine(allocator, amap, -1, 1)
        with pytest.raises(ConfigError):
            MigrationEngine(allocator, amap, 1, -1)
