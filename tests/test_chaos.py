"""Chaos suite: the campaign layer driven through every injected failure.

The fault harness (:mod:`repro.faults`) is deterministic — whether a rule
fires is a pure function of (seed, site, key, attempt) — so every test
here asserts *exact* convergence: a ``times=1`` fault fires on attempt 1
and provably never again, which lets the supervised executor be held to
"every spec resolved, nothing silently lost" under worker crashes, hangs,
transient and poison exceptions, corrupted store blobs, and torn
checkpoints.
"""

from __future__ import annotations

import threading
import warnings
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.campaign import (
    FailureClass,
    ResultStore,
    RunSpec,
    classify_failure,
    execute,
)
from repro.campaign.executor import (
    _WORKER_RUNNERS,
    _WORKER_STORES,
    RunTimeoutError,
)
from repro.errors import SimulationError, TraceError
from repro.faults import (
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    TransientFaultError,
    corrupt_file,
    hang,
    install_plan,
    maybe_fire,
    truncate_file,
)
from repro.faults import reset as faults_reset
from repro.traces.format import load_rtrc, save_rtrc
from repro.traces.source import DefaultTraceSource


@pytest.fixture(autouse=True)
def _clean_process_state():
    """No runner caches, store handles, or fault plans leak across tests."""
    _WORKER_RUNNERS.clear()
    _WORKER_STORES.clear()
    faults_reset()
    yield
    _WORKER_RUNNERS.clear()
    _WORKER_STORES.clear()
    faults_reset()


def _spec(small_config, approach="shared-frfcfs", mix_name="CHAOS"):
    return RunSpec(
        apps=("lbm", "gcc"),
        approach=approach,
        config=small_config,
        horizon=30_000,
        target_insts=200_000,
        mix_name=mix_name,
    )


# ---------------------------------------------------------------------------
# Plan determinism.
# ---------------------------------------------------------------------------
class TestPlan:
    def test_times_bounds_attempts(self):
        plan = FaultPlan(
            faults=(FaultSpec(site="worker.run", kind="transient", times=2),)
        )
        assert plan.match("worker.run", key="x", attempt=1) is not None
        assert plan.match("worker.run", key="x", attempt=2) is not None
        assert plan.match("worker.run", key="x", attempt=3) is None

    def test_site_and_label_matching(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(site="worker.run", kind="crash", match="*ebp*"),
            )
        )
        assert plan.match("worker.run", key="M4/ebp s1 h30000") is not None
        assert plan.match("worker.run", key="M4/dbp s1 h30000") is None
        assert plan.match("store.put", key="M4/ebp s1 h30000") is None

    def test_rate_draw_is_deterministic(self):
        rule = FaultSpec(site="worker.run", kind="transient", rate=0.5)
        a = FaultPlan(seed=11, faults=(rule,))
        b = FaultPlan(seed=11, faults=(rule,))
        keys = [f"run-{i}" for i in range(64)]
        fired_a = [a.match("worker.run", key=k) is not None for k in keys]
        fired_b = [b.match("worker.run", key=k) is not None for k in keys]
        assert fired_a == fired_b
        assert any(fired_a) and not all(fired_a)

    def test_doc_and_file_roundtrip(self, tmp_path):
        plan = FaultPlan(
            seed=7,
            faults=(
                FaultSpec(site="worker.run", kind="hang", seconds=1.5),
                FaultSpec(site="store.put", kind="corrupt_blob", match="*x*"),
            ),
        )
        assert FaultPlan.from_doc(plan.to_doc()) == plan
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(site="worker.run", kind="meteor-strike")


# ---------------------------------------------------------------------------
# Injectors.
# ---------------------------------------------------------------------------
class TestInjectors:
    def test_corrupt_file_flips_bytes_keeps_length(self, tmp_path):
        path = tmp_path / "blob"
        original = bytes(range(256)) * 4
        path.write_bytes(original)
        corrupt_file(path)
        damaged = path.read_bytes()
        assert len(damaged) == len(original)
        assert damaged != original

    def test_truncate_file_shortens(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"x" * 1000)
        truncate_file(path)
        assert path.stat().st_size == 500

    def test_hang_returns_after_deadline(self):
        hang(0.05)  # interruptible slices; must simply return

    def test_maybe_fire_raises_by_kind(self):
        install_plan(
            FaultPlan(
                faults=(
                    FaultSpec(site="a", kind="transient"),
                    FaultSpec(site="b", kind="deterministic"),
                )
            )
        )
        with pytest.raises(TransientFaultError):
            maybe_fire("a", key="k")
        with pytest.raises(SimulationError):
            maybe_fire("b", key="k")
        assert maybe_fire("c", key="k") is None

    def test_truncated_trace_file_fails_deterministically(self, tmp_path):
        trace = DefaultTraceSource().trace_for("gcc", 1, 50_000)
        path = tmp_path / "gcc.rtrc"
        save_rtrc(trace, str(path))
        truncate_file(path, keep_fraction=0.3)
        with pytest.raises(TraceError) as excinfo:
            load_rtrc(str(path))
        # A damaged input is not worth retrying: the supervisor must
        # classify it as deterministic and quarantine, not burn budget.
        assert (
            classify_failure(excinfo.value) is FailureClass.DETERMINISTIC
        )


# ---------------------------------------------------------------------------
# Failure taxonomy.
# ---------------------------------------------------------------------------
class TestClassification:
    def test_taxonomy(self):
        cases = [
            (RunTimeoutError("t"), FailureClass.TIMEOUT),
            (TransientFaultError("t"), FailureClass.TRANSIENT),
            (OSError("disk"), FailureClass.TRANSIENT),
            (MemoryError(), FailureClass.TRANSIENT),
            (BrokenProcessPool("pool"), FailureClass.INFRASTRUCTURE),
            (SimulationError("bug"), FailureClass.DETERMINISTIC),
            (ValueError("bug"), FailureClass.DETERMINISTIC),
        ]
        for error, expected in cases:
            assert classify_failure(error) is expected, error


# ---------------------------------------------------------------------------
# Executor failure paths (serial).
# ---------------------------------------------------------------------------
class TestSerialFaults:
    def test_transient_fault_recovers_with_record(
        self, small_config, tmp_path
    ):
        spec = _spec(small_config)
        store = ResultStore(tmp_path / "store")
        plan = FaultPlan(
            seed=1,
            faults=(
                FaultSpec(site="worker.run", kind="transient", times=1),
            ),
        )
        result = execute(
            [spec], store=store, retries=1, backoff=0.01, faults=plan
        )
        outcome = result.outcomes[0]
        assert outcome.status == "ok"
        assert outcome.attempts == 2
        assert outcome.failure is not None
        assert outcome.failure.resolution == "recovered"
        assert result.time_lost_to_faults > 0
        record = store.get_failure(spec.key())
        assert record is not None and record["resolution"] == "recovered"
        assert result.unresolved == []

    def test_poison_spec_quarantined_not_retried_forever(
        self, small_config, tmp_path
    ):
        spec = _spec(small_config)
        store = ResultStore(tmp_path / "store")
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="worker.run", kind="deterministic", times=99
                ),
            ),
        )
        result = execute(
            [spec],
            store=store,
            retries=10,
            backoff=0.01,
            quarantine_after=2,
            faults=plan,
        )
        outcome = result.outcomes[0]
        assert outcome.status == "quarantined"
        # Quarantine triggers after 2 deterministic failures — the other
        # 9 budgeted retries must NOT be burned on a hopeless spec.
        assert outcome.attempts == 2
        assert outcome.failure.resolution == "quarantined"
        assert outcome.failure.final_class == "deterministic"
        record = store.get_failure(spec.key())
        assert record is not None and record["resolution"] == "quarantined"
        assert result.unresolved == []

    def test_hang_times_out_then_recovers(self, small_config, tmp_path):
        spec = _spec(small_config)
        store = ResultStore(tmp_path / "store")
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="worker.run", kind="hang", times=1, seconds=30.0
                ),
            ),
        )
        result = execute(
            [spec],
            store=store,
            retries=1,
            timeout=0.5,
            backoff=0.01,
            faults=plan,
        )
        outcome = result.outcomes[0]
        assert outcome.status == "ok"
        assert outcome.attempts == 2
        assert outcome.failure.attempts[0].error_class == "timeout"

    def test_quarantined_spec_heals_on_next_campaign(
        self, small_config, tmp_path
    ):
        spec = _spec(small_config)
        store = ResultStore(tmp_path / "store")
        poison = FaultPlan(
            faults=(
                FaultSpec(
                    site="worker.run", kind="deterministic", times=99
                ),
            ),
        )
        first = execute(
            [spec], store=store, backoff=0.01, faults=poison
        )
        assert first.outcomes[0].status == "quarantined"
        # Same store, fault fixed (no plan): the spec re-executes and its
        # failure record is cleared — quarantine is not a life sentence.
        second = execute([spec], store=store, backoff=0.01)
        assert second.outcomes[0].status == "ok"
        assert store.get_failure(spec.key()) is None

    def test_corrupt_store_blob_quarantined_and_reexecuted(
        self, small_config, tmp_path
    ):
        spec = _spec(small_config)
        store = ResultStore(tmp_path / "store")
        plan = FaultPlan(
            faults=(FaultSpec(site="store.put", kind="corrupt_blob"),),
        )
        first = execute([spec], store=store, faults=plan)
        assert first.outcomes[0].status == "ok"
        # The blob on disk is damaged; the next campaign must detect it,
        # refuse to serve garbage, and re-run instead of reporting cached.
        second = execute([spec], store=store, backoff=0.01)
        assert second.outcomes[0].status == "ok"
        assert store.stats.corrupt >= 1

    def test_watchdog_enforces_timeout_off_main_thread(
        self, small_config, tmp_path
    ):
        big = RunSpec(
            apps=("lbm", "gcc"),
            approach="shared-frfcfs",
            config=small_config,
            horizon=400_000,
            target_insts=4_000_000,
        )
        results = {}
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")

            def drive():
                results["campaign"] = execute(
                    [big], jobs=1, retries=0, timeout=0.1
                )

            thread = threading.Thread(target=drive)
            thread.start()
            thread.join(timeout=60)
        assert not thread.is_alive()
        outcome = results["campaign"].outcomes[0]
        assert outcome.status == "failed"
        assert "timeout" in outcome.error
        assert any(
            "watchdog thread" in str(w.message) for w in caught
        ), "the fallback mechanism must be named in a warning"


# ---------------------------------------------------------------------------
# Checkpointed retries.
# ---------------------------------------------------------------------------
class TestCheckpointedRetries:
    def test_retry_resumes_from_checkpoint_bit_identically(
        self, small_config, tmp_path
    ):
        spec = _spec(small_config)
        # Worker dies right AFTER flushing its first safepoint: the retry
        # must resume from that checkpoint, not from scratch.
        plan = FaultPlan(
            faults=(
                FaultSpec(site="checkpoint.write", kind="transient", times=1),
            ),
        )
        store = ResultStore(tmp_path / "faulty")
        faulty = execute(
            [spec],
            store=store,
            retries=1,
            backoff=0.01,
            safepoint_every=10_000,
            faults=plan,
        )
        outcome = faulty.outcomes[0]
        assert outcome.status == "ok"
        assert outcome.attempts == 2
        assert outcome.failure.attempts[0].error_class == "transient"

        clean = execute(
            [spec], store=ResultStore(tmp_path / "clean"), retries=0
        )
        resumed, uninterrupted = outcome.result, clean.outcomes[0].result
        assert (
            resumed.system.engine_events
            == uninterrupted.system.engine_events
        )
        assert resumed.metrics_snapshot == uninterrupted.metrics_snapshot
        assert resumed.shared_ipcs == uninterrupted.shared_ipcs

    def test_torn_checkpoint_falls_back_to_scratch(
        self, small_config, tmp_path
    ):
        spec = _spec(small_config)
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="checkpoint.write",
                    kind="torn_checkpoint",
                    times=1,
                ),
            ),
        )
        store = ResultStore(tmp_path / "store")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = execute(
                [spec],
                store=store,
                retries=1,
                backoff=0.01,
                safepoint_every=10_000,
                faults=plan,
            )
        outcome = result.outcomes[0]
        assert outcome.status == "ok"
        assert outcome.attempts == 2
        # The half-written file left by attempt 1 must be detected as
        # corrupt and discarded — never resumed from, never fatal.
        assert any(
            "discarding unusable checkpoint" in str(w.message)
            for w in caught
        )
        assert not list((tmp_path / "store" / "checkpoints").glob("*.ckpt"))


# ---------------------------------------------------------------------------
# Pooled chaos: real SIGKILL, pool respawn, full mini-campaign.
# ---------------------------------------------------------------------------
class TestPooledChaos:
    def test_worker_kill_respawns_pool_without_charging_budget(
        self, small_config, tmp_path
    ):
        specs = [
            _spec(small_config, approach="shared-frfcfs"),
            _spec(small_config, approach="ebp"),
        ]
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="worker.run", kind="crash", match="*ebp*", times=1
                ),
            ),
        )
        store = ResultStore(tmp_path / "store")
        result = execute(
            [specs[0], specs[1]],
            jobs=2,
            store=store,
            retries=1,
            backoff=0.01,
            faults=plan,
        )
        assert result.pool_respawns >= 1
        by_approach = {o.spec.approach: o for o in result.outcomes}
        assert by_approach["shared-frfcfs"].status == "ok"
        killed = by_approach["ebp"]
        assert killed.status == "ok"
        # The SIGKILL was an infrastructure loss: the retry budget must
        # not have been charged for it.
        assert killed.attempts == 1
        assert result.unresolved == []

    def test_mini_campaign_survives_mixed_faults(
        self, small_config, tmp_path
    ):
        """The headline chaos scenario: crash + hang + transient + poison
        in one pooled campaign; every spec must end resolved."""
        specs = [
            _spec(small_config, approach="shared-frfcfs", mix_name="CRASH"),
            _spec(small_config, approach="shared-frfcfs", mix_name="HANG"),
            _spec(small_config, approach="shared-frfcfs", mix_name="FLAKY"),
            _spec(small_config, approach="shared-frfcfs", mix_name="POISON"),
        ]
        plan = FaultPlan(
            seed=5,
            faults=(
                FaultSpec(
                    site="worker.run", kind="crash", match="CRASH/*", times=1
                ),
                FaultSpec(
                    site="worker.run",
                    kind="hang",
                    match="HANG/*",
                    times=1,
                    seconds=30.0,
                ),
                FaultSpec(
                    site="worker.run",
                    kind="transient",
                    match="FLAKY/*",
                    times=1,
                ),
                FaultSpec(
                    site="worker.run",
                    kind="deterministic",
                    match="POISON/*",
                    times=99,
                ),
            ),
        )
        store = ResultStore(tmp_path / "store")
        result = execute(
            specs,
            jobs=2,
            store=store,
            retries=2,
            timeout=2.0,
            backoff=0.01,
            quarantine_after=2,
            faults=plan,
        )
        by_mix = {o.spec.mix_name: o for o in result.outcomes}
        assert by_mix["CRASH"].status == "ok"
        # HANG's first failure may be the timeout OR the pool breakage the
        # CRASH spec caused while HANG was in flight — both must recover.
        assert by_mix["HANG"].status == "ok"
        assert by_mix["FLAKY"].status == "ok"
        assert by_mix["FLAKY"].failure.resolution == "recovered"
        assert by_mix["POISON"].status == "quarantined"
        assert by_mix["POISON"].failure.resolution == "quarantined"
        # Nothing silently lost: every spec is executed, cached, or
        # explicitly quarantined with a persisted failure record.
        assert result.unresolved == []
        persisted = {key for key, _doc in store.iter_failures()}
        assert specs[3].key() in persisted
        assert result.pool_respawns >= 1
        assert result.time_lost_to_faults > 0
