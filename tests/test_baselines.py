"""Partitioning baseline tests: shared, EBP, fixed, MCP."""

from types import SimpleNamespace

import pytest

from repro.baselines import (
    EqualBankPartitioning,
    FixedAllocationPolicy,
    MCPConfig,
    MemoryChannelPartitioning,
    SharedPolicy,
    make_policy,
    policy_names,
)
from repro.config import DRAMOrganization
from repro.errors import ConfigError
from repro.mapping import AddressMap
from repro.baselines.base import PartitionContext
from repro.memctrl.schedulers.base import ProfileSnapshot, ThreadProfile
from repro.osmm import ColorAwareAllocator, PageTable


def make_world(num_threads=4, colors=8, channels=2):
    org = DRAMOrganization(
        channels=channels,
        ranks_per_channel=1,
        banks_per_rank=colors,
        rows_per_bank=64,
        row_size_bytes=8192,
    )
    amap = AddressMap(org, page_size=4096)
    allocator = ColorAwareAllocator(amap)
    tables = {t: PageTable(t, allocator, amap) for t in range(num_threads)}
    return PartitionContext(
        allocator, amap, tables, None, inject_copy_traffic=lambda plan: None
    )


def prof(thread, mpki=20.0, rbh=0.5, blp=2.0, bandwidth=0.3):
    return ThreadProfile(thread, mpki, rbh, blp, bandwidth, requests=100)


def snap(*profiles):
    return ProfileSnapshot(cycle=0, threads={p.thread_id: p for p in profiles})


class TestRegistry:
    def test_registered_names(self):
        assert set(policy_names()) >= {"shared", "ebp", "dbp", "mcp", "fixed"}

    def test_make_by_name(self):
        assert isinstance(make_policy("shared"), SharedPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("banana")


class TestShared:
    def test_everything_allowed(self):
        world = make_world()
        SharedPolicy().initialize(world)
        for t in range(4):
            assert world.allocator.thread_colors(t) == frozenset(range(8))
            assert world.allocator.thread_channels(t) == frozenset(range(2))


class TestEBP:
    def test_even_split(self):
        assert EqualBankPartitioning.compute_assignment(4, 8) == {
            0: [0, 1],
            1: [2, 3],
            2: [4, 5],
            3: [6, 7],
        }

    def test_remainder_to_early_threads(self):
        assignment = EqualBankPartitioning.compute_assignment(3, 8)
        assert [len(v) for v in assignment.values()] == [3, 3, 2]
        flat = [c for v in assignment.values() for c in v]
        assert sorted(flat) == list(range(8))

    def test_more_threads_than_colors_rejected(self):
        with pytest.raises(ConfigError):
            EqualBankPartitioning.compute_assignment(9, 8)

    def test_initialize_applies(self):
        world = make_world()
        EqualBankPartitioning().initialize(world)
        assert world.allocator.thread_colors(0) == frozenset({0, 1})
        assert world.allocator.thread_colors(3) == frozenset({6, 7})


class TestFixed:
    def test_applies_given_allocation(self):
        world = make_world(num_threads=2)
        FixedAllocationPolicy({0: [0], 1: [1, 2]}).initialize(world)
        assert world.allocator.thread_colors(0) == frozenset({0})
        assert world.allocator.thread_colors(1) == frozenset({1, 2})

    def test_missing_thread_rejected(self):
        world = make_world(num_threads=2)
        with pytest.raises(ConfigError):
            FixedAllocationPolicy({0: [0]}).initialize(world)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            FixedAllocationPolicy({})


class TestMCP:
    def test_initialize_is_shared(self):
        world = make_world()
        MemoryChannelPartitioning().initialize(world)
        assert world.allocator.thread_channels(0) == frozenset({0, 1})

    def test_intensive_threads_get_single_channels(self):
        world = make_world()
        policy = MemoryChannelPartitioning()
        snapshot = snap(
            prof(0, mpki=30, rbh=0.9),  # intensive, high RBH
            prof(1, mpki=25, rbh=0.2),  # intensive, low RBH
            prof(2, mpki=0.1),
            prof(3, mpki=0.2),
        )
        assignment = policy.compute_assignment(snapshot, world)
        assert len(assignment[0]) == 1
        assert len(assignment[1]) == 1
        # Different RBH groups end up on different channels.
        assert assignment[0] != assignment[1]

    def test_light_threads_keep_all_channels(self):
        world = make_world()
        policy = MemoryChannelPartitioning()
        snapshot = snap(
            prof(0, mpki=30, rbh=0.9),
            prof(1, mpki=25, rbh=0.2),
            prof(2, mpki=0.1),
            prof(3, mpki=0.2),
        )
        assignment = policy.compute_assignment(snapshot, world)
        assert assignment[2] == [0, 1]
        assert assignment[3] == [0, 1]

    def test_same_group_load_balanced(self):
        world = make_world(channels=4)
        policy = MemoryChannelPartitioning()
        snapshot = snap(
            *[prof(t, mpki=30, rbh=0.2, bandwidth=0.3) for t in range(4)]
        )
        assignment = policy.compute_assignment(snapshot, world)
        used = [c for t in range(4) for c in assignment[t]]
        # Four equal threads over four channels: spread out.
        assert len(set(used)) == 4

    def test_single_channel_degenerates_to_shared(self):
        world = make_world(channels=1)
        policy = MemoryChannelPartitioning()
        snapshot = snap(prof(0, mpki=30), prof(1, mpki=30), prof(2), prof(3))
        assignment = policy.compute_assignment(snapshot, world)
        assert all(channels == [0] for channels in assignment.values())

    def test_on_epoch_applies_channels(self):
        world = make_world()
        policy = MemoryChannelPartitioning()
        policy.initialize(world)
        snapshot = snap(
            prof(0, mpki=30, rbh=0.9),
            prof(1, mpki=25, rbh=0.2),
            prof(2, mpki=0.1),
            prof(3, mpki=0.2),
        )
        policy.on_epoch(snapshot, world)
        assert len(world.allocator.thread_channels(0)) == 1
        assert policy.last_assignment

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MCPConfig(low_mpki_threshold=-1)
        with pytest.raises(ConfigError):
            MCPConfig(high_rbh_threshold=0)
        with pytest.raises(ConfigError):
            MCPConfig(epoch_cycles=0)
