"""Bank-demand estimator tests."""

import pytest

from repro.core.demand import BankDemandEstimator, DemandConfig
from repro.errors import ConfigError
from repro.memctrl.schedulers.base import ProfileSnapshot, ThreadProfile


def snap(*profiles):
    return ProfileSnapshot(
        cycle=0, threads={p.thread_id: p for p in profiles}
    )


def prof(thread, mpki=20.0, rbh=0.5, blp=2.0):
    return ThreadProfile(thread, mpki, rbh, blp, bandwidth=0.2, requests=100)


class TestClassification:
    def test_below_threshold_is_light(self):
        est = BankDemandEstimator(DemandConfig(low_mpki_threshold=1.0))
        assert not est.classify_intensive(0.5)
        assert est.classify_intensive(1.0)

    def test_light_thread_demand_zero(self):
        est = BankDemandEstimator(DemandConfig())
        demands = est.estimate(snap(prof(0, mpki=0.2)), 1)
        assert not demands[0].intensive
        assert demands[0].banks == 0

    def test_missing_thread_treated_as_light(self):
        est = BankDemandEstimator(DemandConfig())
        demands = est.estimate(snap(), 2)
        assert not demands[0].intensive
        assert not demands[1].intensive


class TestFullMode:
    def test_demand_scales_with_blp(self):
        est = BankDemandEstimator(DemandConfig(blp_scale=1.5))
        low = est.estimate(snap(prof(0, blp=1.0)), 1)[0].banks
        high = est.estimate(snap(prof(0, blp=6.0)), 1)[0].banks
        assert high > low
        assert high == 9  # ceil(6 * 1.5)

    def test_streaming_deduction(self):
        est = BankDemandEstimator(
            DemandConfig(blp_scale=2.0, high_rbh_threshold=0.85)
        )
        normal = est.estimate(snap(prof(0, blp=4.0, rbh=0.5)), 1)[0].banks
        stream = est.estimate(snap(prof(0, blp=4.0, rbh=0.95)), 1)[0].banks
        assert stream == normal // 2

    def test_cap_respected(self):
        est = BankDemandEstimator(DemandConfig(max_banks_per_thread=4))
        demand = est.estimate(snap(prof(0, blp=50.0)), 1)[0].banks
        assert demand == 4

    def test_minimum_one_bank(self):
        est = BankDemandEstimator(DemandConfig())
        demand = est.estimate(snap(prof(0, blp=0.01)), 1)[0].banks
        assert demand >= 1


class TestVariantModes:
    def test_blp_mode_ignores_rbh(self):
        est = BankDemandEstimator(DemandConfig(mode="blp", blp_scale=2.0))
        a = est.estimate(snap(prof(0, blp=4.0, rbh=0.99)), 1)[0].banks
        b = est.estimate(snap(prof(0, blp=4.0, rbh=0.10)), 1)[0].banks
        assert a == b

    def test_mpki_mode_scales_with_intensity(self):
        est = BankDemandEstimator(DemandConfig(mode="mpki"))
        light = est.estimate(snap(prof(0, mpki=5.0)), 1)[0].banks
        heavy = est.estimate(snap(prof(0, mpki=40.0)), 1)[0].banks
        assert heavy > light


class TestValidation:
    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigError):
            DemandConfig(low_mpki_threshold=-1)

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ConfigError):
            DemandConfig(blp_scale=0)

    def test_bad_rbh_threshold_rejected(self):
        with pytest.raises(ConfigError):
            DemandConfig(high_rbh_threshold=1.5)

    def test_zero_cap_rejected(self):
        with pytest.raises(ConfigError):
            DemandConfig(max_banks_per_thread=0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            DemandConfig(mode="oracle")
