"""Flight-recorder span tracing: tracer units, file merge, and the
campaign supervisor's cross-process timeline.

The acceptance scenario lives in :class:`TestCampaignSpans`: a faulty
mini-campaign (one SIGKILL, one transient) must produce a single merged
Perfetto-loadable span file whose ``fault-retry`` span nests — by time
containment on the same pid/tid lane — under its run span.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import ResultStore, RunSpec, execute
from repro.campaign.executor import _WORKER_RUNNERS, _WORKER_STORES
from repro.faults import FaultPlan, FaultSpec
from repro.faults import reset as faults_reset
from repro.telemetry.spans import (
    SpanTracer,
    current_tracer,
    install_tracer,
    load_trace_file,
    merge_trace_files,
    merge_traces,
    now_us,
    uninstall_tracer,
    write_trace_file,
)


@pytest.fixture(autouse=True)
def _clean_process_state():
    """No tracer, runner cache, or fault plan leaks across tests."""
    uninstall_tracer()
    _WORKER_RUNNERS.clear()
    _WORKER_STORES.clear()
    faults_reset()
    yield
    uninstall_tracer()
    _WORKER_RUNNERS.clear()
    _WORKER_STORES.clear()
    faults_reset()


def _x_events(doc, name=None):
    return [
        e
        for e in doc["traceEvents"]
        if e.get("ph") == "X" and (name is None or e["name"] == name)
    ]


def _contains(outer, inner):
    """Chrome-trace containment: same pid/tid, inner inside outer."""
    return (
        outer["pid"] == inner["pid"]
        and outer["tid"] == inner["tid"]
        and outer["ts"] <= inner["ts"]
        and inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
    )


class TestSpanTracer:
    def test_begin_end_nest_by_containment(self):
        tracer = SpanTracer("t", pid=7)
        tracer.begin("outer", depth=1)
        tracer.begin("inner")
        tracer.end()
        tracer.end(extra="yes")
        outer = _x_events(tracer.to_chrome(), "outer")[0]
        inner = _x_events(tracer.to_chrome(), "inner")[0]
        assert _contains(outer, inner)
        assert outer["args"] == {"depth": 1, "extra": "yes"}
        assert outer["pid"] == 7

    def test_span_context_manager_closes_on_error(self):
        tracer = SpanTracer("t")
        with pytest.raises(ValueError):
            with tracer.span("guarded"):
                raise ValueError("boom")
        assert len(_x_events(tracer.to_chrome(), "guarded")) == 1

    def test_complete_clamps_duration_to_one(self):
        tracer = SpanTracer("t")
        tracer.complete("tiny", now_us(), 0)
        assert _x_events(tracer.to_chrome(), "tiny")[0]["dur"] == 1

    def test_lanes_are_stable_and_named(self):
        tracer = SpanTracer("t")
        a = tracer.lane("M4/dbp")
        b = tracer.lane("M5/ebp")
        assert a != b and a != tracer.MAIN_LANE
        assert tracer.lane("M4/dbp") == a
        names = {
            e["tid"]: e["args"]["name"]
            for e in tracer.events()
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert names[a] == "M4/dbp"
        assert names[b] == "M5/ebp"

    def test_instant_records_marker(self):
        tracer = SpanTracer("t")
        tracer.instant("cached", index=3)
        (event,) = [
            e for e in tracer.events() if e.get("ph") == "i"
        ]
        assert event["name"] == "cached"
        assert event["args"] == {"index": 3}

    def test_install_returns_previous(self):
        first = SpanTracer("one")
        second = SpanTracer("two")
        assert install_tracer(first) is None
        assert current_tracer() is first
        assert install_tracer(second) is first
        install_tracer(first)
        assert current_tracer() is first
        uninstall_tracer()
        assert current_tracer() is None


class TestTraceFiles:
    def test_write_load_round_trip(self, tmp_path):
        tracer = SpanTracer("t")
        tracer.complete("s", now_us(), 5)
        path = str(tmp_path / "trace.json")
        tracer.write(path)
        doc = load_trace_file(path)
        assert _x_events(doc, "s")
        # Perfetto's legacy importer needs the JSON Object Format.
        assert json.load(open(path))["traceEvents"]

    def test_load_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"not": "a trace"}')
        with pytest.raises(ValueError):
            load_trace_file(str(path))

    def test_merge_skips_missing_files(self, tmp_path):
        tracer = SpanTracer("t")
        tracer.complete("kept", now_us(), 5)
        kept = str(tmp_path / "kept.json")
        tracer.write(kept)
        merged = merge_trace_files([kept, str(tmp_path / "killed.json")])
        assert _x_events(merged, "kept")

    def test_merge_sorts_metadata_first(self):
        early = SpanTracer("early", pid=1)
        late = SpanTracer("late", pid=2)
        early.complete("a", 100, 5)
        late.complete("b", 50, 5)
        merged = merge_traces([early.to_chrome(), late.to_chrome()])
        phases = [e.get("ph") for e in merged["traceEvents"]]
        first_x = phases.index("X")
        assert all(ph == "M" for ph in phases[:first_x])
        xs = [e for e in merged["traceEvents"] if e.get("ph") == "X"]
        assert [e["name"] for e in xs] == ["b", "a"]

    def test_merge_extra_appends_in_memory_documents(self, tmp_path):
        sup = SpanTracer("supervisor")
        sup.complete("campaign", now_us(), 10)
        merged = merge_trace_files([], extra=[sup.to_chrome()])
        assert _x_events(merged, "campaign")


class TestRunnerSpans:
    def test_run_mix_emits_nested_phases(self, fast_runner, tmp_path):
        tracer = SpanTracer("test-run")
        install_tracer(tracer)
        fast_runner.run_apps(["lbm", "gcc"], "dbp-tcm")
        uninstall_tracer()
        doc = tracer.to_chrome()
        run = _x_events(doc, "run")[0]
        measure = _x_events(doc, "measure")[0]
        baselines = _x_events(doc, "alone-baselines")[0]
        assert _contains(run, measure)
        assert _contains(run, baselines)
        assert _x_events(doc, "alone-run")
        assert measure["args"]["approach"] == "dbp-tcm"

    def test_store_hit_emits_cached_instant(self, small_config, tmp_path):
        from repro.sim.runner import Runner

        store = ResultStore(tmp_path / "store")
        runner = Runner(
            config=small_config,
            horizon=30_000,
            target_insts=200_000,
            store=store,
        )
        runner.run_apps(["lbm", "gcc"], "ebp")
        fresh = Runner(
            config=small_config,
            horizon=30_000,
            target_insts=200_000,
            store=store,
        )
        tracer = SpanTracer("cached")
        install_tracer(tracer)
        fresh.run_apps(["lbm", "gcc"], "ebp")
        uninstall_tracer()
        assert any(
            e["name"] == "run-cached"
            for e in tracer.events()
            if e.get("ph") == "i"
        )

    def test_no_tracer_costs_nothing_and_records_nothing(self, fast_runner):
        assert current_tracer() is None
        result = fast_runner.run_apps(["lbm", "gcc"], "shared-frfcfs")
        assert result.metrics is not None


def _spec(small_config, approach="shared-frfcfs", mix_name="SPANS"):
    return RunSpec(
        apps=("lbm", "gcc"),
        approach=approach,
        config=small_config,
        horizon=30_000,
        target_insts=200_000,
        mix_name=mix_name,
    )


class TestCampaignSpans:
    def test_serial_campaign_merges_worker_parts(
        self, small_config, tmp_path
    ):
        spans = tmp_path / "campaign.json"
        store = ResultStore(tmp_path / "store")
        result = execute(
            [_spec(small_config)], store=store, spans=str(spans)
        )
        assert result.outcomes[0].status == "ok"
        doc = load_trace_file(str(spans))
        campaign = _x_events(doc, "campaign")[0]
        sup_run = [
            e for e in _x_events(doc, "run") if e["tid"] != 0
        ]
        assert sup_run, "supervisor must lay the run out on a spec lane"
        # Worker spans (runner-level "measure") made it into the merge.
        assert _x_events(doc, "measure")
        attempts = _x_events(doc, "attempt")
        assert attempts and attempts[0]["args"]["outcome"] == "ok"
        assert campaign["args"]["runs"] == 1
        # Part files are consumed by the merge.
        assert not list(tmp_path.glob("campaign.json.parts/*.json"))

    def test_cached_outcomes_appear_as_instants(
        self, small_config, tmp_path
    ):
        spans = tmp_path / "c.json"
        store = ResultStore(tmp_path / "store")
        execute([_spec(small_config)], store=store)
        execute([_spec(small_config)], store=store, spans=str(spans))
        doc = load_trace_file(str(spans))
        assert any(
            e["name"] == "run-cached"
            for e in doc["traceEvents"]
            if e.get("ph") == "i"
        )

    def test_faulty_campaign_nests_retry_under_run_span(
        self, small_config, tmp_path
    ):
        """Acceptance: SIGKILL + transient in one campaign -> one merged
        Perfetto-loadable file, retry spans nested under run spans."""
        specs = [
            _spec(small_config, mix_name="KILLED"),
            _spec(small_config, approach="ebp", mix_name="FLAKY"),
        ]
        plan = FaultPlan(
            seed=3,
            faults=(
                FaultSpec(
                    site="worker.run", kind="crash", match="KILLED/*",
                    times=1,
                ),
                FaultSpec(
                    site="worker.run", kind="transient", match="FLAKY/*",
                    times=1,
                ),
            ),
        )
        spans = tmp_path / "faulty.json"
        store = ResultStore(tmp_path / "store")
        result = execute(
            specs,
            jobs=2,
            store=store,
            retries=2,
            backoff=0.01,
            faults=plan,
            spans=str(spans),
        )
        assert {o.status for o in result.outcomes} == {"ok"}
        doc = load_trace_file(str(spans))
        retries = _x_events(doc, "fault-retry")
        assert retries, "both injected faults must leave retry spans"
        runs = _x_events(doc, "run")
        for retry in retries:
            assert any(
                _contains(run, retry) for run in runs
            ), f"retry span {retry} not nested under any run span"
        # Every retried spec still settled with an ok run span.
        ok_runs = [
            e for e in runs if e.get("args", {}).get("status") == "ok"
        ]
        assert len(ok_runs) >= len(specs)
