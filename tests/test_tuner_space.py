"""Tunable-parameter spaces and parameterized approach names."""

import pytest

from repro.config import SystemConfig
from repro.core.integration import APPROACHES, get_approach
from repro.errors import ConfigError
from repro.tuner.space import (
    ParameterSpace,
    Tunable,
    approach_space,
    format_params,
    parameterized_name,
    parse_params,
    split_point,
)


class TestTunable:
    def test_numeric_needs_bounds(self):
        with pytest.raises(ConfigError, match="low and high"):
            Tunable(name="x", kind="int", default=1)

    def test_default_must_be_in_bounds(self):
        with pytest.raises(ConfigError, match="outside"):
            Tunable(name="x", kind="int", default=99, low=0, high=10)

    def test_choice_default_must_be_a_choice(self):
        with pytest.raises(ConfigError, match="not among"):
            Tunable(name="x", kind="choice", default="c", choices=("a", "b"))

    def test_log_scale_needs_positive_low(self):
        with pytest.raises(ConfigError, match="low > 0"):
            Tunable(name="x", kind="float", default=1.0, low=0.0, high=2.0,
                    log=True)

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigError, match="kind"):
            Tunable(name="x", kind="bool", default=True)

    def test_bad_target_rejected(self):
        with pytest.raises(ConfigError, match="target"):
            Tunable(name="x", kind="int", default=1, low=0, high=2,
                    target="cpu")

    def test_coerce_parses_strings(self):
        t_int = Tunable(name="n", kind="int", default=5, low=1, high=10)
        t_float = Tunable(name="f", kind="float", default=0.5, low=0.0,
                          high=1.0)
        t_choice = Tunable(name="c", kind="choice", default="a",
                           choices=("a", "b"))
        assert t_int.coerce("7") == 7
        assert t_float.coerce("0.25") == 0.25
        assert t_choice.coerce("b") == "b"

    def test_coerce_rejects_out_of_bounds(self):
        t = Tunable(name="n", kind="int", default=5, low=1, high=10)
        with pytest.raises(ConfigError, match="outside"):
            t.coerce(11)

    def test_coerce_rejects_fractional_int(self):
        t = Tunable(name="n", kind="int", default=5, low=1, high=10)
        with pytest.raises(ConfigError, match="not a valid int"):
            t.coerce(2.5)

    def test_coerce_rejects_garbage(self):
        t = Tunable(name="f", kind="float", default=0.5, low=0.0, high=1.0)
        with pytest.raises(ConfigError, match="not a valid float"):
            t.coerce("banana")


class TestParameterSpace:
    def test_duplicate_names_rejected(self):
        t1 = Tunable(name="x", kind="int", default=1, low=0, high=2)
        t2 = Tunable(name="x", kind="float", default=0.5, low=0.0, high=1.0,
                     target="scheduler")
        with pytest.raises(ConfigError, match="declared by both"):
            ParameterSpace(approach="a", tunables=(t1, t2))

    def test_unknown_tunable_names_known_ones(self):
        space = approach_space("dbp")
        with pytest.raises(ConfigError, match="epoch_cycles"):
            space.get("warp_factor")

    def test_dbp_space_layers(self):
        space = approach_space("dbp")
        targets = {t.name: t.target for t in space.tunables}
        assert targets["epoch_cycles"] == "policy"
        assert targets["demand.low_mpki_threshold"] == "policy"
        assert targets["migration_budget_pages"] == "osmm"

    def test_dbp_tcm_adds_scheduler_tunables(self):
        dbp = set(approach_space("dbp").names())
        dbp_tcm = set(approach_space("dbp-tcm").names())
        assert {"quantum_cycles", "cluster_fraction"} <= dbp_tcm - dbp

    def test_shared_approach_has_no_osmm_tunables(self):
        space = approach_space("shared-frfcfs")
        assert not any(t.target == "osmm" for t in space.tunables)

    def test_every_registered_approach_assembles(self):
        for name in APPROACHES:
            space = approach_space(name)
            # Every declared default must survive its own validation.
            assert space.coerce_point(space.defaults()) == space.defaults()

    def test_split_point_routes_by_target(self):
        space = approach_space("dbp-tcm")
        layers = split_point(space, {
            "epoch_cycles": 20000,
            "quantum_cycles": 30000,
            "migration_budget_pages": 4,
        })
        assert layers["policy"] == {"epoch_cycles": 20000}
        assert layers["scheduler"] == {"quantum_cycles": 30000}
        assert layers["osmm"] == {"migration_budget_pages": 4}


class TestParamText:
    def test_format_is_sorted_and_canonical(self):
        assert format_params({"b": 2, "a": 0.5}) == "a=0.5,b=2"

    def test_empty_point_is_the_base_name(self):
        assert parameterized_name("dbp", {}) == "dbp"

    def test_parse_rejects_bad_item(self):
        with pytest.raises(ConfigError, match="name=value"):
            parse_params("epoch_cycles")

    def test_parse_rejects_duplicates(self):
        with pytest.raises(ConfigError, match="twice"):
            parse_params("a=1,a=2")

    def test_parse_rejects_empty(self):
        with pytest.raises(ConfigError, match="at least one"):
            parse_params("")


class TestDeriveApproach:
    def test_two_spellings_share_one_name(self):
        a = get_approach("dbp@epoch_cycles=20000,demand_smoothing=0.25")
        b = get_approach("dbp@demand_smoothing=0.25,epoch_cycles=20000")
        assert a.name == b.name
        assert a.policy_params == b.policy_params

    def test_derived_approach_carries_tuned_config(self):
        approach = get_approach(
            "dbp@epoch_cycles=20000,demand.low_mpki_threshold=0.8"
        )
        config = approach.policy_params["config"]
        assert config.epoch_cycles == 20000
        assert config.demand.low_mpki_threshold == 0.8
        assert "tuned:" in approach.description

    def test_scheduler_params_ride_flat(self):
        approach = get_approach("dbp-tcm@quantum_cycles=30000")
        assert approach.scheduler_params["quantum_cycles"] == 30000

    def test_tuned_point_gets_its_own_store_key(self):
        from repro.campaign.spec import RunSpec

        def spec(name):
            return RunSpec(
                apps=("mcf", "lbm"), approach=name, config=SystemConfig(),
                seed=1, horizon=10000,
            )

        default = spec("dbp").key()
        tuned = spec("dbp@epoch_cycles=20000").key()
        respelled = spec("dbp@epoch_cycles=20000").key()
        assert default != tuned
        assert tuned == respelled

    def test_osmm_params_rejected_in_names(self):
        with pytest.raises(ConfigError, match="migration engine"):
            get_approach("dbp@migration_budget_pages=4")

    def test_out_of_bounds_value_rejected(self):
        with pytest.raises(ConfigError, match="outside"):
            get_approach("dbp@epoch_cycles=999999999")

    def test_unknown_tunable_rejected(self):
        with pytest.raises(ConfigError, match="no tunable"):
            get_approach("dbp@warp_factor=9")

    def test_unknown_base_mentions_param_syntax(self):
        with pytest.raises(ConfigError, match="@key=value"):
            get_approach("warp-drive@x=1")

    def test_derived_approach_simulates(self):
        from repro.sim.runner import Runner
        from repro.workloads import resolve_mix

        runner = Runner(horizon=10_000, seed=1)
        metrics = runner.run_mix(
            resolve_mix("M4"), "dbp@epoch_cycles=10000"
        ).metrics
        assert metrics.weighted_speedup > 0
