"""Fast-kernel introspection counters over the kernel-golden grid.

The flight-recorder counters (``repro_kernel_*``) are the one sanctioned
divergence between the two decision kernels: the fast kernel populates
them, the reference kernel leaves every one at zero, and
``kernelgrid.grid_doc`` strips the prefix so the differential document —
and therefore the committed golden fixture — never sees them. This
module pins all three properties across the full 17-spec grid, plus the
checkpoint round-trip (counters are plain ints that ride along in
pickled systems) and the summary math in
:mod:`repro.metrics.kernelstats`.
"""

from __future__ import annotations

import pytest

from repro.kernelgrid import GRID, build_grid_system, grid_doc
from repro.metrics.kernelstats import (
    kernel_counter_summary,
    render_kernel_summary,
)

#: Counter families every populated run must export.
_KERNEL_METRICS = (
    "repro_kernel_decisions_total",
    "repro_kernel_wake_memo_total",
    "repro_kernel_scans_total",
    "repro_kernel_best_memo_total",
    "repro_kernel_scanned_requests_total",
    "repro_kernel_invalidations_total",
    "repro_kernel_cas_floor_total",
)


def _kernel_samples(snapshot):
    out = {}
    for metric in snapshot["metrics"]:
        if metric["name"].startswith("repro_kernel_"):
            out[metric["name"]] = metric["samples"]
    return out


def _run(spec, kernel):
    system = build_grid_system(spec, kernel=kernel)
    result = system.run()
    return system, result


@pytest.mark.parametrize("spec", GRID, ids=[spec[0] for spec in GRID])
def test_fast_populates_reference_stays_zero_results_identical(spec):
    fast_system, fast_result = _run(spec, "fast")
    ref_system, ref_result = _run(spec, "reference")

    fast_counters = _kernel_samples(
        fast_system.metrics_registry().snapshot()
    )
    for name in _KERNEL_METRICS:
        assert name in fast_counters, f"fast run exports {name}"
    decisions = sum(
        s["value"] for s in fast_counters["repro_kernel_decisions_total"]
    )
    assert decisions > 0, "the fast kernel made decisions"

    ref_counters = _kernel_samples(ref_system.metrics_registry().snapshot())
    for name, samples in ref_counters.items():
        if name == "repro_kernel_agenda_peak":
            # The agenda high-water mark is an engine property; the event
            # stream is identical by contract, so both kernels report it.
            continue
        assert all(s["value"] == 0 for s in samples), (
            f"reference kernel must leave {name} at zero"
        )

    assert grid_doc(fast_system, fast_result) == grid_doc(
        ref_system, ref_result
    ), f"{spec[0]}: kernels disagree on simulation-visible results"


def test_grid_doc_strips_kernel_counters():
    system, result = _run(GRID[0], "fast")
    doc = grid_doc(system, result)
    names = {m["name"] for m in doc["metrics"]["metrics"]}
    assert not any(n.startswith("repro_kernel_") for n in names)
    # The live snapshot still carries them — only the differential
    # document is sanitized.
    live = {
        m["name"] for m in system.metrics_registry().snapshot()["metrics"]
    }
    assert any(n.startswith("repro_kernel_") for n in live)


def test_agenda_peak_identical_between_kernels():
    fast_system, _ = _run(GRID[0], "fast")
    ref_system, _ = _run(GRID[0], "reference")
    assert fast_system.engine.stat_agenda_peak > 0
    assert (
        fast_system.engine.stat_agenda_peak
        == ref_system.engine.stat_agenda_peak
    )


def test_counters_survive_checkpoint_round_trip():
    from repro.sim.system import System

    spec = GRID[10]  # dbp-tcm/open — exercises migration + token paths

    class _Interrupted(Exception):
        pass

    captured = {}

    def _snap_and_die(system, _cycle):
        captured["blob"] = system.checkpoint()
        raise _Interrupted

    first = build_grid_system(spec, kernel="fast")
    with pytest.raises(_Interrupted):
        first.run(safepoint_every=20_000, on_safepoint=_snap_and_die)
    restored = System.restore(captured["blob"])
    result = restored.resume()

    straight = build_grid_system(spec, kernel="fast")
    straight_result = straight.run()

    assert grid_doc(restored, result) == grid_doc(
        straight, straight_result
    )
    restored_counters = _kernel_samples(
        restored.metrics_registry().snapshot()
    )
    straight_counters = _kernel_samples(
        straight.metrics_registry().snapshot()
    )
    assert restored_counters == straight_counters


class TestKernelSummary:
    def test_summary_derives_ratios(self):
        system, result = _run(GRID[10], "fast")
        snapshot = system.metrics_registry().snapshot()
        summary = kernel_counter_summary(snapshot)
        assert summary["decisions"] > 0
        wake = summary["wake_memo"]
        assert wake["hits"] + wake["misses"] <= summary["decisions"]
        if wake["hits"]:
            assert 0 < wake["short_circuit_ratio"] <= 1
        best = summary["best_memo"]
        assert best["hits"] + best["misses"] > 0
        assert 0 <= best["hit_rate"] <= 1
        assert summary["scanned_requests"] >= best["misses"]
        causes = summary["invalidations"]
        assert set(causes) >= {
            "enqueue", "activate", "precharge", "cas", "refresh", "token",
        }
        assert causes["enqueue"] > 0
        assert summary["agenda_peak"] > 0
        report = render_kernel_summary(summary)
        assert "wake-memo short-circuits" in report
        assert "invalidations by cause" in report

    def test_summary_of_reference_run_is_all_zero_with_none_ratios(self):
        system, result = _run(GRID[0], "reference")
        summary = kernel_counter_summary(
            system.metrics_registry().snapshot()
        )
        assert summary["decisions"] == 0
        assert summary["wake_memo"]["short_circuit_ratio"] is None
        assert summary["best_memo"]["hit_rate"] is None
        assert summary["mean_scan_length"] is None
        assert summary["cas_floor"]["skip_rate"] is None
        # Renders without dividing by zero.
        assert "n/a" in render_kernel_summary(summary)

    def test_summary_of_empty_snapshot(self):
        summary = kernel_counter_summary({"metrics": []})
        assert summary["decisions"] == 0
        assert summary["agenda_peak"] == 0
        render_kernel_summary(summary)
