"""Configuration validation and derived-property tests."""

import pytest

from repro import (
    CacheConfig,
    ControllerConfig,
    CoreConfig,
    DRAMOrganization,
    OSConfig,
    SystemConfig,
)
from repro.errors import ConfigError


class TestDRAMOrganization:
    def test_defaults_valid(self):
        org = DRAMOrganization()
        assert org.banks_per_channel == org.ranks_per_channel * org.banks_per_rank
        assert org.total_banks == org.channels * org.banks_per_channel

    def test_capacity(self):
        org = DRAMOrganization(
            channels=1,
            ranks_per_channel=1,
            banks_per_rank=4,
            rows_per_bank=256,
            row_size_bytes=8192,
        )
        assert org.capacity_bytes == 4 * 256 * 8192

    @pytest.mark.parametrize(
        "field,value",
        [
            ("channels", 3),
            ("ranks_per_channel", 0),
            ("banks_per_rank", 12),
            ("rows_per_bank", 100),
            ("row_size_bytes", 5000),
            ("line_size", 48),
        ],
    )
    def test_non_powers_rejected(self, field, value):
        with pytest.raises(ConfigError):
            DRAMOrganization(**{field: value})

    def test_row_smaller_than_line_rejected(self):
        with pytest.raises(ConfigError):
            DRAMOrganization(row_size_bytes=32, line_size=64)


class TestCoreConfig:
    def test_defaults_valid(self):
        CoreConfig()

    def test_zero_width_rejected(self):
        with pytest.raises(ConfigError):
            CoreConfig(width=0)

    def test_rob_smaller_than_width_rejected(self):
        with pytest.raises(ConfigError):
            CoreConfig(width=8, rob_size=4)

    def test_zero_mshrs_rejected(self):
        with pytest.raises(ConfigError):
            CoreConfig(mshrs=0)


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig(size_bytes=16 * 1024, associativity=4, line_size=64)
        assert config.num_sets == 64

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=24 * 1024, associativity=4, line_size=64)

    def test_odd_line_size_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(line_size=96)

    def test_zero_hit_latency_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(hit_latency=0)


class TestControllerConfig:
    def test_defaults_valid(self):
        ControllerConfig()

    def test_watermark_order_enforced(self):
        with pytest.raises(ConfigError):
            ControllerConfig(write_high_watermark=8, write_low_watermark=16)

    def test_watermark_above_depth_rejected(self):
        with pytest.raises(ConfigError):
            ControllerConfig(write_queue_depth=16, write_high_watermark=32)

    def test_zero_queue_rejected(self):
        with pytest.raises(ConfigError):
            ControllerConfig(read_queue_depth=0)


class TestOSConfig:
    def test_defaults_valid(self):
        OSConfig()

    def test_bad_page_size_rejected(self):
        with pytest.raises(ConfigError):
            OSConfig(page_size=3000)

    def test_bad_migration_mode_rejected(self):
        with pytest.raises(ConfigError):
            OSConfig(migration_mode="teleport")

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError):
            OSConfig(migration_budget_pages=-1)


class TestSystemConfig:
    def test_defaults_valid(self):
        config = SystemConfig()
        assert config.bank_colors == config.organization.banks_per_channel

    def test_timings_scaled_by_clock_ratio(self):
        config = SystemConfig(clock_ratio=6)
        from repro.dram.timing import preset

        base = preset(config.dram_preset)
        assert config.timings.tRCD == base.tRCD * 6
        assert config.timings.CL == base.CL * 6

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(dram_preset="DDR9-9000")

    def test_line_size_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(cache=CacheConfig(line_size=128))

    def test_row_smaller_than_page_rejected(self):
        org = DRAMOrganization(row_size_bytes=2048, rows_per_bank=1024)
        with pytest.raises(ConfigError):
            SystemConfig(organization=org)

    def test_more_cores_than_colors_rejected(self):
        org = DRAMOrganization(ranks_per_channel=1, banks_per_rank=8)
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=16, organization=org)

    def test_with_scheduler_returns_modified_copy(self):
        config = SystemConfig()
        modified = config.with_scheduler("tcm", cluster_fraction=0.2)
        assert modified.controller.scheduler == "tcm"
        assert modified.controller.scheduler_params == {"cluster_fraction": 0.2}
        assert config.controller.scheduler == "frfcfs"  # original untouched

    def test_describe_mentions_key_facts(self):
        text = SystemConfig().describe()
        assert "DDR3-1066" in text
        assert "Bank colors" in text
        assert "512 KB" in text

    def test_page_offset_bits(self):
        assert SystemConfig().page_offset_bits == 12
