"""Thread profiler tests: MPKI, RBH, BLP integrals, epoch reset."""

import pytest

from repro.core.profiler import ThreadProfiler
from repro.mapping import MemLocation
from repro.memctrl.request import Request


def req(thread=0, bank=0, write=False, migration=False):
    return Request(
        thread_id=thread,
        is_write=write,
        line_addr=0,
        loc=MemLocation(channel=0, rank=0, bank=bank, row=0, col=0),
        arrival=0,
        is_migration=migration,
    )


class Retired:
    """Mutable retirement counter stand-in for the cores."""

    def __init__(self):
        self.values = {0: 0, 1: 0}

    def __call__(self, thread_id):
        return self.values[thread_id]


@pytest.fixture
def setup():
    retired = Retired()
    profiler = ThreadProfiler(
        num_threads=2, burst_cycles=4, retired_insts_of=retired
    )
    return profiler, retired


class TestMPKI:
    def test_requests_over_kiloinsts(self, setup):
        profiler, retired = setup
        for _ in range(20):
            profiler.on_arrival(req(0), 0)
        retired.values[0] = 2000
        snap = profiler.snapshot(1000)
        assert snap.profile(0).mpki == pytest.approx(10.0)

    def test_zero_insts_gives_zero_mpki(self, setup):
        profiler, _ = setup
        profiler.on_arrival(req(0), 0)
        assert profiler.snapshot(100).profile(0).mpki == 0.0

    def test_mpki_is_per_epoch(self, setup):
        profiler, retired = setup
        for _ in range(10):
            profiler.on_arrival(req(0), 0)
        retired.values[0] = 1000
        profiler.snapshot(500)
        # Second epoch: no requests, 1000 more insts.
        retired.values[0] = 2000
        assert profiler.snapshot(1000).profile(0).mpki == 0.0


class TestRBH:
    def test_hit_rate(self, setup):
        profiler, _ = setup
        requests = [req(0) for _ in range(4)]
        for r in requests:
            profiler.on_arrival(r, 0)
        for i, r in enumerate(requests):
            profiler.on_cas(r, 10 + i, row_hit=(i % 2 == 0))
        assert profiler.snapshot(100).profile(0).rbh == pytest.approx(0.5)

    def test_no_served_gives_zero(self, setup):
        profiler, _ = setup
        assert profiler.snapshot(100).profile(0).rbh == 0.0


class TestBLP:
    def test_single_bank_blp_is_one(self, setup):
        profiler, _ = setup
        r = req(0, bank=0)
        profiler.on_arrival(r, 0)
        profiler.on_cas(r, 100, False)
        assert profiler.snapshot(200).profile(0).blp == pytest.approx(1.0)

    def test_two_banks_concurrent_blp_is_two(self, setup):
        profiler, _ = setup
        a, b = req(0, bank=0), req(0, bank=1)
        profiler.on_arrival(a, 0)
        profiler.on_arrival(b, 0)
        profiler.on_cas(a, 100, False)
        profiler.on_cas(b, 100, False)
        assert profiler.snapshot(200).profile(0).blp == pytest.approx(2.0)

    def test_blp_time_weighted(self, setup):
        profiler, _ = setup
        a, b = req(0, bank=0), req(0, bank=1)
        profiler.on_arrival(a, 0)
        profiler.on_arrival(b, 0)
        profiler.on_cas(b, 50, False)  # two banks for 50 cycles
        profiler.on_cas(a, 150, False)  # one bank for 100 cycles
        # Integral = 2*50 + 1*100 = 200 over 150 active cycles.
        assert profiler.snapshot(200).profile(0).blp == pytest.approx(200 / 150)

    def test_multiple_requests_same_bank_count_once(self, setup):
        profiler, _ = setup
        a, b = req(0, bank=0), req(0, bank=0)
        profiler.on_arrival(a, 0)
        profiler.on_arrival(b, 0)
        profiler.on_cas(a, 100, False)
        profiler.on_cas(b, 120, False)
        assert profiler.snapshot(200).profile(0).blp == pytest.approx(1.0)

    def test_threads_independent(self, setup):
        profiler, _ = setup
        a, b = req(0, bank=0), req(1, bank=1)
        profiler.on_arrival(a, 0)
        profiler.on_arrival(b, 0)
        profiler.on_cas(a, 100, False)
        profiler.on_cas(b, 100, False)
        snap = profiler.snapshot(200)
        assert snap.profile(0).blp == pytest.approx(1.0)
        assert snap.profile(1).blp == pytest.approx(1.0)


class TestBandwidth:
    def test_service_fraction(self, setup):
        profiler, _ = setup
        requests = [req(0) for _ in range(5)]
        for r in requests:
            profiler.on_arrival(r, 0)
        for r in requests:
            profiler.on_cas(r, 50, False)
        # 5 requests x 4 burst cycles over a 100-cycle epoch.
        assert profiler.snapshot(100).profile(0).bandwidth == pytest.approx(0.2)


class TestMigrationExclusion:
    def test_migration_traffic_ignored(self, setup):
        profiler, _ = setup
        r = req(0, migration=True)
        profiler.on_arrival(r, 0)
        profiler.on_cas(r, 50, True)
        snap = profiler.snapshot(100)
        assert snap.profile(0).requests == 0
        assert snap.profile(0).bandwidth == 0.0


class TestEpochBoundary:
    def test_counters_reset(self, setup):
        profiler, retired = setup
        r = req(0)
        profiler.on_arrival(r, 0)
        profiler.on_cas(r, 10, True)
        retired.values[0] = 1000
        profiler.snapshot(100)
        snap = profiler.snapshot(200)
        assert snap.profile(0).requests == 0
        assert snap.profile(0).rbh == 0.0

    def test_outstanding_state_carries_over(self, setup):
        profiler, _ = setup
        r = req(0, bank=0)
        profiler.on_arrival(r, 0)
        profiler.snapshot(100)  # request still outstanding
        profiler.on_cas(r, 150, False)
        # 50 active cycles in the second epoch, one bank.
        assert profiler.snapshot(200).profile(0).blp == pytest.approx(1.0)

    def test_unknown_thread_gets_zero_profile(self, setup):
        profiler, _ = setup
        snap = profiler.snapshot(100)
        ghost = snap.profile(42)
        assert ghost.mpki == 0.0 and ghost.requests == 0


class TestSimProfilerAttribution:
    """Wall-clock profiler callback attribution (SimProfiler.component_of).

    Regression: partial-wrapped callbacks used to report "partial" (the
    wrapper's type) and callable instances landed in an unattributed
    bucket, so profile reports misattributed whole components.
    """

    def _component_of(self):
        from repro.sim.engine import SimProfiler

        return SimProfiler.component_of

    def test_bound_method_reports_owner_class(self):
        component_of = self._component_of()

        class Widget:
            def poke(self, cycle):
                pass

        assert component_of(Widget().poke) == "Widget"

    def test_plain_function_reports_enclosing_scope(self):
        component_of = self._component_of()

        def handler(cycle):
            pass

        assert component_of(handler).startswith(
            "TestSimProfilerAttribution"
        )

    def test_partial_of_function_unwrapped(self):
        import functools

        component_of = self._component_of()

        def handler(tag, cycle):
            pass

        assert component_of(functools.partial(handler, "x")) == component_of(
            handler
        )

    def test_partial_of_bound_method_unwrapped(self):
        import functools

        component_of = self._component_of()

        class Widget:
            def poke(self, tag, cycle):
                pass

        wrapped = functools.partial(Widget().poke, "x")
        assert component_of(wrapped) == "Widget"

    def test_nested_partial_unwrapped(self):
        import functools

        component_of = self._component_of()

        class Widget:
            def poke(self, a, b, cycle):
                pass

        wrapped = functools.partial(functools.partial(Widget().poke, 1), 2)
        assert component_of(wrapped) == "Widget"

    def test_callable_instance_reports_its_class(self):
        component_of = self._component_of()

        class Relay:
            __slots__ = ()

            def __call__(self, cycle):
                pass

        assert component_of(Relay()) == "Relay"
