"""Bank state-machine tests: legal sequences advance horizons correctly,
illegal sequences raise ProtocolError."""

import pytest

from repro.dram.bank import Bank, BankState
from repro.errors import ProtocolError


@pytest.fixture
def bank(timings):
    return Bank(rank_id=0, bank_id=0, timings=timings)


class TestActivate:
    def test_opens_row(self, bank):
        bank.activate(0, 42)
        assert bank.state is BankState.ACTIVE
        assert bank.open_row == 42
        assert bank.is_open(42)
        assert not bank.is_open(43)

    def test_sets_trcd_horizon(self, bank, timings):
        bank.activate(100, 1)
        assert bank.cas_ready_at(False) == 100 + timings.tRCD
        assert bank.cas_ready_at(True) == 100 + timings.tRCD

    def test_sets_tras_horizon(self, bank, timings):
        bank.activate(100, 1)
        assert bank.precharge_ready_at() == 100 + timings.tRAS

    def test_sets_trc_horizon(self, bank, timings):
        bank.activate(100, 1)
        assert bank.activate_ready_at() == 100 + timings.tRC

    def test_rejects_when_open(self, bank):
        bank.activate(0, 1)
        with pytest.raises(ProtocolError):
            bank.activate(1000, 2)

    def test_rejects_before_trc(self, bank, timings):
        bank.activate(0, 1)
        bank.precharge(timings.tRAS)
        # tRP satisfied but tRC not yet.
        early = min(timings.tRAS + timings.tRP, timings.tRC - 1)
        if early < bank.earliest_activate:
            with pytest.raises(ProtocolError):
                bank.activate(early, 2)


class TestReadWrite:
    def test_read_returns_data_end(self, bank, timings):
        bank.activate(0, 7)
        now = timings.tRCD
        assert bank.read(now, 7) == now + timings.CL + timings.tBURST

    def test_write_returns_data_end(self, bank, timings):
        bank.activate(0, 7)
        now = timings.tRCD
        assert bank.write(now, 7) == now + timings.CWL + timings.tBURST

    def test_read_extends_precharge_by_trtp(self, bank, timings):
        bank.activate(0, 7)
        now = timings.tRAS  # past tRCD, at tRAS
        bank.read(now, 7)
        assert bank.precharge_ready_at() >= now + timings.tRTP

    def test_write_extends_precharge_by_twr(self, bank, timings):
        bank.activate(0, 7)
        now = timings.tRAS
        data_end = bank.write(now, 7)
        assert bank.precharge_ready_at() >= data_end + timings.tWR

    def test_read_to_idle_bank_rejected(self, bank):
        with pytest.raises(ProtocolError):
            bank.read(100, 7)

    def test_read_wrong_row_rejected(self, bank, timings):
        bank.activate(0, 7)
        with pytest.raises(ProtocolError):
            bank.read(timings.tRCD, 8)

    def test_read_before_trcd_rejected(self, bank, timings):
        bank.activate(0, 7)
        with pytest.raises(ProtocolError):
            bank.read(timings.tRCD - 1, 7)

    def test_stats_counted(self, bank, timings):
        bank.activate(0, 7)
        bank.read(timings.tRCD, 7)
        bank.read(timings.tRCD + timings.tCCD, 7)
        assert bank.stat_activates == 1
        assert bank.stat_reads == 2


class TestPrecharge:
    def test_closes_row(self, bank, timings):
        bank.activate(0, 7)
        bank.precharge(timings.tRAS)
        assert bank.state is BankState.IDLE
        assert bank.open_row is None

    def test_sets_trp_horizon(self, bank, timings):
        bank.activate(0, 7)
        bank.precharge(timings.tRAS)
        assert bank.activate_ready_at() >= timings.tRAS + timings.tRP

    def test_precharge_idle_rejected(self, bank):
        with pytest.raises(ProtocolError):
            bank.precharge(100)

    def test_precharge_before_tras_rejected(self, bank, timings):
        bank.activate(0, 7)
        with pytest.raises(ProtocolError):
            bank.precharge(timings.tRAS - 1)


class TestBlockUntil:
    def test_pushes_all_horizons(self, bank):
        bank.block_until(500)
        assert bank.activate_ready_at() >= 500
        assert bank.cas_ready_at(False) >= 500
        assert bank.cas_ready_at(True) >= 500
        assert bank.precharge_ready_at() >= 500

    def test_never_moves_horizons_backwards(self, bank, timings):
        bank.activate(0, 1)
        horizon = bank.activate_ready_at()
        bank.block_until(1)
        assert bank.activate_ready_at() == horizon


class TestFullCycle:
    def test_activate_read_precharge_activate(self, bank, timings):
        bank.activate(0, 1)
        bank.read(timings.tRCD, 1)
        t_pre = max(timings.tRAS, timings.tRCD + timings.tRTP)
        bank.precharge(t_pre)
        t_act = max(t_pre + timings.tRP, timings.tRC)
        bank.activate(t_act, 2)
        assert bank.open_row == 2
        assert bank.stat_precharges == 1
