"""Replacement policy unit tests."""

import pytest

from repro.cache.replacement import LRUPolicy, RandomPolicy, make_policy
from repro.errors import ConfigError


class TestLRU:
    def test_victim_is_least_recent(self):
        policy = LRUPolicy(1, 4)
        for way in range(4):
            policy.on_touch(0, way)
        assert policy.victim(0) == 0
        policy.on_touch(0, 0)
        assert policy.victim(0) == 1

    def test_touch_moves_to_back(self):
        policy = LRUPolicy(1, 2)
        policy.on_touch(0, 0)
        policy.on_touch(0, 1)
        policy.on_touch(0, 0)
        assert policy.victim(0) == 1

    def test_sets_independent(self):
        policy = LRUPolicy(2, 2)
        policy.on_touch(0, 0)
        policy.on_touch(1, 1)
        assert policy.victim(0) == 0
        assert policy.victim(1) == 1

    def test_untouched_set_defaults_to_way_zero(self):
        assert LRUPolicy(1, 4).victim(0) == 0


class TestRandom:
    def test_victims_in_range(self):
        policy = RandomPolicy(1, 4, seed=3)
        for _ in range(50):
            assert 0 <= policy.victim(0) < 4

    def test_deterministic_given_seed(self):
        a = [RandomPolicy(1, 8, seed=7).victim(0) for _ in range(5)]
        b = [RandomPolicy(1, 8, seed=7).victim(0) for _ in range(5)]
        # Each list built from a fresh policy: identical streams.
        assert a == b


class TestRegistry:
    def test_make_lru(self):
        assert isinstance(make_policy("lru", 4, 2), LRUPolicy)

    def test_make_random_with_seed(self):
        assert isinstance(make_policy("random", 4, 2, seed=1), RandomPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("plru", 4, 2)
