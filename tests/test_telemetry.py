"""Telemetry subsystem + regression tests for the accounting/cadence fixes.

Three historical bugs are pinned here, each asserted through the telemetry
layer that would have caught them:

1. migration page-copy traffic used to pollute per-thread ``ThreadResult``
   reads/writes/latency;
2. the scheduler quantum and the policy epoch were collapsed to one
   ``min()`` period, so DBP-TCM repartitioned at TCM's cadence;
3. read latency was measured at CAS issue, understating it by CL + tBURST.
"""

from __future__ import annotations

import json

import pytest

from repro.baselines import SharedPolicy
from repro.errors import ConfigError
from repro.baselines.base import PartitionPolicy
from repro.config import ControllerConfig
from repro.core.dbp import DBPConfig, DynamicBankPartitioning
from repro.dram.channel import Channel
from repro.dram.timing import DDR3_1066
from repro.mapping import MemLocation
from repro.memctrl.controller import ChannelController
from repro.memctrl.request import Request
from repro.memctrl.schedulers import make_scheduler
from repro.osmm import MigrationPlan
from repro.sim.engine import Engine
from repro.sim.runner import Runner
from repro.sim.system import System
from repro.telemetry import TelemetryConfig, TelemetryRecorder
from repro.telemetry.report import render_decisions, render_timeline
from repro.workloads import AppProfile, generate_trace

HEAVY = AppProfile("heavy", 25.0, 0.7, 4, 0.3, 1)
LIGHT = AppProfile("light", 0.4, 0.6, 2, 0.2, 1)


def traces(seed=1, target_insts=500_000):
    return [
        generate_trace(HEAVY, seed=seed, target_insts=target_insts),
        generate_trace(LIGHT, seed=seed, target_insts=target_insts),
    ]


def dbp_tcm_system(
    small_config,
    horizon,
    epoch_cycles=20_000,
    quantum_cycles=10_000,
    recorder=None,
    seed=1,
):
    config = small_config.with_scheduler("tcm", quantum_cycles=quantum_cycles)
    policy = DynamicBankPartitioning(DBPConfig(epoch_cycles=epoch_cycles))
    return System(
        config,
        traces(seed),
        horizon=horizon,
        policy=policy,
        telemetry=recorder,
    )


# ---------------------------------------------------------------------------
# Fix 2: independent scheduler-quantum / policy-epoch cadences.
# ---------------------------------------------------------------------------
class TestEpochCadence:
    def test_policy_fires_at_its_own_epoch_not_the_quantum(self, small_config):
        # 65k horizon, 10k TCM quantum, 20k DBP epoch: the old min()-shared
        # period made DBP repartition 6 times; it must be exactly 3.
        recorder = TelemetryRecorder()
        system = dbp_tcm_system(small_config, horizon=65_000, recorder=recorder)
        system.run()
        assert system.policy.stat_repartitions == 65_000 // 20_000 == 3
        assert system.scheduler.stat_quanta == 65_000 // 10_000 == 6
        summary = recorder.summary()
        assert summary["policy_epochs"] == 3
        assert summary["quanta"] == 6
        assert summary["repartitions"] == 3
        # Boundaries are the union of both cadences (20k/40k/60k coincide).
        assert summary["epochs"] == 6
        assert [r["cycle"] for r in recorder.records] == [
            10_000, 20_000, 30_000, 40_000, 50_000, 60_000
        ]
        for record in recorder.records:
            assert record["fired_quantum"] == (record["cycle"] % 10_000 == 0)
            assert record["fired_policy"] == (record["cycle"] % 20_000 == 0)
            if record["fired_policy"]:
                assert record["policy"]["allocation"]
                assert record["policy"]["demands"]
            else:
                assert "policy" not in record
            if record["fired_quantum"]:
                assert record["scheduler"]["name"] == "tcm"
                assert "latency_cluster" in record["scheduler"]

    def test_quantum_only_system_has_no_policy_epochs(self, small_config):
        recorder = TelemetryRecorder()
        config = small_config.with_scheduler("tcm", quantum_cycles=10_000)
        system = System(
            config,
            traces(),
            horizon=35_000,
            policy=SharedPolicy(),
            telemetry=recorder,
        )
        system.run()
        summary = recorder.summary()
        assert summary["quanta"] == 3
        assert summary["policy_epochs"] == 0


# ---------------------------------------------------------------------------
# Fix 1: migration traffic must not pollute per-thread accounting.
# ---------------------------------------------------------------------------
class _CopyStorm(PartitionPolicy):
    """Injects pure page-copy traffic every epoch without remapping pages.

    ``moves`` stays empty so no cache lines are invalidated: only the
    ``is_migration`` requests themselves distinguish this run from a
    SharedPolicy run.
    """

    name = "copystorm"
    epoch_cycles = 5_000

    def __init__(self, pairs_per_epoch=24):
        self.pairs_per_epoch = pairs_per_epoch

    def initialize(self, context):
        pass

    def on_epoch(self, snapshot, context):
        amap = context.address_map
        lines = []
        for index in range(self.pairs_per_epoch):
            src = amap.line_in_frame(index, 0)
            dst = amap.line_in_frame(index, 1)
            lines.append((src, dst))
        context.inject_copy_traffic(
            MigrationPlan(thread_id=0, moved_pages=0, copy_lines=lines)
        )


class TestMigrationAccounting:
    def test_migration_cas_excluded_from_thread_counters(self):
        # One demand read plus migration copy traffic for the same thread
        # on an idle controller: only the demand read may reach the
        # per-thread counters, while every burst is charged to the bus.
        engine = Engine(100_000)
        channel = Channel(0, 1, 4, DDR3_1066, clock_ratio=1, refresh_enabled=False)
        config = ControllerConfig(
            read_queue_depth=32,
            write_queue_depth=32,
            write_high_watermark=8,
            write_low_watermark=2,
            refresh_enabled=False,
        )
        scheduler = make_scheduler("frfcfs", num_threads=1)
        controller = ChannelController(channel, config, scheduler, engine)

        def req(row, is_write=False, is_migration=False):
            return Request(
                thread_id=0,
                is_write=is_write,
                line_addr=row,
                loc=MemLocation(channel=0, rank=0, bank=0, row=row, col=0),
                arrival=0,
                is_migration=is_migration,
            )

        controller.enqueue(req(row=1), 0)
        controller.enqueue(req(row=2, is_migration=True), 0)
        controller.enqueue(req(row=3, is_write=True, is_migration=True), 0)
        engine.run()
        stats = controller.stats
        assert stats.migration_reads == 1
        assert stats.migration_writes == 1
        assert stats.reads_served == 1
        assert stats.writes_served == 0
        assert stats.per_thread_reads == {0: 1}
        assert stats.per_thread_writes == {}
        # Latency accumulated for the one demand read only.
        t = DDR3_1066
        assert stats.per_thread_latency_sum[0] == stats.read_latency_sum
        assert stats.read_latency_sum < 2 * (t.tRCD + t.tRC + t.CL + t.tBURST)
        # ... but all three CASes occupied the data bus.
        assert stats.data_bus_busy == 3 * t.tBURST

    def test_copy_storm_never_inflates_thread_counts(self, small_config):
        # Count demand arrivals per thread with an independent listener:
        # served demand can never exceed demand arrivals. The old
        # accounting credited every copy CAS to the migrated thread, so
        # its served counts overshot its arrivals by the copied volume.
        class _DemandArrivals:
            def __init__(self):
                self.reads = {}
                self.writes = {}

            def on_arrival(self, request, now):
                if request.is_migration:
                    return
                counts = self.writes if request.is_write else self.reads
                counts[request.thread_id] = (
                    counts.get(request.thread_id, 0) + 1
                )

            def on_cas(self, request, now, row_hit, data_end=None):
                pass

        system = System(
            small_config,
            traces(target_insts=60_000),
            horizon=120_000,
            policy=_CopyStorm(),
        )
        arrivals = _DemandArrivals()
        for controller in system.controllers:
            controller.add_listener(arrivals)
        result = system.run()
        copied = sum(
            c.stats.migration_reads + c.stats.migration_writes
            for c in system.controllers
        )
        assert copied > 100, "the storm must actually inject copy traffic"
        for thread_id, thread in result.threads.items():
            assert thread.reads <= arrivals.reads.get(thread_id, 0)
            assert thread.writes <= arrivals.writes.get(thread_id, 0)


# ---------------------------------------------------------------------------
# Fix 3: read latency measured at data return, not CAS issue.
# ---------------------------------------------------------------------------
class TestReadLatency:
    def _idle_single_read(self):
        engine = Engine(100_000)
        channel = Channel(0, 1, 4, DDR3_1066, clock_ratio=1, refresh_enabled=False)
        config = ControllerConfig(
            read_queue_depth=32,
            write_queue_depth=32,
            write_high_watermark=8,
            write_low_watermark=2,
            refresh_enabled=False,
        )
        scheduler = make_scheduler("frfcfs", num_threads=1)
        controller = ChannelController(channel, config, scheduler, engine)
        request = Request(
            thread_id=0,
            is_write=False,
            line_addr=0,
            loc=MemLocation(channel=0, rank=0, bank=0, row=3, col=0),
            arrival=0,
        )
        controller.enqueue(request, 0)
        engine.run()
        return controller

    def test_idle_read_latency_includes_cl_and_burst(self):
        controller = self._idle_single_read()
        t = DDR3_1066
        assert controller.stats.reads_served == 1
        # Closed bank: ACT at 1 command-bus slot offsets aside, the analytic
        # latency is tRCD + CL + tBURST; the CL + tBURST floor is what the
        # old CAS-issue measurement violated.
        assert controller.stats.read_latency_sum >= t.CL + t.tBURST
        assert controller.stats.read_latency_sum >= t.tRCD + t.CL + t.tBURST
        assert controller.stats.per_thread_latency_sum[0] == (
            controller.stats.read_latency_sum
        )

    def test_system_mean_read_latency_respects_floor(self, small_config):
        system = System(
            small_config,
            traces(target_insts=60_000),
            horizon=30_000,
            policy=SharedPolicy(),
        )
        result = system.run()
        t = small_config.timings
        for thread in result.threads.values():
            if thread.reads:
                assert thread.mean_read_latency >= t.CL + t.tBURST


# ---------------------------------------------------------------------------
# Telemetry mechanics: zero-cost when off, bounded, deterministic.
# ---------------------------------------------------------------------------
class TestRecorder:
    def test_disabled_registers_no_listeners(self, small_config):
        system = dbp_tcm_system(small_config, horizon=30_000)
        assert all(len(c._listeners) == 1 for c in system.controllers)
        assert system.telemetry is None

    def test_enabled_registers_one_probe_per_controller(self, small_config):
        recorder = TelemetryRecorder()
        system = dbp_tcm_system(small_config, horizon=30_000, recorder=recorder)
        assert all(len(c._listeners) == 2 for c in system.controllers)
        assert len(recorder.probes) == len(system.controllers)

    def test_ring_buffer_caps_memory(self, small_config):
        recorder = TelemetryRecorder(TelemetryConfig(capacity=2))
        system = dbp_tcm_system(small_config, horizon=65_000, recorder=recorder)
        system.run()
        assert len(recorder.records) == 2
        assert recorder.dropped_epochs == recorder.epochs - 2
        assert [r["cycle"] for r in recorder.records] == [50_000, 60_000]

    def test_jsonl_is_deterministic_across_identical_runs(self, small_config):
        outputs = []
        for _ in range(2):
            recorder = TelemetryRecorder()
            system = dbp_tcm_system(
                small_config, horizon=45_000, recorder=recorder
            )
            system.run()
            outputs.append(recorder.to_jsonl())
        assert outputs[0] == outputs[1]
        lines = outputs[0].splitlines()
        assert lines, "a 45k run must record epochs"
        for line in lines:
            json.loads(line)  # every record is valid standalone JSON

    def test_latency_histogram_counts_all_reads(self, small_config):
        recorder = TelemetryRecorder()
        system = dbp_tcm_system(small_config, horizon=25_000, recorder=recorder)
        result = system.run()
        hist_reads = sum(
            sum(ctrl["latency_hist"])
            for record in recorder.records
            for ctrl in record["controllers"]
        )
        # Epoch records only cover completed epochs; served reads since the
        # last boundary stay in the live probes, so recorded <= total.
        total_reads = sum(t.reads for t in result.threads.values())
        assert 0 < hist_reads <= total_reads

    def test_renderers_produce_tables(self, small_config):
        recorder = TelemetryRecorder()
        system = dbp_tcm_system(small_config, horizon=45_000, recorder=recorder)
        system.run()
        timeline = render_timeline(recorder)
        assert "cycle" in timeline and "repart" in timeline
        assert str(20_000) in timeline
        decisions = render_decisions(recorder)
        assert "dbp" in decisions
        assert "->" in decisions


# ---------------------------------------------------------------------------
# Runner / store integration.
# ---------------------------------------------------------------------------
class TestRunnerIntegration:
    def test_runner_attaches_summary_and_recorder(self, small_config):
        runner = Runner(
            config=small_config,
            horizon=30_000,
            target_insts=200_000,
            telemetry=TelemetryConfig(),
        )
        result = runner.run_apps(["lbm", "gcc"], "dbp-tcm")
        assert result.telemetry is not None
        assert result.telemetry["epochs"] > 0
        assert runner.last_telemetry is not None
        assert runner.last_telemetry.summary() == result.telemetry

    def test_runner_without_telemetry_records_nothing(self, fast_runner):
        result = fast_runner.run_apps(["lbm", "gcc"], "ebp")
        assert result.telemetry is None
        assert fast_runner.last_telemetry is None

    def test_summary_round_trips_through_store(self, small_config, tmp_path):
        from repro.campaign.store import ResultStore

        store = ResultStore(tmp_path / "store")
        runner = Runner(
            config=small_config,
            horizon=30_000,
            target_insts=200_000,
            store=store,
            telemetry=TelemetryConfig(),
        )
        first = runner.run_apps(["lbm", "gcc"], "dbp")
        assert first.telemetry is not None
        # A fresh Runner on the same store must be served from disk with
        # the summary intact (and no live recorder, since nothing ran).
        resumed = Runner(
            config=small_config,
            horizon=30_000,
            target_insts=200_000,
            store=store,
            telemetry=TelemetryConfig(),
        )
        second = resumed.run_apps(["lbm", "gcc"], "dbp")
        assert second.telemetry == first.telemetry
        assert resumed.last_telemetry is None
        assert store.stats.hits == 1


# ---------------------------------------------------------------------------
# Per-policy epoch offsets: staggered quantum vs. policy-epoch boundaries.
# ---------------------------------------------------------------------------
class TestEpochOffsets:
    def _offset_system(self, small_config, recorder=None, **kwargs):
        config = small_config.with_scheduler("tcm", quantum_cycles=10_000)
        policy = DynamicBankPartitioning(DBPConfig(epoch_cycles=20_000))
        return System(
            config,
            traces(),
            horizon=66_000,
            policy=policy,
            telemetry=recorder,
            **kwargs,
        )

    def test_staggered_cadences_fire_at_their_own_periods(self, small_config):
        # Quantum every 10k from 10k; policy every 20k offset by 5k, so it
        # fires at 25k/45k/65k — never on a quantum boundary.
        recorder = TelemetryRecorder()
        system = self._offset_system(
            small_config, recorder, policy_epoch_offset=5_000
        )
        system.run()
        assert system.scheduler.stat_quanta == 6
        assert system.policy.stat_repartitions == 3
        cycles = [r["cycle"] for r in recorder.records]
        assert cycles == [
            10_000, 20_000, 25_000, 30_000, 40_000, 45_000,
            50_000, 60_000, 65_000,
        ]
        policy_cycles = [
            r["cycle"] for r in recorder.records if r["fired_policy"]
        ]
        assert policy_cycles == [25_000, 45_000, 65_000]
        # Staggered boundaries never coincide: each record fired exactly
        # one cadence.
        assert all(
            r["fired_quantum"] != r["fired_policy"] for r in recorder.records
        )

    def test_quantum_offset_shifts_scheduler_only(self, small_config):
        recorder = TelemetryRecorder()
        system = self._offset_system(
            small_config, recorder, quantum_offset=3_000
        )
        system.run()
        quantum_cycles = [
            r["cycle"] for r in recorder.records if r["fired_quantum"]
        ]
        assert quantum_cycles == [
            13_000, 23_000, 33_000, 43_000, 53_000, 63_000
        ]
        policy_cycles = [
            r["cycle"] for r in recorder.records if r["fired_policy"]
        ]
        assert policy_cycles == [20_000, 40_000, 60_000]

    def test_policy_class_attribute_supplies_default_offset(
        self, small_config
    ):
        class OffsetDBP(DynamicBankPartitioning):
            epoch_offset = 5_000

        config = small_config.with_scheduler("tcm", quantum_cycles=10_000)
        system = System(
            config,
            traces(),
            horizon=30_000,
            policy=OffsetDBP(DBPConfig(epoch_cycles=20_000)),
        )
        system.run()
        # First epoch at 25k (20k + 5k class-attribute offset).
        assert system.policy.stat_repartitions == 1

    def test_offset_outside_period_rejected(self, small_config):
        with pytest.raises(ConfigError, match="policy epoch offset"):
            self._offset_system(small_config, policy_epoch_offset=20_000)
        with pytest.raises(ConfigError, match="quantum offset"):
            self._offset_system(small_config, quantum_offset=-1)

    def test_offset_without_period_rejected(self, small_config):
        config = small_config.with_scheduler("tcm", quantum_cycles=10_000)
        with pytest.raises(ConfigError, match="has no period"):
            System(
                config,
                traces(),
                horizon=30_000,
                policy=SharedPolicy(),
                policy_epoch_offset=1_000,
            )


# ---------------------------------------------------------------------------
# Scheduler telemetry_state: PAR-BS and ATLAS internals in the record.
# ---------------------------------------------------------------------------
class TestSchedulerTelemetryState:
    def test_parbs_state_surfaces_on_policy_epochs(self, small_config):
        # PAR-BS has no quantum: the policy epoch is the only boundary its
        # batch state can surface on.
        recorder = TelemetryRecorder()
        config = small_config.with_scheduler("parbs")
        system = System(
            config,
            traces(),
            horizon=45_000,
            policy=DynamicBankPartitioning(DBPConfig(epoch_cycles=20_000)),
            telemetry=recorder,
        )
        system.run()
        assert all(r["fired_policy"] for r in recorder.records)
        docs = [r["scheduler"] for r in recorder.records]
        assert docs
        doc = docs[-1]
        assert doc["name"] == "parbs"
        assert doc["batches"] >= 1
        assert doc["marked"] >= 0
        # Rank covers the threads that had queued requests at batch time.
        assert doc["rank"]
        assert set(doc["rank"]) <= {0, 1}

    def test_atlas_state_surfaces_on_quanta(self, small_config):
        recorder = TelemetryRecorder()
        config = small_config.with_scheduler("atlas", quantum_cycles=10_000)
        system = System(
            config,
            traces(),
            horizon=35_000,
            policy=SharedPolicy(),
            telemetry=recorder,
        )
        system.run()
        docs = [
            r["scheduler"] for r in recorder.records if r["fired_quantum"]
        ]
        assert docs
        doc = docs[-1]
        assert doc["name"] == "atlas"
        assert doc["quanta"] == len(docs)
        assert sorted(doc["attained"]) == ["0", "1"]
        assert sorted(doc["rank"]) == [0, 1]

    def test_decisions_table_renders_scheduler_column(self, small_config):
        recorder = TelemetryRecorder()
        system = dbp_tcm_system(small_config, horizon=45_000, recorder=recorder)
        system.run()
        table = render_decisions(recorder)
        header = table.splitlines()[0]
        assert "scheduler" in header
        assert "tcm L=[" in table
