"""Color-aware allocator tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DRAMOrganization
from repro.errors import AllocationError
from repro.mapping import AddressMap
from repro.osmm import ColorAwareAllocator


def make_allocator(rows=64):
    org = DRAMOrganization(
        channels=2,
        ranks_per_channel=1,
        banks_per_rank=4,
        rows_per_bank=rows,
        row_size_bytes=8192,
    )
    amap = AddressMap(org, page_size=4096)
    return ColorAwareAllocator(amap), amap


class TestConstraints:
    def test_unconstrained_thread_uses_everything(self):
        allocator, amap = make_allocator()
        assert allocator.thread_colors(0) == frozenset(range(4))
        assert allocator.thread_channels(0) == frozenset(range(2))

    def test_color_constraint_respected(self):
        allocator, amap = make_allocator()
        allocator.set_thread_colors(0, {1, 3})
        for _ in range(40):
            frame = allocator.allocate(0)
            assert amap.frame_bank_color(frame) in {1, 3}

    def test_channel_constraint_respected(self):
        allocator, amap = make_allocator()
        allocator.set_thread_channels(0, {1})
        for _ in range(40):
            assert amap.frame_channel(allocator.allocate(0)) == 1

    def test_combined_constraints(self):
        allocator, amap = make_allocator()
        allocator.set_thread_colors(0, {2})
        allocator.set_thread_channels(0, {0})
        frame = allocator.allocate(0)
        assert amap.frame_bank_color(frame) == 2
        assert amap.frame_channel(frame) == 0

    def test_empty_color_set_rejected(self):
        allocator, _ = make_allocator()
        with pytest.raises(AllocationError):
            allocator.set_thread_colors(0, set())

    def test_unknown_color_rejected(self):
        allocator, _ = make_allocator()
        with pytest.raises(AllocationError):
            allocator.set_thread_colors(0, {99})

    def test_unknown_channel_rejected(self):
        allocator, _ = make_allocator()
        with pytest.raises(AllocationError):
            allocator.set_thread_channels(0, {5})


class TestSpreading:
    def test_round_robin_over_channels(self):
        allocator, amap = make_allocator()
        channels = [amap.frame_channel(allocator.allocate(0)) for _ in range(8)]
        assert channels.count(0) == 4
        assert channels.count(1) == 4

    def test_round_robin_over_colors(self):
        allocator, amap = make_allocator()
        allocator.set_thread_colors(0, {0, 1})
        colors = [
            amap.frame_bank_color(allocator.allocate(0)) for _ in range(16)
        ]
        assert colors.count(0) == 8
        assert colors.count(1) == 8

    def test_no_duplicate_frames(self):
        allocator, _ = make_allocator()
        frames = [allocator.allocate(0) for _ in range(200)]
        assert len(set(frames)) == len(frames)

    def test_threads_never_share_frames(self):
        allocator, _ = make_allocator()
        allocator.set_thread_colors(0, {0, 1})
        allocator.set_thread_colors(1, {2, 3})
        a = {allocator.allocate(0) for _ in range(50)}
        b = {allocator.allocate(1) for _ in range(50)}
        assert not (a & b)


class TestFreeAndExhaustion:
    def test_free_and_reuse(self):
        allocator, amap = make_allocator()
        frame = allocator.allocate(0)
        allocator.free(frame)
        channel, color, _slot = amap.frame_fields(frame)
        assert allocator.allocate_in(channel, color) == frame

    def test_double_free_rejected(self):
        allocator, _ = make_allocator()
        frame = allocator.allocate(0)
        allocator.free(frame)
        # Freed slot goes back on the free list; freeing again is caught
        # only for never-allocated slots, so free a fresh frame twice.
        never = allocator.address_map.compose_frame(1, 3, 50)
        with pytest.raises(AllocationError):
            allocator.free(never)

    def test_exhaustion_raises(self):
        allocator, amap = make_allocator(rows=2)
        allocator.set_thread_colors(0, {0})
        allocator.set_thread_channels(0, {0})
        for _ in range(amap.frames_per_bin):
            allocator.allocate(0)
        with pytest.raises(AllocationError):
            allocator.allocate(0)

    def test_falls_over_to_other_permitted_bins(self):
        allocator, amap = make_allocator(rows=2)
        allocator.set_thread_colors(0, {0, 1})
        allocator.set_thread_channels(0, {0})
        total = 2 * amap.frames_per_bin
        frames = [allocator.allocate(0) for _ in range(total)]
        assert len(set(frames)) == total

    def test_available_in_accounting(self):
        allocator, amap = make_allocator()
        before = allocator.available_in(0, 0)
        allocator.allocate_in(0, 0)
        assert allocator.available_in(0, 0) == before - 1

    def test_stats(self):
        allocator, _ = make_allocator()
        frame = allocator.allocate(0)
        allocator.free(frame)
        assert allocator.stat_allocations == 1
        assert allocator.stat_frees == 1


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.integers(0, 3), min_size=1), st.integers(1, 40))
    def test_constraint_always_respected(self, colors, count):
        allocator, amap = make_allocator()
        allocator.set_thread_colors(7, colors)
        for _ in range(count):
            assert amap.frame_bank_color(allocator.allocate(7)) in colors
