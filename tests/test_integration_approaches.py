"""Approach registry tests (the partitioning x scheduling combinations)."""

import pytest

from repro.baselines import (
    EqualBankPartitioning,
    MemoryChannelPartitioning,
    SharedPolicy,
)
from repro.core import APPROACHES, get_approach
from repro.core.dbp import DynamicBankPartitioning
from repro.errors import ConfigError


class TestRegistry:
    def test_paper_approaches_present(self):
        expected = {
            "shared-fcfs",
            "shared-frfcfs",
            "parbs",
            "atlas",
            "bliss",
            "tcm",
            "ebp",
            "dbp",
            "mcp",
            "ebp-tcm",
            "dbp-tcm",
        }
        assert expected <= set(APPROACHES)

    def test_lookup(self):
        approach = get_approach("dbp-tcm")
        assert approach.policy == "dbp"
        assert approach.scheduler == "tcm"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            get_approach("dbp-parbs")

    def test_descriptions_nonempty(self):
        for approach in APPROACHES.values():
            assert approach.description


class TestPolicyConstruction:
    @pytest.mark.parametrize(
        "name,policy_type",
        [
            ("shared-frfcfs", SharedPolicy),
            ("ebp", EqualBankPartitioning),
            ("dbp", DynamicBankPartitioning),
            ("dbp-tcm", DynamicBankPartitioning),
            ("mcp", MemoryChannelPartitioning),
        ],
    )
    def test_make_policy_types(self, name, policy_type):
        assert isinstance(get_approach(name).make_policy(), policy_type)

    def test_policies_are_fresh_instances(self):
        approach = get_approach("dbp")
        a = approach.make_policy()
        b = approach.make_policy()
        assert a is not b  # no shared epoch state between runs

    def test_scheduler_names_resolve(self):
        from repro.memctrl.schedulers import make_scheduler

        for approach in APPROACHES.values():
            scheduler = make_scheduler(
                approach.scheduler,
                num_threads=4,
                **approach.scheduler_params,
            )
            assert scheduler.num_threads == 4
