"""DDR3 timing preset tests."""

import dataclasses

import pytest

from repro.dram.timing import (
    DDR3_1066,
    DDR3_1333,
    DDR3_1600,
    DRAMTimings,
    PRESETS,
    preset,
    scaled_timings,
)
from repro.errors import ConfigError


class TestPresets:
    @pytest.mark.parametrize("timings", [DDR3_1066, DDR3_1333, DDR3_1600])
    def test_internal_consistency(self, timings):
        assert timings.tRC >= timings.tRAS + timings.tRP
        assert timings.tFAW >= timings.tRRD
        assert timings.read_latency == timings.CL + timings.tBURST
        assert timings.write_latency == timings.CWL + timings.tBURST

    def test_faster_grades_have_more_cycles_of_cas(self):
        # Absolute CAS time shrinks, but cycle counts grow with clock rate.
        assert DDR3_1066.CL < DDR3_1333.CL < DDR3_1600.CL

    def test_lookup_by_name(self):
        assert preset("DDR3-1600") is DDR3_1600

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConfigError):
            preset("DDR4-2400")

    def test_registry_complete(self):
        assert set(PRESETS) == {"DDR3-1066", "DDR3-1333", "DDR3-1600"}


class TestScaling:
    def test_identity_at_ratio_one(self):
        assert scaled_timings(DDR3_1066, 1) is DDR3_1066

    def test_all_timing_fields_multiplied(self):
        scaled = scaled_timings(DDR3_1066, 4)
        for field in dataclasses.fields(DDR3_1066):
            if field.name in ("name", "tCK_ps"):
                continue
            assert getattr(scaled, field.name) == 4 * getattr(
                DDR3_1066, field.name
            )

    def test_name_records_ratio(self):
        assert "x4" in scaled_timings(DDR3_1066, 4).name

    def test_tck_preserved(self):
        assert scaled_timings(DDR3_1066, 4).tCK_ps == DDR3_1066.tCK_ps

    def test_bad_ratio_rejected(self):
        with pytest.raises(ConfigError):
            scaled_timings(DDR3_1066, 0)


class TestValidation:
    def _args(self, **overrides):
        base = dict(
            name="test",
            tCK_ps=1000,
            CL=5,
            CWL=4,
            tBURST=4,
            tRCD=5,
            tRP=5,
            tRAS=15,
            tRC=20,
            tRRD=3,
            tFAW=12,
            tCCD=4,
            tRTP=3,
            tWR=6,
            tWTR=3,
            tRTW=4,
            tRTRS=2,
            tREFI=3000,
            tRFC=60,
        )
        base.update(overrides)
        return base

    def test_valid_construction(self):
        DRAMTimings(**self._args())

    def test_trc_must_cover_tras_plus_trp(self):
        with pytest.raises(ConfigError):
            DRAMTimings(**self._args(tRC=10))

    def test_tfaw_must_cover_trrd(self):
        with pytest.raises(ConfigError):
            DRAMTimings(**self._args(tFAW=2))

    def test_nonpositive_field_rejected(self):
        with pytest.raises(ConfigError):
            DRAMTimings(**self._args(CL=0))

    def test_non_integer_field_rejected(self):
        with pytest.raises(ConfigError):
            DRAMTimings(**self._args(CL=5.5))
