"""Metrics registry units, Prometheus rendering, and simulator wiring."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_text,
)
from repro.campaign.store import ResultStore


class TestPrimitives:
    def test_counter_accumulates_per_label_set(self):
        counter = Counter("repro_test_total", "help")
        counter.inc(thread="0")
        counter.inc(2, thread="0")
        counter.inc(thread="1")
        assert counter.value(thread="0") == 3
        assert counter.value(thread="1") == 1
        assert counter.value(thread="9") == 0

    def test_counter_rejects_negative_increment(self):
        counter = Counter("repro_test_total", "")
        with pytest.raises(ConfigError):
            counter.inc(-1)

    def test_gauge_set_overwrites(self):
        gauge = Gauge("repro_depth", "")
        gauge.set(4, queue="read")
        gauge.set(7, queue="read")
        assert gauge.value(queue="read") == 7

    def test_histogram_buckets_are_cumulative(self):
        hist = Histogram("repro_lat", "", buckets=(10.0, 100.0))
        for value in (5, 50, 500):
            hist.observe(value)
        (sample,) = hist._sample_docs()
        assert sample["buckets"] == [[10.0, 1], [100.0, 2]]
        assert sample["count"] == 3
        assert sample["sum"] == 555

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ConfigError):
            Histogram("repro_lat", "", buckets=(100.0, 10.0))

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ConfigError):
            Counter("bad name!", "")


class TestRegistry:
    def test_same_name_returns_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", "h")
        b = registry.counter("repro_x_total")
        assert a is b

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ConfigError):
            registry.gauge("repro_x_total")

    def test_snapshot_is_deterministic_and_json_safe(self):
        def build():
            registry = MetricsRegistry()
            registry.gauge("repro_b").set(2, zone="z")
            registry.counter("repro_a_total").inc(5, thread="1")
            registry.counter("repro_a_total").inc(1, thread="0")
            return registry.snapshot()

        first, second = build(), build()
        assert first == second
        assert json.loads(json.dumps(first)) == first
        names = [m["name"] for m in first["metrics"]]
        assert names == sorted(names)


class TestPrometheusText:
    def test_renders_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("repro_reqs_total", "requests").inc(3, op="read")
        registry.gauge("repro_depth", "queue depth").set(4)
        registry.histogram("repro_lat", "latency", buckets=(10.0,)).observe(7)
        text = prometheus_text(registry.snapshot())
        assert "# HELP repro_reqs_total requests" in text
        assert "# TYPE repro_reqs_total counter" in text
        assert 'repro_reqs_total{op="read"} 3' in text
        assert "repro_depth 4" in text
        assert 'repro_lat_bucket{le="10"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_sum 7" in text
        assert "repro_lat_count 1" in text
        assert text.endswith("\n")

    def test_renders_from_stored_snapshot_dict(self):
        # Round-trip through JSON: the renderer must not need live objects.
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc(2)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert "repro_x_total 2" in prometheus_text(snapshot)

    def test_rejects_non_snapshot_input(self):
        with pytest.raises(ConfigError):
            prometheus_text({"nope": 1})

    def test_label_values_escape_special_characters(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_paths_total", "by path")
        counter.inc(1, path='C:\\traces\\"m4".trc')
        counter.inc(2, path="line1\nline2")
        text = prometheus_text(registry.snapshot())
        assert (
            'repro_paths_total{path="C:\\\\traces\\\\\\"m4\\".trc"} 1'
            in text
        )
        assert 'repro_paths_total{path="line1\\nline2"} 2' in text
        # No raw newline may survive inside a sample line.
        for line in text.splitlines():
            assert line.count('"') % 2 == 0 or "\\" in line

    def test_escaped_labels_round_trip_through_parser(self):
        """Unescaping the rendered text recovers the original values."""
        originals = [
            'back\\slash', 'quo"te', 'new\nline', '\\n literal', 'plain',
        ]
        registry = MetricsRegistry()
        counter = registry.counter("repro_rt_total")
        for i, value in enumerate(originals):
            counter.inc(i + 1, label=value)
        text = prometheus_text(registry.snapshot())

        def unescape(s: str) -> str:
            out, i = [], 0
            while i < len(s):
                if s[i] == "\\" and i + 1 < len(s):
                    nxt = s[i + 1]
                    if nxt == "\\":
                        out.append("\\")
                    elif nxt == '"':
                        out.append('"')
                    elif nxt == "n":
                        out.append("\n")
                    else:
                        out.append(s[i:i + 2])
                    i += 2
                else:
                    out.append(s[i])
                    i += 1
            return "".join(out)

        recovered = {}
        for line in text.splitlines():
            if line.startswith("repro_rt_total{"):
                body, value = line.rsplit(" ", 1)
                raw = body[len('repro_rt_total{label="'):-len('"}')]
                recovered[unescape(raw)] = int(value)
        assert recovered == {
            value: i + 1 for i, value in enumerate(originals)
        }

    def test_help_text_escapes_newlines_and_backslashes(self):
        registry = MetricsRegistry()
        registry.counter("repro_h_total", "first\nsecond \\ slash").inc(1)
        text = prometheus_text(registry.snapshot())
        assert "# HELP repro_h_total first\\nsecond \\\\ slash" in text


class TestSimulatorWiring:
    def test_system_registry_covers_all_components(self, small_config):
        from repro.core.dbp import DBPConfig, DynamicBankPartitioning
        from repro.sim.system import System
        from repro.workloads import AppProfile, generate_trace

        profile = AppProfile("heavy", 25.0, 0.7, 4, 0.3, 1)
        config = small_config.with_scheduler("tcm", quantum_cycles=10_000)
        system = System(
            config,
            [generate_trace(profile, seed=s, target_insts=200_000)
             for s in (1, 2)],
            horizon=40_000,
            policy=DynamicBankPartitioning(DBPConfig(epoch_cycles=20_000)),
        )
        system.run()
        snapshot = system.metrics_registry().snapshot()
        names = {m["name"] for m in snapshot["metrics"]}
        assert "repro_sim_cycles" in names
        assert "repro_cpu_retired_insts_total" in names
        assert "repro_dram_commands_total" in names
        assert "repro_ctrl_requests_served_total" in names
        assert "repro_sched_quanta_total" in names
        assert "repro_osmm_frame_allocations_total" in names
        assert "repro_policy_repartitions_total" in names

    def test_runner_attaches_snapshot_and_store_round_trips_it(
        self, fast_runner, tmp_path
    ):
        result = fast_runner.run_apps(["lbm", "gcc"], "dbp-tcm")
        assert result.metrics_snapshot is not None
        assert result.metrics_snapshot["metrics"]
        text = prometheus_text(result.metrics_snapshot)
        assert "repro_ctrl_requests_served_total" in text

        store = ResultStore(tmp_path / "store")
        key = "cd" + "0" * 62
        store.put(key, result, wall_clock=1.0)
        restored, _ = store.get(key)
        assert restored.metrics_snapshot == result.metrics_snapshot
