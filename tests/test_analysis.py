"""Trace analysis tests."""

import pytest

from repro.cpu.trace import Trace, TraceRecord
from repro.workloads import analyze_trace, generate_trace, get_profile


def make_trace(records):
    return Trace("t", records)


class TestBasicStats:
    def test_counts_and_mpki(self):
        analysis = analyze_trace(
            make_trace([TraceRecord(9, 0, False), TraceRecord(9, 1, True)])
        )
        assert analysis.records == 2
        assert analysis.total_insts == 20
        assert analysis.intrinsic_mpki == pytest.approx(100.0)
        assert analysis.write_fraction == pytest.approx(0.5)

    def test_footprint(self):
        records = [TraceRecord(0, i * 64, False) for i in range(3)]
        analysis = analyze_trace(make_trace(records))
        assert analysis.footprint_pages == 3
        assert analysis.footprint_lines == 3

    def test_reuse_fraction(self):
        records = [
            TraceRecord(0, 0, False),
            TraceRecord(0, 0, False),
            TraceRecord(0, 1, False),
        ]
        analysis = analyze_trace(make_trace(records))
        assert analysis.reuse_fraction == pytest.approx(0.5)

    def test_gap_percentile(self):
        records = [TraceRecord(g, i, False) for i, g in enumerate([0] * 19 + [100])]
        analysis = analyze_trace(make_trace(records))
        assert analysis.p95_gap >= 0
        assert analysis.mean_gap == pytest.approx(5.0)


class TestStructure:
    def test_sequential_run_detected(self):
        records = [TraceRecord(5, v, False) for v in range(10)]
        analysis = analyze_trace(make_trace(records))
        assert analysis.mean_run_length == pytest.approx(10.0)

    def test_scattered_runs_short(self):
        records = [TraceRecord(5, v * 10, False) for v in range(10)]
        analysis = analyze_trace(make_trace(records))
        assert analysis.mean_run_length == pytest.approx(1.0)

    def test_burst_detection(self):
        records = [
            TraceRecord(100, 0, False),
            TraceRecord(0, 10, False),
            TraceRecord(1, 20, False),
            TraceRecord(100, 30, False),
        ]
        analysis = analyze_trace(make_trace(records))
        assert analysis.max_burst_size == 3


class TestOnGeneratedTraces:
    def test_streamer_has_long_runs(self):
        libq = analyze_trace(
            generate_trace(get_profile("libquantum"), target_insts=500_000)
        )
        mcf = analyze_trace(
            generate_trace(get_profile("mcf"), target_insts=500_000)
        )
        assert libq.mean_run_length > 3 * mcf.mean_run_length

    def test_bursty_app_has_big_bursts(self):
        mcf = analyze_trace(
            generate_trace(get_profile("mcf"), target_insts=500_000)
        )
        povray = analyze_trace(
            generate_trace(get_profile("povray"), target_insts=5_000_000)
        )
        assert mcf.mean_burst_size > povray.mean_burst_size

    def test_render_contains_key_lines(self):
        analysis = analyze_trace(
            generate_trace(get_profile("gcc"), target_insts=500_000)
        )
        text = analysis.render()
        assert "intrinsic MPKI" in text
        assert "footprint" in text


class TestCLICommands:
    def test_traces_command(self, capsys):
        from repro.cli import main

        assert main(["traces", "gcc"]) == 0
        out = capsys.readouterr().out
        assert "gcc:" in out
        assert "MPKI" in out

    def test_gen_traces_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.cpu.trace import load_trace

        assert main(["gen-traces", "gcc", "--out", str(tmp_path)]) == 0
        loaded = load_trace(str(tmp_path / "gcc.trace"))
        assert loaded.name == "gcc"
        assert len(loaded) > 0
