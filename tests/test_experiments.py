"""Experiment catalog tests: each experiment runs at tiny scope and
produces a well-formed, renderable result."""

import math

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    EXPERIMENTS,
    run_experiment,
    t1_configuration,
    t2_characteristics,
    t3_mixes,
    f1_bank_sensitivity,
    f2_ws_dbp_vs_ebp,
    f3_ms_dbp_vs_ebp,
    f8_epoch_sweep,
    f9_ablation,
)
from repro.experiments.report import ExperimentResult, percent_delta, render_table


TINY_MIXES = ["M4"]


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["x", 1.23456], ["yy", 2.0]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "1.235" in text
        assert len(lines) == 4

    def test_result_render_includes_summary(self):
        result = ExperimentResult(
            "FX", "demo", ["col"], [[1.0]], summary={"delta": 4.25}
        )
        text = result.render()
        assert "[FX] demo" in text
        assert "+4.25%" in text

    def test_column_access(self):
        result = ExperimentResult("FX", "demo", ["a", "b"], [[1, 2], [3, 4]])
        assert result.column("b") == [2, 4]

    def test_percent_delta(self):
        assert percent_delta(1.05, 1.0) == pytest.approx(5.0)
        with pytest.raises(ZeroDivisionError):
            percent_delta(1.0, 0.0)

    def test_to_csv(self):
        result = ExperimentResult("FX", "demo", ["a", "b"], [["x", 1.5]])
        lines = result.to_csv().strip().splitlines()
        assert lines == ["a,b", "x,1.5"]

    def test_to_json_roundtrip(self):
        import json

        result = ExperimentResult(
            "FX", "demo", ["a"], [[1.0]], summary={"d": 2.0}, notes="n"
        )
        data = json.loads(result.to_json())
        assert data["exp_id"] == "FX"
        assert data["rows"] == [[1.0]]
        assert data["summary"] == {"d": 2.0}
        assert data["notes"] == "n"


class TestTables:
    def test_t1_lists_config(self, fast_runner):
        result = t1_configuration(fast_runner)
        params = result.column("parameter")
        assert any("DRAM" in p for p in params)

    def test_t2_measures_characteristics(self, fast_runner):
        result = t2_characteristics(fast_runner, apps=["lbm", "gcc"])
        rows = {row[0]: row for row in result.rows}
        assert rows["lbm"][2] > rows["gcc"][2]  # mpki ordering
        assert rows["lbm"][5] == "intensive"
        assert rows["gcc"][5] == "light"

    def test_t3_lists_all_mixes(self):
        result = t3_mixes()
        assert len(result.rows) >= 16
        assert result.rows[0][0].startswith(("D", "M", "O"))


class TestFigures:
    def test_f1_shape(self, fast_runner):
        result = f1_bank_sensitivity(
            fast_runner, apps=["lbm"], bank_counts=(1, 4)
        )
        row = result.rows[0]
        assert row[0] == "lbm"
        assert row[1] < row[2] * 1.05  # fewer banks not better
        assert row[2] == pytest.approx(1.0)

    def test_f2_f3_share_runs(self, fast_runner):
        f2 = f2_ws_dbp_vs_ebp(fast_runner, mixes=TINY_MIXES)
        cached = len(fast_runner._run_cache)
        f3 = f3_ms_dbp_vs_ebp(fast_runner, mixes=TINY_MIXES)
        assert len(fast_runner._run_cache) == cached  # reused
        assert f2.rows[-1][0] == "gmean"
        assert "dbp_vs_ebp_ws_pct" in f2.summary
        assert "dbp_vs_ebp_ms_pct" in f3.summary
        for row in f2.rows:
            for value in row[1:]:
                assert isinstance(value, float) and not math.isnan(value)

    def test_f8_epoch_sweep(self, fast_runner):
        result = f8_epoch_sweep(
            fast_runner, mixes=TINY_MIXES, epochs=(5_000, 10_000)
        )
        assert [row[0] for row in result.rows] == ["5000", "10000"]
        assert all(row[1] > 0 for row in result.rows)

    def test_f9_ablation_variants(self, fast_runner):
        result = f9_ablation(fast_runner, mixes=TINY_MIXES)
        assert [row[0] for row in result.rows] == [
            "full",
            "blp-only",
            "mpki",
            "no-pool",
        ]

    def test_f13_seed_rows(self, fast_runner):
        from repro.experiments import f13_seed_robustness

        result = f13_seed_robustness(
            fast_runner, mixes=TINY_MIXES, seeds=(1, 2)
        )
        assert [row[0] for row in result.rows] == ["1", "2"]
        assert "min_ws_delta_pct" in result.summary


class TestRegistry:
    def test_all_ids_registered(self):
        assert set(EXPERIMENTS) == {
            "T1",
            "T2",
            "T3",
            "F1",
            "F2",
            "F3",
            "F4",
            "F5",
            "F6",
            "F7",
            "F8",
            "F9",
            "F10",
            "F11",
            "F12",
            "F13",
        }

    def test_dispatch_case_insensitive(self, fast_runner):
        result = run_experiment("t3", fast_runner)
        assert result.exp_id == "T3"

    def test_unknown_id_rejected(self, fast_runner):
        with pytest.raises(ExperimentError):
            run_experiment("F99", fast_runner)
