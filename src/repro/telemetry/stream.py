"""Streaming telemetry sink: rotating, size-bounded JSONL on disk.

The ring buffer in :class:`~repro.telemetry.recorder.TelemetryRecorder`
keeps only the newest ``capacity`` epochs; horizon-scale runs need *every*
epoch to explain why the policy repartitioned when it did. The stream
writer spills each epoch record to a JSONL file as it is recorded, so the
full history survives on disk regardless of ring capacity — and
``repro-dbp trace --from-jsonl`` re-renders the timeline and decisions
table from the file without re-simulating.

File format (one JSON document per line):

* every segment starts with a **header** line —
  ``{"kind": "header", "schema": "repro-dbp-telemetry", "schema_version":
  1, "capacity": ..., "latency_buckets": ..., "seq": N}`` — where ``seq``
  is the number of epoch records written before this segment began (0 for
  a fresh stream), which is what makes dropped history *recoverable*;
* every other line is one epoch record, byte-identical to the
  corresponding :meth:`TelemetryRecorder.to_jsonl` line.

Rotation: when a segment exceeds ``max_bytes`` it is rotated to
``<path>.1`` (older segments shift to ``.2``, ``.3``, ...), and segments
beyond ``max_files`` are deleted. The loader reads oldest-first and reports
rotated-away history as ``dropped_epochs`` (the oldest surviving header's
``seq``), mirroring the ring buffer's accounting.

Corrupt or truncated files fail loudly: :func:`load_stream` raises
:class:`~repro.errors.ConfigError` naming the file and line, never a raw
traceback from ``json``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from ..errors import ConfigError

#: Schema identity written into (and required from) every segment header.
STREAM_SCHEMA = "repro-dbp-telemetry"
#: Bump when the epoch-record layout changes incompatibly.
STREAM_SCHEMA_VERSION = 1


def _encode(doc: Dict[str, object]) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


class TelemetryStreamWriter:
    """Appends epoch records to a rotating, size-bounded JSONL file."""

    def __init__(
        self,
        path: str,
        capacity: int,
        latency_buckets: int,
        max_bytes: int = 16 * 1024 * 1024,
        max_files: int = 8,
    ) -> None:
        if max_bytes < 4096:
            raise ConfigError("stream_max_bytes must be >= 4096")
        if max_files < 1:
            raise ConfigError("stream_max_files must be >= 1")
        self.path = str(path)
        self.capacity = capacity
        self.latency_buckets = latency_buckets
        self.max_bytes = max_bytes
        self.max_files = max_files
        #: Epoch records written over the stream's lifetime (all segments).
        self.records_written = 0
        self._bytes = 0
        self._handle = None
        self._open_segment()

    # ------------------------------------------------------------------
    def _header(self) -> Dict[str, object]:
        return {
            "kind": "header",
            "schema": STREAM_SCHEMA,
            "schema_version": STREAM_SCHEMA_VERSION,
            "capacity": self.capacity,
            "latency_buckets": self.latency_buckets,
            "seq": self.records_written,
        }

    def _open_segment(self) -> None:
        try:
            self._handle = open(self.path, "w")
        except OSError as error:
            raise ConfigError(
                f"cannot open telemetry stream {self.path!r}: {error}"
            ) from None
        line = _encode(self._header())
        self._handle.write(line)
        self._handle.flush()
        self._bytes = len(line)

    def _rotate(self) -> None:
        self._handle.close()
        self._handle = None
        for index in range(self.max_files, 0, -1):
            src = self.path if index == 1 else f"{self.path}.{index - 1}"
            dst = f"{self.path}.{index}"
            if index == self.max_files and os.path.exists(dst):
                os.remove(dst)
            if os.path.exists(src):
                os.replace(src, dst)
        self._open_segment()

    # ------------------------------------------------------------------
    def write(self, record: Dict[str, object]) -> None:
        """Append one epoch record (flushed immediately: epochs are rare)."""
        if self._handle is None:
            raise ConfigError(f"telemetry stream {self.path!r} is closed")
        line = _encode(record)
        if self._bytes + len(line) > self.max_bytes:
            self._rotate()
        self._handle.write(line)
        self._handle.flush()
        self._bytes += len(line)
        self.records_written += 1

    def close(self) -> None:
        """Close the active segment (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ---------------------------------------------------------------------------
# Loading.
# ---------------------------------------------------------------------------
class _StoredConfig:
    """Capacity/bucket view of a stored stream, shaped like TelemetryConfig."""

    __slots__ = ("capacity", "latency_buckets")

    def __init__(self, capacity: int, latency_buckets: int) -> None:
        self.capacity = capacity
        self.latency_buckets = latency_buckets


class StoredTelemetry:
    """A loaded telemetry stream, renderable like a live recorder.

    Exposes exactly the surface :func:`~repro.telemetry.report
    .render_timeline` and :func:`~repro.telemetry.report.render_decisions`
    consume: ``records``, ``dropped_epochs``, and ``config``.
    """

    def __init__(
        self,
        records: List[Dict[str, object]],
        dropped_epochs: int,
        config: _StoredConfig,
        source: str,
        segments: int,
    ) -> None:
        self.records = records
        self.dropped_epochs = dropped_epochs
        self.config = config
        self.source = source
        self.segments = segments

    @property
    def epochs(self) -> int:
        """Total epochs the originating run recorded (on disk + rotated away)."""
        return self.dropped_epochs + len(self.records)

    @property
    def quanta(self) -> int:
        return sum(1 for r in self.records if r.get("fired_quantum"))

    @property
    def policy_epochs(self) -> int:
        return sum(1 for r in self.records if r.get("fired_policy"))


def _segment_paths(path: str) -> List[str]:
    """All on-disk segments of a stream, oldest first."""
    rotated = []
    index = 1
    while os.path.exists(f"{path}.{index}"):
        rotated.append(f"{path}.{index}")
        index += 1
    return list(reversed(rotated)) + [path]


def _parse_header(path: str, line: str) -> Dict[str, object]:
    try:
        doc = json.loads(line)
    except ValueError:
        raise ConfigError(
            f"{path}:1: not a telemetry stream (invalid header line)"
        ) from None
    if not isinstance(doc, dict) or doc.get("kind") != "header":
        raise ConfigError(
            f"{path}:1: not a telemetry stream (missing header line)"
        )
    if doc.get("schema") != STREAM_SCHEMA:
        raise ConfigError(
            f"{path}:1: unknown telemetry schema {doc.get('schema')!r}"
        )
    version = doc.get("schema_version")
    if not isinstance(version, int) or version > STREAM_SCHEMA_VERSION:
        raise ConfigError(
            f"{path}:1: telemetry schema version {version!r} is newer than "
            f"this reader (supports <= {STREAM_SCHEMA_VERSION})"
        )
    return doc


def load_stream(path: str) -> StoredTelemetry:
    """Load a streamed telemetry file (plus its rotated siblings).

    Raises :class:`ConfigError` — never a raw decode traceback — for a
    missing file, a missing/foreign header, a corrupt or truncated record
    line, or a gap between rotated segments.
    """
    path = str(path)
    if not os.path.exists(path):
        raise ConfigError(f"telemetry stream {path!r} does not exist")
    records: List[Dict[str, object]] = []
    dropped: Optional[int] = None
    header: Optional[Dict[str, object]] = None
    segments = _segment_paths(path)
    expected_seq: Optional[int] = None
    for segment in segments:
        try:
            with open(segment) as handle:
                lines = handle.read().splitlines()
        except OSError as error:
            raise ConfigError(
                f"cannot read telemetry stream {segment!r}: {error}"
            ) from None
        if not lines:
            raise ConfigError(f"{segment}:1: empty telemetry stream segment")
        header = _parse_header(segment, lines[0])
        seq = header.get("seq", 0)
        if not isinstance(seq, int) or seq < 0:
            raise ConfigError(f"{segment}:1: invalid header seq {seq!r}")
        if dropped is None:
            dropped = seq  # history rotated away before the oldest segment
        elif expected_seq is not None and seq != expected_seq:
            raise ConfigError(
                f"{segment}:1: segment starts at record {seq} but "
                f"{expected_seq} records precede it (missing rotation?)"
            )
        for offset, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                raise ConfigError(
                    f"{segment}:{offset}: corrupt telemetry record "
                    f"(truncated or not JSON)"
                ) from None
            if not isinstance(record, dict) or "cycle" not in record:
                raise ConfigError(
                    f"{segment}:{offset}: not an epoch record "
                    f"(missing 'cycle')"
                )
            records.append(record)
        expected_seq = dropped + len(records) if dropped is not None else None
    config = _StoredConfig(
        capacity=int(header.get("capacity", 0) or 0),
        latency_buckets=int(header.get("latency_buckets", 0) or 0),
    )
    return StoredTelemetry(
        records=records,
        dropped_epochs=dropped or 0,
        config=config,
        source=path,
        segments=len(segments),
    )
