"""Human-readable views of recorded telemetry.

Two tables, built for terminal widths:

* the **epoch timeline** — one row per recorded boundary: which consumers
  fired, aggregate thread behaviour, queue depths, migration traffic;
* the **decisions table** — one row per *policy* epoch: each thread's
  estimated bank demand, the colors it was assigned, and the scheduler's
  quantum/batch state at that boundary.

Both renderers accept anything recorder-shaped — a live
:class:`~repro.telemetry.recorder.TelemetryRecorder` or a
:class:`~repro.telemetry.stream.StoredTelemetry` loaded from a JSONL
stream — they only touch ``records``, ``dropped_epochs`` and
``config.capacity``.
"""

from __future__ import annotations

from typing import Dict, List, Optional


def _colors_compact(colors: List[int]) -> str:
    """Render a sorted color list as compact ranges: [0-3,7]."""
    if not colors:
        return "[]"
    parts = []
    start = prev = colors[0]
    for color in colors[1:]:
        if color == prev + 1:
            prev = color
            continue
        parts.append(f"{start}-{prev}" if prev > start else f"{start}")
        start = prev = color
    parts.append(f"{start}-{prev}" if prev > start else f"{start}")
    return "[" + ",".join(parts) + "]"


def _sched_compact(doc: Dict[str, object]) -> str:
    """One-cell digest of a scheduler's telemetry_state document."""
    name = doc.get("name", "?")
    if name == "tcm":
        latency = sorted(doc.get("latency_cluster", []))
        bandwidth = sorted(doc.get("bandwidth_cluster", []))
        return (
            f"tcm L={_colors_compact(latency)} "
            f"B={_colors_compact(bandwidth)}"
        )
    if name == "parbs":
        return (
            f"parbs batch#{doc.get('batches', '?')} "
            f"marked={doc.get('marked', '?')}"
        )
    if name == "atlas":
        rank = doc.get("rank") or []
        top = f"t{rank[0]}" if rank else "-"
        return f"atlas top={top} q#{doc.get('quanta', '?')}"
    return str(name)


def render_timeline(recorder, last: Optional[int] = None) -> str:
    """The epoch timeline table (optionally only the newest ``last`` rows)."""
    records = list(recorder.records)
    if last is not None:
        records = records[-last:]
    header = (
        f"{'cycle':>10} {'fired':<5} {'reqs':>6} {'bw':>6} {'maxMPKI':>8} "
        f"{'rdQ':>4} {'wrQ':>4} {'migCAS':>6} {'repart':>6} {'moved':>6}"
    )
    lines = [header, "-" * len(header)]
    for record in records:
        threads = record["threads"].values()
        requests = sum(t["requests"] for t in threads)
        bandwidth = sum(t["bandwidth"] for t in threads)
        max_mpki = max((t["mpki"] for t in threads), default=0.0)
        controllers = record["controllers"]
        read_q = sum(c["read_queue_depth"] for c in controllers)
        write_q = sum(c["write_queue_depth"] for c in controllers)
        mig = sum(c["migration_casses"] for c in controllers)
        fired = ("Q" if record["fired_quantum"] else "-") + (
            "P" if record["fired_policy"] else "-"
        )
        policy = record.get("policy", {})
        repart = policy.get("repartitions", "")
        moved = policy.get("pages_migrated_epoch", "")
        lines.append(
            f"{record['cycle']:>10} {fired:<5} {requests:>6} "
            f"{bandwidth:>6.2f} {max_mpki:>8.1f} {read_q:>4} {write_q:>4} "
            f"{mig:>6} {repart!s:>6} {moved!s:>6}"
        )
    if recorder.dropped_epochs:
        lines.append(
            f"... {recorder.dropped_epochs} older epoch(s) evicted from the "
            f"ring (capacity {recorder.config.capacity})"
        )
    return "\n".join(lines)


def render_decisions(recorder) -> str:
    """The policy-decisions table (policy epochs only)."""
    records = [r for r in recorder.records if r.get("policy")]
    if not records:
        return "(no policy epochs recorded)"
    thread_ids = sorted(
        {t for r in records for t in r["threads"]}, key=int
    )
    cells = [
        f"t{t}: demand->colors" for t in thread_ids
    ]
    header = (
        f"{'cycle':>10} {'policy':<8} "
        + " | ".join(f"{c:<22}" for c in cells)
        + f" | {'scheduler':<24}"
    )
    lines = [header, "-" * len(header)]
    for record in records:
        policy = record["policy"]
        demands = policy.get("demands", {})
        allocation = policy.get("allocation", {})
        row = []
        for t in thread_ids:
            demand = demands.get(t)
            if demand is None:
                want = "?"
            elif not demand.get("intensive", True):
                want = "pool"
            else:
                want = str(demand.get("banks", "?"))
            colors = allocation.get(t)
            got = _colors_compact(colors) if colors is not None else "-"
            row.append(f"{want:>4} -> {got:<14}")
        sched = record.get("scheduler")
        sched_cell = _sched_compact(sched) if sched else "-"
        lines.append(
            f"{record['cycle']:>10} {policy.get('name', '?'):<8} "
            + " | ".join(row)
            + f" | {sched_cell:<24}"
        )
    return "\n".join(lines)
