"""Opt-in per-epoch instrumentation (profiles, decisions, queue state).

See :mod:`repro.telemetry.recorder` for the cost model: a system built
without a recorder pays one ``is None`` check per epoch boundary and
nothing per request. :mod:`repro.telemetry.stream` adds the on-disk
streaming sink (rotating JSONL with schema headers) and its loader.
"""

from .recorder import ControllerProbe, TelemetryConfig, TelemetryRecorder
from .report import render_decisions, render_timeline
from .spans import (
    SpanTracer,
    current_tracer,
    install_tracer,
    load_trace_file,
    merge_trace_files,
    merge_traces,
    uninstall_tracer,
    write_trace_file,
)
from .stream import (
    STREAM_SCHEMA,
    STREAM_SCHEMA_VERSION,
    StoredTelemetry,
    TelemetryStreamWriter,
    load_stream,
)

__all__ = [
    "ControllerProbe",
    "STREAM_SCHEMA",
    "STREAM_SCHEMA_VERSION",
    "SpanTracer",
    "StoredTelemetry",
    "TelemetryConfig",
    "TelemetryRecorder",
    "TelemetryStreamWriter",
    "current_tracer",
    "install_tracer",
    "load_stream",
    "load_trace_file",
    "merge_trace_files",
    "merge_traces",
    "render_decisions",
    "render_timeline",
    "uninstall_tracer",
    "write_trace_file",
]
