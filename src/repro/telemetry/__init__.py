"""Opt-in per-epoch instrumentation (profiles, decisions, queue state).

See :mod:`repro.telemetry.recorder` for the cost model: a system built
without a recorder pays one ``is None`` check per epoch boundary and
nothing per request.
"""

from .recorder import ControllerProbe, TelemetryConfig, TelemetryRecorder
from .report import render_decisions, render_timeline

__all__ = [
    "ControllerProbe",
    "TelemetryConfig",
    "TelemetryRecorder",
    "render_decisions",
    "render_timeline",
]
