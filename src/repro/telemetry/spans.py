"""Hierarchical span tracing with Chrome-trace-event export.

The flight recorder complements the epoch-grained telemetry ring with a
*causal* view of execution: nested wall-clock spans (campaign → run →
alone/measure phase → policy epoch → migration burst → checkpoint write
→ fault retry) emitted as Chrome trace events, loadable directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Design constraints, in order:

* **Zero cost when off.**  Instrumentation sites call
  :func:`current_tracer` (a module-global read) and bail on ``None``.
  No tracer objects ever live on :class:`~repro.sim.system.System` —
  the whole system is pickled for checkpoints and a tracer full of
  wall-clock events must not ride along.
* **Cross-process mergeable.**  Timestamps are absolute wall-clock
  microseconds (``time.time_ns() // 1000``), so per-worker trace files
  from a campaign pool land on one shared timeline when merged; each
  process contributes its own ``pid`` lane.
* **Nesting by containment.**  Chrome "X" (complete) events on the same
  ``pid``/``tid`` nest by time containment, which lets single-threaded
  emitters record retrospective spans (a policy epoch is only known to
  be over when the next boundary fires) and lets the campaign
  supervisor lay concurrent runs out on virtual ``tid`` lanes.

The exported document is ``{"traceEvents": [...]}`` — the JSON Object
Format of the Trace Event spec, which Perfetto's legacy importer
accepts.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "SpanTracer",
    "current_tracer",
    "install_tracer",
    "uninstall_tracer",
    "merge_traces",
    "merge_trace_files",
    "now_us",
    "write_trace_file",
    "load_trace_file",
]


def now_us() -> int:
    """Absolute wall-clock microseconds (mergeable across processes)."""
    return time.time_ns() // 1000


class SpanTracer:
    """Collects Chrome trace events for one process.

    A tracer is single-writer: one per process, installed via
    :func:`install_tracer`.  Concurrent *logical* activities (the
    supervisor tracking many in-flight runs) get their own virtual
    ``tid`` lanes from :meth:`lane`; events on different lanes never
    nest into each other.
    """

    MAIN_LANE = 0

    def __init__(self, process_name: str, pid: Optional[int] = None):
        self.pid = os.getpid() if pid is None else pid
        self._events: List[Dict[str, Any]] = []
        self._stack: Dict[int, List[Tuple[str, int, Dict[str, Any]]]] = {}
        self._lanes: Dict[str, int] = {}
        self._next_lane = 1
        self._meta("process_name", {"name": process_name})
        self._meta("thread_name", {"name": "main"}, tid=self.MAIN_LANE)

    # ------------------------------------------------------------------
    # lanes

    def lane(self, label: str) -> int:
        """Return a stable virtual ``tid`` for ``label`` (creates one)."""
        tid = self._lanes.get(label)
        if tid is None:
            tid = self._next_lane
            self._next_lane += 1
            self._lanes[label] = tid
            self._meta("thread_name", {"name": label}, tid=tid)
        return tid

    def _meta(self, name: str, args: Dict[str, Any], tid: int = 0) -> None:
        self._events.append(
            {
                "name": name,
                "ph": "M",
                "pid": self.pid,
                "tid": tid,
                "args": args,
            }
        )

    # ------------------------------------------------------------------
    # spans

    def begin(self, name: str, lane: int = 0, **args: Any) -> None:
        """Open a span; close it with :meth:`end` (LIFO per lane)."""
        self._stack.setdefault(lane, []).append((name, now_us(), args))

    def end(self, lane: int = 0, **args: Any) -> None:
        """Close the innermost open span on ``lane``."""
        name, start, open_args = self._stack[lane].pop()
        if args:
            open_args = dict(open_args, **args)
        self.complete(name, start, now_us() - start, lane=lane, **open_args)

    @contextmanager
    def span(self, name: str, lane: int = 0, **args: Any):
        """``with tracer.span("run", mix="M4"):`` — span around a block."""
        self.begin(name, lane=lane, **args)
        try:
            yield self
        finally:
            self.end(lane=lane)

    def complete(
        self,
        name: str,
        start_us: int,
        dur_us: int,
        lane: int = 0,
        **args: Any,
    ) -> None:
        """Record a retrospective span (already-elapsed interval)."""
        event: Dict[str, Any] = {
            "name": name,
            "cat": "repro",
            "ph": "X",
            "ts": start_us,
            "dur": max(int(dur_us), 1),
            "pid": self.pid,
            "tid": lane,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def instant(self, name: str, lane: int = 0, **args: Any) -> None:
        """Record a zero-duration marker (``ph: "i"``)."""
        event: Dict[str, Any] = {
            "name": name,
            "cat": "repro",
            "ph": "i",
            "s": "t",
            "ts": now_us(),
            "pid": self.pid,
            "tid": lane,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    # ------------------------------------------------------------------
    # export

    def events(self) -> List[Dict[str, Any]]:
        return list(self._events)

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome/Perfetto JSON document for this tracer alone."""
        return {"traceEvents": self.events(), "displayTimeUnit": "ms"}

    def write(self, path: str) -> None:
        write_trace_file(path, self.to_chrome())


# ----------------------------------------------------------------------
# Module-global tracer: instrumentation sites read this instead of
# threading a tracer handle through System/Runner construction, which
# would put wall-clock state on picklable simulation objects.

_TRACER: Optional[SpanTracer] = None


def current_tracer() -> Optional[SpanTracer]:
    """The installed tracer for this process, or ``None`` (the default)."""
    return _TRACER


def install_tracer(tracer: Optional[SpanTracer]) -> Optional[SpanTracer]:
    """Install ``tracer`` process-wide; returns the previous one.

    Returning the previous tracer lets in-process callers (the serial
    campaign fallback) save and restore around a scoped install.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def uninstall_tracer() -> None:
    install_tracer(None)


# ----------------------------------------------------------------------
# Merge: one timeline from many per-process files.


def write_trace_file(path: str, document: Dict[str, Any]) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")
    os.replace(tmp, path)


def load_trace_file(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError(f"{path}: not a Chrome trace event document")
    return document


def merge_traces(documents: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge trace documents onto one timeline.

    Events keep their own ``pid``/``tid``; absolute timestamps mean no
    re-basing is needed.  Events are sorted by timestamp (metadata
    first) so the output is stable regardless of arrival order.
    """
    events: List[Dict[str, Any]] = []
    for document in documents:
        events.extend(document.get("traceEvents", []))
    events.sort(
        key=lambda e: (e.get("ph") != "M", e.get("ts", 0), e.get("pid", 0))
    )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def merge_trace_files(
    paths: Iterable[str],
    extra: Iterable[Dict[str, Any]] = (),
) -> Dict[str, Any]:
    """Merge per-process trace files; missing files are skipped.

    Workers that died mid-attempt (a SIGKILL fault) may never have
    flushed a file — the supervisor's own lane still records the
    attempt, so a hole here is survivable, not an error.  ``extra``
    appends in-memory documents (the supervisor's own tracer).
    """
    documents = []
    for path in paths:
        if os.path.exists(path):
            documents.append(load_trace_file(path))
    documents.extend(extra)
    return merge_traces(documents)
