"""Per-epoch instrumentation of one simulation run.

The recorder captures, at every profiling boundary the system crosses:

* each thread's measured profile (MPKI / RBH / BLP / bandwidth share),
* the partitioning policy's decisions when it fired this boundary —
  demand estimates, bank-color allocation, repartition and migration
  counters,
* the adaptive scheduler's quantum state when it fired (e.g. TCM's
  latency/bandwidth clusters, via :meth:`Scheduler.telemetry_state`),
* per-controller queue depths plus a log2 read-latency histogram of the
  epoch's served requests.

Cost model: telemetry is strictly opt-in. A :class:`System` built without a
recorder registers no extra controller listeners and executes exactly one
``is None`` check per epoch boundary — the hot command-issue path is
untouched. With a recorder attached, per-request work is a few counter
increments in :class:`ControllerProbe`; everything expensive (snapshotting
dicts, JSON) happens once per epoch.

Records live in a bounded ring (:class:`collections.deque` with
``maxlen``): a long run keeps the newest ``capacity`` epochs and counts the
evicted ones in ``dropped_epochs``, so memory is O(capacity) regardless of
horizon. When ``stream_path`` is set, every record is *also* appended to a
rotating JSONL file (see :mod:`repro.telemetry.stream`) before it can be
evicted, so the full history survives on disk.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigError


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of the epoch recorder."""

    #: Maximum epochs kept in the ring buffer (oldest evicted first).
    capacity: int = 4096
    #: Log2 buckets of the per-controller read-latency histogram; bucket i
    #: holds latencies of bit length i — [2^(i-1), 2^i) CPU cycles — and
    #: the last bucket is open-ended.
    latency_buckets: int = 14
    #: When set, every epoch record is also appended to this JSONL file
    #: (rotating, size-bounded) so history beyond ``capacity`` survives.
    stream_path: Optional[str] = None
    #: Rotate the stream file once a segment exceeds this many bytes.
    stream_max_bytes: int = 16 * 1024 * 1024
    #: Keep at most this many rotated segments besides the active file.
    stream_max_files: int = 8

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigError("telemetry capacity must be >= 1")
        if self.latency_buckets < 2:
            raise ConfigError("latency_buckets must be >= 2")
        if self.stream_max_bytes < 4096:
            raise ConfigError("stream_max_bytes must be >= 4096")
        if self.stream_max_files < 1:
            raise ConfigError("stream_max_files must be >= 1")


class ControllerProbe:
    """Listener on one channel controller, reset at each epoch boundary."""

    __slots__ = (
        "controller",
        "buckets",
        "arrivals",
        "reads",
        "writes",
        "row_hits",
        "migration_casses",
        "latency_sum",
        "latency_hist",
    )

    def __init__(self, controller, buckets: int) -> None:
        self.controller = controller
        self.buckets = buckets
        self._reset()

    def _reset(self) -> None:
        self.arrivals = 0
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.migration_casses = 0
        self.latency_sum = 0
        self.latency_hist = [0] * self.buckets

    # -- controller listener interface ---------------------------------
    def on_arrival(self, request, now: int) -> None:
        self.arrivals += 1

    def on_cas(self, request, now: int, row_hit: bool, data_end=None) -> None:
        if request.is_migration:
            self.migration_casses += 1
            return
        if request.is_write:
            self.writes += 1
        else:
            self.reads += 1
            if data_end is not None:
                latency = max(0, data_end - request.arrival)
                self.latency_sum += latency
                bucket = min(latency.bit_length(), self.buckets - 1)
                self.latency_hist[bucket] += 1
        if row_hit:
            self.row_hits += 1

    # -- epoch boundary ------------------------------------------------
    def snapshot_and_reset(self) -> Dict[str, object]:
        doc = {
            "channel": self.controller.channel.channel_id,
            "read_queue_depth": len(self.controller.read_queue),
            "write_queue_depth": len(self.controller.write_queue),
            "arrivals": self.arrivals,
            "reads": self.reads,
            "writes": self.writes,
            "row_hits": self.row_hits,
            "migration_casses": self.migration_casses,
            "mean_read_latency": (
                self.latency_sum / self.reads if self.reads else 0.0
            ),
            "latency_hist": list(self.latency_hist),
        }
        self._reset()
        return doc


class TelemetryRecorder:
    """Ring-buffer recorder of per-epoch system state.

    Built by whoever wants visibility (Runner, the ``trace`` CLI, a test),
    handed to :class:`~repro.sim.system.System`, read afterwards.
    """

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.records: deque = deque(maxlen=self.config.capacity)
        self.probes: List[ControllerProbe] = []
        self.epochs = 0
        self.quanta = 0
        self.policy_epochs = 0
        self.dropped_epochs = 0
        self._policy = None
        self._scheduler = None
        self._last_pages_migrated = 0
        self.stream = None
        if self.config.stream_path is not None:
            from .stream import TelemetryStreamWriter

            self.stream = TelemetryStreamWriter(
                self.config.stream_path,
                capacity=self.config.capacity,
                latency_buckets=self.config.latency_buckets,
                max_bytes=self.config.stream_max_bytes,
                max_files=self.config.stream_max_files,
            )

    # ------------------------------------------------------------------
    # Wiring (called once by the System builder).
    # ------------------------------------------------------------------
    def attach(self, controllers, policy, scheduler) -> None:
        """Register probes on every controller and remember the deciders."""
        self._policy = policy
        self._scheduler = scheduler
        for controller in controllers:
            probe = ControllerProbe(controller, self.config.latency_buckets)
            controller.add_listener(probe)
            self.probes.append(probe)

    # ------------------------------------------------------------------
    # Epoch boundary (called by System._on_epoch when a recorder exists).
    # ------------------------------------------------------------------
    def on_epoch(
        self, now: int, snapshot, fired_quantum: bool, fired_policy: bool
    ) -> None:
        if len(self.records) == self.records.maxlen:
            self.dropped_epochs += 1
        self.epochs += 1
        if fired_quantum:
            self.quanta += 1
        if fired_policy:
            self.policy_epochs += 1
        record: Dict[str, object] = {
            "cycle": now,
            "fired_quantum": fired_quantum,
            "fired_policy": fired_policy,
            "threads": {
                str(t): {
                    "mpki": p.mpki,
                    "rbh": p.rbh,
                    "blp": p.blp,
                    "bandwidth": p.bandwidth,
                    "requests": p.requests,
                }
                for t, p in sorted(snapshot.threads.items())
            },
            "controllers": [p.snapshot_and_reset() for p in self.probes],
        }
        if fired_policy:
            record["policy"] = self._policy_decisions()
        if fired_quantum or fired_policy:
            # On policy epochs too: batch schedulers like PAR-BS have no
            # quantum, so this is the only boundary their state surfaces.
            record["scheduler"] = self._scheduler_state()
        self.records.append(record)
        if self.stream is not None:
            self.stream.write(record)

    def _policy_decisions(self) -> Dict[str, object]:
        """Duck-typed capture of whatever the policy exposes.

        Every field is optional so static or third-party policies record
        gracefully; DBP (and DBP+MCP via delegation) exposes all of them.
        """
        policy = self._policy
        doc: Dict[str, object] = {"name": getattr(policy, "name", "?")}
        repartitions = getattr(policy, "stat_repartitions", None)
        if repartitions is not None:
            doc["repartitions"] = repartitions
        pages = getattr(policy, "stat_pages_migrated", None)
        if pages is not None:
            doc["pages_migrated"] = pages
            doc["pages_migrated_epoch"] = pages - self._last_pages_migrated
            self._last_pages_migrated = pages
        allocation = getattr(policy, "last_allocation", None)
        if allocation:
            doc["allocation"] = {
                str(t): list(colors) for t, colors in sorted(allocation.items())
            }
        demands = getattr(policy, "last_demands", None)
        if demands:
            doc["demands"] = {str(t): d for t, d in sorted(demands.items())}
        return doc

    def _scheduler_state(self) -> Dict[str, object]:
        scheduler = self._scheduler
        doc: Dict[str, object] = {"name": getattr(scheduler, "name", "?")}
        state = getattr(scheduler, "telemetry_state", None)
        if state is not None:
            doc.update(state())
        return doc

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One deterministic JSON document per recorded epoch."""
        return "".join(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            for record in self.records
        )

    def dump_jsonl(self, path) -> None:
        """Write :meth:`to_jsonl` to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())

    def close(self) -> None:
        """Flush and close the streaming sink, if any (idempotent)."""
        if self.stream is not None:
            self.stream.close()

    def summary(self) -> Dict[str, object]:
        """Compact run-level digest (attached to store entry metadata)."""
        max_read_q = max_write_q = 0
        migration_casses = 0
        for record in self.records:
            for ctrl in record["controllers"]:
                max_read_q = max(max_read_q, ctrl["read_queue_depth"])
                max_write_q = max(max_write_q, ctrl["write_queue_depth"])
                migration_casses += ctrl["migration_casses"]
        doc: Dict[str, object] = {
            "epochs": self.epochs,
            "quanta": self.quanta,
            "policy_epochs": self.policy_epochs,
            "dropped_epochs": self.dropped_epochs,
            "max_read_queue_depth": max_read_q,
            "max_write_queue_depth": max_write_q,
            "migration_casses": migration_casses,
        }
        if self.stream is not None:
            doc["streamed_epochs"] = self.stream.records_written
        repartitions = getattr(self._policy, "stat_repartitions", None)
        if repartitions is not None:
            doc["repartitions"] = repartitions
        pages = getattr(self._policy, "stat_pages_migrated", None)
        if pages is not None:
            doc["pages_migrated"] = pages
        return doc
