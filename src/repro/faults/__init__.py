"""Deterministic fault-injection harness.

Seed-driven, stateless-at-runtime injectors for chaos-testing the campaign
layer: worker crashes (real ``SIGKILL``), hangs past the deadline,
transient and deterministic exceptions, corrupted store blobs, truncated
trace files, and checkpoint writes torn mid-flush. See
:mod:`repro.faults.plan` for how firing decisions stay deterministic
across processes and retries.
"""

from .injectors import (
    TransientFaultError,
    corrupt_file,
    crash_process,
    hang,
    truncate_file,
)
from .plan import FAULT_KINDS, FaultPlan, FaultPlanError, FaultSpec
from .runtime import (
    active_plan,
    check_fault,
    install_plan,
    maybe_fire,
    reset,
)

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "TransientFaultError",
    "active_plan",
    "check_fault",
    "corrupt_file",
    "crash_process",
    "hang",
    "install_plan",
    "maybe_fire",
    "reset",
    "truncate_file",
]
