"""Deterministic, seed-driven fault plans.

A :class:`FaultPlan` is a list of :class:`FaultSpec` rules plus a seed.
Whether a rule fires at a given *site* (a named injection point such as
``worker.run``) for a given run (matched by label/key) on a given attempt
is a pure function of ``(plan.seed, site, key, attempt)`` — no shared
mutable state — so the same plan produces the same fault schedule in every
worker process, on every retry, on every machine. That is what lets the
chaos suite assert exact convergence: a ``times=1`` transient fault fires
on attempt 1 and provably never again.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from ..errors import ReproError

#: Everything an injector knows how to do (see ``faults.injectors``).
FAULT_KINDS = (
    "crash",  # SIGKILL the current process (a real `kill -9`)
    "hang",  # block past any reasonable deadline (timeout path)
    "transient",  # raise TransientFaultError (retry should succeed)
    "deterministic",  # raise SimulationError every time (poison spec)
    "corrupt_blob",  # damage a just-written store entry on disk
    "torn_checkpoint",  # leave a half-written checkpoint file behind
)


class FaultPlanError(ReproError):
    """A fault plan is malformed."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.

    ``match`` is an ``fnmatch`` pattern against the run's label (and its
    store key, so plans may address either). ``times`` fires the rule on
    attempts ``1..times``; ``rate`` additionally gates each (key, attempt)
    on a deterministic hash draw in [0, 1). ``seconds`` parameterizes the
    ``hang`` kind.
    """

    site: str
    kind: str
    match: str = "*"
    times: int = 1
    rate: float = 1.0
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {sorted(FAULT_KINDS)})"
            )
        if not self.site:
            raise FaultPlanError("a fault spec needs a site")
        if self.times < 0:
            raise FaultPlanError("times must be >= 0")
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError("rate must be in [0, 1]")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of injection rules."""

    seed: int = 0
    faults: Sequence[FaultSpec] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    # ------------------------------------------------------------------
    def match(
        self, site: str, key: str = "", attempt: int = 1
    ) -> Optional[FaultSpec]:
        """First rule that fires for (site, key, attempt), or None."""
        for spec in self.faults:
            if spec.site != site:
                continue
            if not fnmatch.fnmatchcase(key, spec.match):
                continue
            if attempt > spec.times:
                continue
            if spec.rate < 1.0 and self._draw(spec, key, attempt) >= spec.rate:
                continue
            return spec
        return None

    def _draw(self, spec: FaultSpec, key: str, attempt: int) -> float:
        token = f"{self.seed}:{spec.site}:{spec.kind}:{key}:{attempt}"
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    # ------------------------------------------------------------------
    def to_doc(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [asdict(spec) for spec in self.faults],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "FaultPlan":
        if not isinstance(doc, dict) or "faults" not in doc:
            raise FaultPlanError("fault plan document needs a 'faults' list")
        faults: List[FaultSpec] = []
        for entry in doc["faults"]:
            try:
                faults.append(FaultSpec(**entry))
            except TypeError as error:
                raise FaultPlanError(
                    f"bad fault spec {entry!r}: {error}"
                ) from error
        return cls(seed=int(doc.get("seed", 0)), faults=tuple(faults))

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_doc(), indent=1) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "FaultPlan":
        try:
            doc = json.loads(Path(path).read_text())
        except OSError as error:
            raise FaultPlanError(
                f"cannot read fault plan {path}: {error}"
            ) from error
        except ValueError as error:
            raise FaultPlanError(
                f"fault plan {path} is not valid JSON: {error}"
            ) from error
        return cls.from_doc(doc)
