"""Fault-plan activation and the injection-point API.

A process activates a plan either programmatically (:func:`install_plan` —
the executor does this in every pool worker via the pool initializer) or
through the environment (``REPRO_FAULT_PLAN=<path.json>`` — how the chaos
smoke script drives a whole CLI campaign). Injection points then call
:func:`maybe_fire` with their site name and run identity; with no plan
active that is one dict-is-None check, so production paths pay nothing.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from .plan import FaultPlan, FaultSpec

_ENV_VAR = "REPRO_FAULT_PLAN"

#: The process-wide active plan. ``False`` means "not resolved yet" so an
#: absent env var is only stat'ed once per process.
_active: object = False


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Activate ``plan`` in this process (None deactivates)."""
    global _active
    _active = plan


def active_plan() -> Optional[FaultPlan]:
    """The active plan: installed one first, then ``REPRO_FAULT_PLAN``."""
    global _active
    if _active is False:
        path = os.environ.get(_ENV_VAR)
        _active = FaultPlan.load(Path(path)) if path else None
    return _active  # type: ignore[return-value]


def reset() -> None:
    """Forget any resolved plan (tests; also re-reads the env var)."""
    global _active
    _active = False


def check_fault(
    site: str, key: str = "", attempt: int = 1
) -> Optional[FaultSpec]:
    """The rule that fires at (site, key, attempt), without executing it.

    For callers that own the fault's mechanics (the checkpoint writer's
    torn write). Everyone else wants :func:`maybe_fire`.
    """
    plan = active_plan()
    if plan is None:
        return None
    return plan.match(site, key=key, attempt=attempt)


def maybe_fire(
    site: str,
    key: str = "",
    attempt: int = 1,
    path=None,
) -> Optional[str]:
    """Fire the matching rule for this injection point, if any.

    May raise (transient/deterministic kinds), never return (crash), block
    (hang), or damage ``path`` (corrupt_blob). Returns the fired kind for
    side-effect injectors, None when nothing matched.
    """
    spec = check_fault(site, key=key, attempt=attempt)
    if spec is None:
        return None
    from . import injectors

    return injectors.fire(spec, path=path)
