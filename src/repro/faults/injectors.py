"""The fault injectors: what each fault *kind* actually does.

Each injector is deliberately faithful to the real failure it models:
``crash`` is a genuine ``SIGKILL`` of the current process (what the OOM
killer or a ``kill -9`` delivers), ``hang`` blocks in short interruptible
slices (so both SIGALRM and the watchdog-thread timeout can cut it off),
``corrupt_blob``/``truncate_file`` damage real bytes on disk.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path
from typing import Optional

from ..errors import ReproError, SimulationError
from .plan import FaultSpec


class TransientFaultError(ReproError):
    """An injected fault that models a one-off environmental failure."""


def fire(spec: FaultSpec, path: Optional[Path] = None) -> Optional[str]:
    """Execute one matched fault. May not return (crash, raise).

    Returns the kind for side-effect-only injectors (file damage) so
    callers can log what happened; ``torn_checkpoint`` is not handled here
    — the checkpoint writer owns it because the damage must happen *inside*
    the write.
    """
    if spec.kind == "crash":
        crash_process()
    if spec.kind == "hang":
        hang(spec.seconds)
        return "hang"
    if spec.kind == "transient":
        raise TransientFaultError(
            f"injected transient fault at site {spec.site!r}"
        )
    if spec.kind == "deterministic":
        raise SimulationError(
            f"injected deterministic fault at site {spec.site!r}"
        )
    if spec.kind == "corrupt_blob":
        if path is not None:
            corrupt_file(path)
        return "corrupt_blob"
    return None


def crash_process() -> None:  # pragma: no cover - kills the test process
    """Die exactly like ``kill -9``: no cleanup, no exit handlers."""
    os.kill(os.getpid(), signal.SIGKILL)
    # SIGKILL cannot be handled; if we are somehow still alive (exotic
    # platform), make death unconditional.
    os._exit(137)


def hang(seconds: float) -> None:
    """Block for ``seconds``, interruptibly.

    Sleeps in 20 ms slices so an asynchronous timeout (SIGALRM handler or
    ``PyThreadState_SetAsyncExc`` from the watchdog thread) lands at the
    next slice boundary instead of waiting out one long C-level sleep.
    """
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        time.sleep(0.02)


def corrupt_file(path, offset_fraction: float = 0.5) -> None:
    """Flip bytes in the middle of ``path`` (keeps length; breaks content)."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return
    start = int(len(data) * offset_fraction)
    for index in range(start, min(start + 16, len(data))):
        data[index] ^= 0xFF
    path.write_bytes(bytes(data))


def truncate_file(path, keep_fraction: float = 0.5) -> None:
    """Cut ``path`` short — a partially-copied trace or torn download."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * keep_fraction)])
