"""Allow ``python -m repro`` as an alias for the ``repro-dbp`` script."""

import sys

from .cli import main

sys.exit(main())
