"""Simulation wiring: event engine, system builder, experiment runner."""

from .engine import Engine
from .system import System, SystemResult
from .runner import Runner, RunResult, WorkloadRunMetrics

__all__ = [
    "Engine",
    "System",
    "SystemResult",
    "Runner",
    "RunResult",
    "WorkloadRunMetrics",
]
