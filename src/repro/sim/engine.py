"""Discrete-event engine.

A single global agenda of (cycle, callback) events ordered by time, with
stable FIFO ordering among same-cycle events. Every component — cores,
controllers, the epoch manager — advances exclusively through this agenda,
which is what allows the simulator to skip dead time instead of ticking
every cycle.
"""

from __future__ import annotations

import functools
import heapq
import itertools
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError

EventCallback = Callable[[int], None]


class SimProfiler:
    """Wall-clock attribution of event time to simulator components.

    Attached to the :class:`Engine` on demand (``System(profile=True)``);
    the unprofiled run loop is untouched. Each event's elapsed wall time is
    charged to the class that owns its callback — bound methods report
    their ``__self__`` class, plain functions/lambdas the class their
    qualified name is nested in (System's relay lambdas land on "System").
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.events: Dict[str, int] = {}

    @staticmethod
    def component_of(callback: Callable) -> str:
        while isinstance(callback, functools.partial):
            callback = callback.func
        owner = getattr(callback, "__self__", None)
        if owner is not None:
            return type(owner).__name__
        qualname = getattr(callback, "__qualname__", "")
        if isinstance(qualname, str) and qualname:
            return qualname.split(".", 1)[0]
        # Callable instances have no __qualname__ of their own: charge the
        # class implementing __call__ rather than lumping them as unknown.
        return type(callback).__name__

    def charge(self, component: str, elapsed: float) -> None:
        self.seconds[component] = self.seconds.get(component, 0.0) + elapsed
        self.events[component] = self.events.get(component, 0) + 1

    def breakdown(self) -> List[Tuple[str, float, int]]:
        """(component, seconds, events), heaviest first."""
        return sorted(
            (
                (name, self.seconds[name], self.events.get(name, 0))
                for name in self.seconds
            ),
            key=lambda item: (-item[1], item[0]),
        )


class Engine:
    """Minimal but strict discrete-event loop."""

    def __init__(
        self,
        horizon: Optional[int] = None,
        profiler: Optional[SimProfiler] = None,
    ) -> None:
        self.horizon = horizon
        self.profiler = profiler
        self._agenda: List[Tuple[int, int, EventCallback]] = []
        self._sequence = itertools.count()
        self._now = 0
        self._running = False
        self.stat_events = 0
        #: High-water mark of the agenda: the deepest the event heap ever
        #: got. Updated at both push sites (here and the controller's
        #: direct heappush); identical between decision kernels because
        #: the event stream is identical by contract.
        self.stat_agenda_peak = 0

    @property
    def now(self) -> int:
        """Current simulated cycle."""
        return self._now

    def schedule(self, cycle: int, callback: EventCallback) -> None:
        """Run ``callback(cycle)`` when simulated time reaches ``cycle``.

        Scheduling in the past is a simulator bug and raises immediately —
        silent time travel produces unexplainable results.
        """
        if cycle < self._now:
            raise SimulationError(
                f"event scheduled at {cycle}, before current time {self._now}"
            )
        heapq.heappush(self._agenda, (cycle, next(self._sequence), callback))
        if len(self._agenda) > self.stat_agenda_peak:
            self.stat_agenda_peak = len(self._agenda)

    def run(self, until: Optional[int] = None) -> int:
        """Drain the agenda; returns the final simulated cycle.

        ``until`` (or the constructor ``horizon``) bounds the run: events at
        or beyond the bound stay in the agenda and time stops at the bound.
        A bound behind the current time raises — moving simulated time
        backwards past already-executed events would silently corrupt every
        timestamp taken afterwards.
        """
        if self._running:
            raise SimulationError("engine re-entered")
        bound = until if until is not None else self.horizon
        if bound is not None and bound < self._now:
            raise SimulationError(
                f"run(until={bound}) would rewind time from {self._now}"
            )
        self._running = True
        events = 0
        pop = heapq.heappop
        agenda = self._agenda
        profiler = self.profiler
        try:
            if profiler is None:
                if bound is None:
                    while agenda:
                        cycle, _seq, callback = pop(agenda)
                        self._now = cycle
                        callback(cycle)
                        events += 1
                else:
                    while agenda and agenda[0][0] < bound:
                        cycle, _seq, callback = pop(agenda)
                        self._now = cycle
                        callback(cycle)
                        events += 1
                    self._now = bound
            else:
                # Duplicated loop so the common unprofiled path pays no
                # per-event clock reads or attribution lookups. Attribution
                # is memoized: bound methods key on their owner's class and
                # functions/lambdas on their (shared) code object, so the
                # name resolution in component_of runs once per call site,
                # not once per event. The clock is read once per event: an
                # event is charged from the previous stamp to its own, so
                # the (small, uniform) dispatch overhead lands on the
                # component that ran rather than disappearing untracked.
                perf_counter = time.perf_counter
                component_of = profiler.component_of
                seconds = profiler.seconds
                counts = profiler.events
                names: Dict[object, str] = {}
                names_get = names.get
                last_stamp = perf_counter()
                while agenda:
                    cycle = agenda[0][0]
                    if bound is not None and cycle >= bound:
                        self._now = bound
                        break
                    cycle, _seq, callback = pop(agenda)
                    self._now = cycle
                    callback(cycle)
                    stamp = perf_counter()
                    elapsed = stamp - last_stamp
                    last_stamp = stamp
                    owner = getattr(callback, "__self__", None)
                    if owner is not None:
                        key = owner.__class__
                    else:
                        key = getattr(callback, "__code__", None)
                    name = names_get(key)
                    if name is None:
                        name = component_of(callback)
                        if key is not None:
                            names[key] = name
                    if name in seconds:
                        seconds[name] += elapsed
                        counts[name] += 1
                    else:
                        seconds[name] = elapsed
                        counts[name] = 1
                    events += 1
                else:
                    if bound is not None:
                        self._now = bound
        finally:
            self.stat_events += events
            self._running = False
        return self._now

    def pending_events(self) -> int:
        """Events still in the agenda (cheap introspection for tests)."""
        return len(self._agenda)
