"""Discrete-event engine.

A single global agenda of (cycle, callback) events ordered by time, with
stable FIFO ordering among same-cycle events. Every component — cores,
controllers, the epoch manager — advances exclusively through this agenda,
which is what allows the simulator to skip dead time instead of ticking
every cycle.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError

EventCallback = Callable[[int], None]


class SimProfiler:
    """Wall-clock attribution of event time to simulator components.

    Attached to the :class:`Engine` on demand (``System(profile=True)``);
    the unprofiled run loop is untouched. Each event's elapsed wall time is
    charged to the class that owns its callback — bound methods report
    their ``__self__`` class, plain functions/lambdas the class their
    qualified name is nested in (System's relay lambdas land on "System").
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.events: Dict[str, int] = {}

    @staticmethod
    def component_of(callback: Callable) -> str:
        owner = getattr(callback, "__self__", None)
        if owner is not None:
            return type(owner).__name__
        qualname = getattr(callback, "__qualname__", "")
        head = qualname.split(".", 1)[0]
        return head or "unknown"

    def charge(self, component: str, elapsed: float) -> None:
        self.seconds[component] = self.seconds.get(component, 0.0) + elapsed
        self.events[component] = self.events.get(component, 0) + 1

    def breakdown(self) -> List[Tuple[str, float, int]]:
        """(component, seconds, events), heaviest first."""
        return sorted(
            (
                (name, self.seconds[name], self.events.get(name, 0))
                for name in self.seconds
            ),
            key=lambda item: (-item[1], item[0]),
        )


class Engine:
    """Minimal but strict discrete-event loop."""

    def __init__(
        self,
        horizon: Optional[int] = None,
        profiler: Optional[SimProfiler] = None,
    ) -> None:
        self.horizon = horizon
        self.profiler = profiler
        self._agenda: List[Tuple[int, int, EventCallback]] = []
        self._sequence = itertools.count()
        self._now = 0
        self._running = False
        self.stat_events = 0

    @property
    def now(self) -> int:
        """Current simulated cycle."""
        return self._now

    def schedule(self, cycle: int, callback: EventCallback) -> None:
        """Run ``callback(cycle)`` when simulated time reaches ``cycle``.

        Scheduling in the past is a simulator bug and raises immediately —
        silent time travel produces unexplainable results.
        """
        if cycle < self._now:
            raise SimulationError(
                f"event scheduled at {cycle}, before current time {self._now}"
            )
        heapq.heappush(self._agenda, (cycle, next(self._sequence), callback))

    def run(self, until: Optional[int] = None) -> int:
        """Drain the agenda; returns the final simulated cycle.

        ``until`` (or the constructor ``horizon``) bounds the run: events at
        or beyond the bound stay in the agenda and time stops at the bound.
        """
        if self._running:
            raise SimulationError("engine re-entered")
        bound = until if until is not None else self.horizon
        self._running = True
        try:
            agenda = self._agenda
            profiler = self.profiler
            if profiler is None:
                while agenda:
                    cycle = agenda[0][0]
                    if bound is not None and cycle >= bound:
                        self._now = bound
                        break
                    cycle, _seq, callback = heapq.heappop(agenda)
                    self._now = cycle
                    callback(cycle)
                    self.stat_events += 1
                else:
                    if bound is not None:
                        self._now = bound
            else:
                # Duplicated loop so the common unprofiled path pays no
                # per-event clock reads or attribution lookups.
                while agenda:
                    cycle = agenda[0][0]
                    if bound is not None and cycle >= bound:
                        self._now = bound
                        break
                    cycle, _seq, callback = heapq.heappop(agenda)
                    self._now = cycle
                    start = time.perf_counter()
                    callback(cycle)
                    profiler.charge(
                        profiler.component_of(callback),
                        time.perf_counter() - start,
                    )
                    self.stat_events += 1
                else:
                    if bound is not None:
                        self._now = bound
        finally:
            self._running = False
        return self._now

    def pending_events(self) -> int:
        """Events still in the agenda (cheap introspection for tests)."""
        return len(self._agenda)
