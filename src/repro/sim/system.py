"""Full-system assembly.

:class:`System` wires every substrate together for one simulation run:
traces → cores → per-core private caches → page-table translation →
channel controllers → DDR3 channels, with the partitioning policy steering
the allocator and the shared profiler feeding both the policy and any
adaptive scheduler. One :class:`System` is one run; the experiment runner
builds many.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..baselines.base import PartitionContext, PartitionPolicy
from ..baselines.shared import SharedPolicy
from ..cache import Cache
from ..config import SystemConfig
from ..core.profiler import ThreadProfiler
from ..cpu.core import Core
from ..cpu.prefetcher import StridePrefetcher
from ..cpu.trace import Trace
from ..dram.channel import Channel
from ..dram.validator import ProtocolValidator
from ..errors import ConfigError, SimulationError
from ..mapping import AddressMap
from ..memctrl.controller import ChannelController, resolve_kernel
from ..memctrl.request import Request
from ..memctrl.schedulers import make_scheduler
from ..osmm import ColorAwareAllocator, MigrationEngine, MigrationPlan, PageTable
from ..telemetry.spans import current_tracer, now_us
from .checkpoint import (
    CheckpointError,
    dump_checkpoint,
    load_checkpoint,
)
from .engine import Engine, SimProfiler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..telemetry import TelemetryRecorder

#: Cycles between successive migration copy pairs, so a page move does not
#: slam the queues in a single cycle.
_MIGRATION_SPACING = 16


@dataclass(frozen=True)
class ThreadResult:
    """Per-thread outcome of one run."""

    thread_id: int
    app: str
    ipc: float
    retired_insts: int
    reads: int
    writes: int
    llc_miss_rate: float
    row_hit_rate: float
    mean_read_latency: float


@dataclass
class SystemResult:
    """Everything a run produced."""

    horizon: int
    threads: Dict[int, ThreadResult] = field(default_factory=dict)
    total_commands: int = 0
    total_refreshes: int = 0
    pages_migrated: int = 0
    engine_events: int = 0
    #: Fraction of each channel's data-bus time spent transferring data.
    bus_utilization: Dict[int, float] = field(default_factory=dict)

    def ipc_of(self, thread_id: int) -> float:
        return self.threads[thread_id].ipc


class System:
    """One fully-wired simulation instance (single use)."""

    def __init__(
        self,
        config: SystemConfig,
        traces: List[Trace],
        horizon: int,
        policy: Optional[PartitionPolicy] = None,
        validate: bool = False,
        ahead_limit: int = 8192,
        telemetry: Optional["TelemetryRecorder"] = None,
        profile: bool = False,
        policy_epoch_offset: Optional[int] = None,
        quantum_offset: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> None:
        if len(traces) != config.num_cores:
            raise SimulationError(
                f"{len(traces)} traces for {config.num_cores} cores"
            )
        self.config = config
        self.traces = traces
        self.horizon = horizon
        self.policy = policy if policy is not None else SharedPolicy()
        self.validate = validate
        # The simulation kernel is an implementation switch, not part of
        # SystemConfig: both kernels are bit-identical by contract (see
        # tests/test_kernel_equivalence.py), so it must not perturb
        # campaign store keys derived from the config.
        self.kernel = resolve_kernel(kernel)
        # Wall-clock profiler (distinct from self.profiler, the in-sim
        # ThreadProfiler measuring MPKI/RBH/BLP).
        self.sim_profiler = SimProfiler() if profile else None
        self._wall_seconds: Optional[float] = None
        self.engine = Engine(horizon, profiler=self.sim_profiler)
        timings = config.timings
        self.address_map = AddressMap(
            config.organization,
            config.osmm.page_size,
            bank_xor=config.bank_xor_interleave,
        )
        self.allocator = ColorAwareAllocator(self.address_map)
        self.page_tables: Dict[int, PageTable] = {
            t: PageTable(t, self.allocator, self.address_map)
            for t in range(config.num_cores)
        }
        self.migration = (
            MigrationEngine(
                self.allocator,
                self.address_map,
                config.osmm.migration_budget_pages,
                config.osmm.migration_lines_per_page,
                mode=config.osmm.migration_mode,
            )
            if config.osmm.migration_enabled
            else None
        )
        self.scheduler = make_scheduler(
            config.controller.scheduler,
            num_threads=config.num_cores,
            **config.controller.scheduler_params,
        )
        self.channels: List[Channel] = []
        self.controllers: List[ChannelController] = []
        for channel_id in range(config.organization.channels):
            channel = Channel(
                channel_id,
                config.organization.ranks_per_channel,
                config.organization.banks_per_rank,
                timings,
                clock_ratio=config.clock_ratio,
                refresh_enabled=config.controller.refresh_enabled,
            )
            if validate:
                channel.enable_logging()
            controller = ChannelController(
                channel,
                config.controller,
                self.scheduler,
                self.engine,
                kernel=self.kernel,
            )
            self.channels.append(channel)
            self.controllers.append(controller)
        self.caches: Dict[int, Cache] = {
            t: Cache(config.cache, seed=config.seed + t)
            for t in range(config.num_cores)
        }
        self.prefetchers: Dict[int, StridePrefetcher] = {
            t: StridePrefetcher(config.prefetcher)
            for t in range(config.num_cores)
        }
        # Physical lines a prefetch is currently fetching, each with the
        # demand completions waiting on the fill.
        self._prefetch_inflight: Dict[int, list] = {}
        # Hoisted config constants and per-thread bound methods for the
        # per-access hot path (thread ids are dense 0..n-1).
        self._hit_latency = self.config.cache.hit_latency
        self._prefetch_enabled = self.config.prefetcher.enabled
        self._translate = [
            self.page_tables[t].translate_line
            for t in range(config.num_cores)
        ]
        self._cache_access = [
            self.caches[t].access for t in range(config.num_cores)
        ]
        self.cores: List[Core] = [
            Core(
                core_id=t,
                config=config.core,
                trace=traces[t],
                port=self,
                scheduler=self.engine,
                horizon=horizon,
                ahead_limit=ahead_limit,
            )
            for t in range(config.num_cores)
        ]
        self.profiler = ThreadProfiler(
            num_threads=config.num_cores,
            burst_cycles=timings.tBURST,
            retired_insts_of=lambda t: self.cores[t].retired_insts_processed,
        )
        for controller in self.controllers:
            controller.add_listener(self.profiler)
        self.context = PartitionContext(
            allocator=self.allocator,
            address_map=self.address_map,
            page_tables=self.page_tables,
            migration=self.migration,
            inject_copy_traffic=self._inject_copy_traffic,
        )
        # The scheduler's quantum and the policy's epoch run on independent
        # cadences; each consumer fires only at multiples of its own period,
        # optionally staggered by an offset within that period.
        q_offset = (
            quantum_offset
            if quantum_offset is not None
            else self.scheduler.quantum_offset
        )
        p_offset = (
            policy_epoch_offset
            if policy_epoch_offset is not None
            else self.policy.epoch_offset
        )
        self._next_quantum = self._first_boundary(
            "quantum", self.scheduler.quantum_cycles, q_offset
        )
        self._next_policy = self._first_boundary(
            "policy epoch", self.policy.epoch_cycles, p_offset
        )
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.attach(self.controllers, self.policy, self.scheduler)
        self._ran = False
        self._finished = False

    # ------------------------------------------------------------------
    # Epoch plumbing. The profiler is snapshot once per boundary *cycle*
    # (both consumers read the same cheap counters, as in hardware), but
    # the scheduler's quantum and the policy's repartitioning epoch are
    # scheduled independently: a 25k TCM quantum must not drag a 50k DBP
    # epoch down to 25k, or claim C2's cadence sensitivity is distorted.
    # ------------------------------------------------------------------
    @staticmethod
    def _first_boundary(
        what: str, period: Optional[int], offset: int
    ) -> Optional[int]:
        """First due cycle of one cadence: ``period + offset``.

        Subsequent boundaries advance by the bare period, so the stagger is
        preserved for the whole run.
        """
        if period is None:
            if offset:
                raise ConfigError(
                    f"{what} offset {offset} given but the {what} has no "
                    f"period"
                )
            return None
        if not 0 <= offset < period:
            raise ConfigError(
                f"{what} offset must be in [0, {period}), got {offset}"
            )
        return period + offset

    def _next_boundary(self) -> Optional[int]:
        dues = [
            due
            for due in (self._next_quantum, self._next_policy)
            if due is not None
        ]
        return min(dues) if dues else None

    def _on_epoch(self, now: int) -> None:
        # Span tracing is process-global, never stored on the system (a
        # tracer full of wall-clock events must not ride along in
        # checkpoints); boundaries are rare, so the lookup is off the
        # hot path entirely.
        tracer = current_tracer()
        started = now_us() if tracer is not None else 0
        snapshot = self.profiler.snapshot(now)
        fired_quantum = self._next_quantum == now
        fired_policy = self._next_policy == now
        if fired_quantum:
            self.scheduler.on_quantum(snapshot)
            self._next_quantum = now + self.scheduler.quantum_cycles
        if fired_policy:
            self.policy.on_epoch(snapshot, self.context)
            # Page-access hotness ranks migration candidates, so its
            # window is the policy's epoch, not the profiling boundary.
            for table in self.page_tables.values():
                table.reset_access_counts()
            self._next_policy = now + self.policy.epoch_cycles
        if self.telemetry is not None:
            self.telemetry.on_epoch(now, snapshot, fired_quantum, fired_policy)
        if tracer is not None:
            name = "policy-epoch" if fired_policy else "quantum"
            tracer.complete(name, started, now_us() - started, cycle=now)
        next_due = self._next_boundary()
        if next_due is not None and next_due < self.horizon:
            self.engine.schedule(next_due, self._on_epoch)

    # ------------------------------------------------------------------
    # MemoryPort implementation (what cores call).
    # ------------------------------------------------------------------
    def access(
        self,
        thread_id: int,
        vline: int,
        is_write: bool,
        at: int,
        on_complete: Optional[Callable[[int], None]],
    ) -> Optional[int]:
        pline = self._translate[thread_id](vline)
        if self._prefetch_enabled:
            self._maybe_prefetch(thread_id, vline, pline, at)
        result = self._cache_access[thread_id](pline, is_write)
        hit_latency = self._hit_latency
        if result.hit:
            if is_write:
                return None
            return at + hit_latency
        in_flight = self._prefetch_inflight.get(pline)
        if in_flight is not None:
            # A prefetch already fetched this line: piggyback on its fill
            # instead of issuing a duplicate DRAM request.
            if not is_write and on_complete is not None:
                in_flight.append(
                    lambda cycle, cb=on_complete, t0=at: cb(
                        max(cycle, t0) + hit_latency
                    )
                )
            return None
        if result.writeback_line is not None:
            self._send_request(
                thread_id, result.writeback_line, True, at, None, False
            )
        if is_write:
            # Write-allocate: the miss fetches the line (a non-blocking
            # read); the dirty data drains later as a writeback.
            self._send_request(thread_id, pline, False, at, None, False)
            return None
        wrapped = None
        if on_complete is not None:
            fill = hit_latency
            wrapped = lambda cycle, cb=on_complete: cb(cycle + fill)
        self._send_request(thread_id, pline, False, at, wrapped, False)
        return None

    def _maybe_prefetch(
        self, thread_id: int, vline: int, pline: int, at: int
    ) -> None:
        """Train the core's stride prefetcher and issue its requests.

        Prefetches are page-bounded, so their physical lines share the
        demand access's frame; fills insert into the cache on completion,
        and demand reads arriving meanwhile wait on the in-flight fill.
        Prefetch traffic carries the issuing thread's id and therefore
        counts toward its measured bandwidth and MPKI, as in hardware.
        """
        targets = self.prefetchers[thread_id].observe(vline)
        if not targets:
            return
        cache = self.caches[thread_id]
        page_mask = (1 << self.address_map.page_line_bits) - 1
        for target in targets:
            target_pline = (pline & ~page_mask) | (target & page_mask)
            if cache.contains(target_pline):
                continue
            if target_pline in self._prefetch_inflight:
                continue
            self._prefetch_inflight[target_pline] = []
            callback = lambda cycle, line=target_pline, t=thread_id: (
                self._finish_prefetch(t, line, cycle)
            )
            self._send_request(thread_id, target_pline, False, at, callback, False)

    def _finish_prefetch(self, thread_id: int, pline: int, cycle: int) -> None:
        writeback = self.caches[thread_id].insert(pline)
        if writeback is not None:
            self._send_request(thread_id, writeback, True, cycle, None, False)
        for waiter in self._prefetch_inflight.pop(pline, []):
            waiter(cycle)

    def _send_request(
        self,
        thread_id: int,
        pline: int,
        is_write: bool,
        at: int,
        on_complete: Optional[Callable[[int], None]],
        is_migration: bool,
    ) -> None:
        loc = self.address_map.decompose_line(pline)
        request = Request(
            thread_id, is_write, pline, loc, at, on_complete, is_migration
        )
        controller = self.controllers[loc.channel]
        now = self.engine.now
        if at <= now:
            controller.enqueue(request, now)
        else:
            self.engine.schedule(
                at, lambda cycle, r=request, c=controller: c.enqueue(r, cycle)
            )

    # ------------------------------------------------------------------
    # Migration traffic.
    # ------------------------------------------------------------------
    def _inject_copy_traffic(self, plan: MigrationPlan) -> None:
        tracer = current_tracer()
        started = now_us() if tracer is not None else 0
        now = self.engine.now
        for index, (src, dst) in enumerate(plan.copy_lines):
            at = now + index * _MIGRATION_SPACING
            if at >= self.horizon:
                break
            self._send_request(plan.thread_id, src, False, at, None, True)
            self._send_request(plan.thread_id, dst, True, at, None, True)
        cache = self.caches[plan.thread_id]
        lines_per_page = 1 << self.address_map.page_line_bits
        budget = (
            self.migration.budget_pages if self.migration is not None else 0
        )
        # Only the costed (hottest) moves are likely cache-resident; stale
        # lines of cold remapped pages age out naturally.
        for _vpage, old_frame, _new_frame in plan.moves[:budget]:
            for offset in range(lines_per_page):
                cache.invalidate(
                    self.address_map.line_in_frame(old_frame, offset)
                )
        if tracer is not None:
            tracer.complete(
                "migration-burst",
                started,
                now_us() - started,
                cycle=now,
                thread=plan.thread_id,
                copy_lines=len(plan.copy_lines),
                moves=len(plan.moves),
            )

    # ------------------------------------------------------------------
    # Run.
    # ------------------------------------------------------------------
    def run(
        self,
        safepoint_every: Optional[int] = None,
        on_safepoint: Optional[Callable[["System", int], None]] = None,
    ) -> SystemResult:
        """Execute the simulation to the horizon; single use.

        With ``safepoint_every`` the engine is driven in bounded steps of
        that many cycles and ``on_safepoint(system, cycle)`` runs between
        steps — the window where :meth:`checkpoint` is legal. The stepped
        drive pops the exact same events in the exact same order as the
        single-shot one (the agenda is a stable heap and nothing executes
        between steps), so results are bit-identical either way; the
        kernel-golden checkpoint grid pins that.
        """
        if self._ran:
            raise SimulationError("System instances are single use")
        self._ran = True
        start = (
            time.perf_counter() if self.sim_profiler is not None else None
        )
        self.policy.initialize(self.context)
        for core in self.cores:
            core.start()
        first = self._next_boundary()
        if first is not None and first < self.horizon:
            self.engine.schedule(first, self._on_epoch)
        self._advance(safepoint_every, on_safepoint)
        if start is not None:
            self._wall_seconds = time.perf_counter() - start
        return self._finish()

    def resume(
        self,
        safepoint_every: Optional[int] = None,
        on_safepoint: Optional[Callable[["System", int], None]] = None,
    ) -> SystemResult:
        """Continue a restored run to the horizon and collect its result.

        Only valid on a system rebuilt by :meth:`restore` (or one whose
        :meth:`run` was aborted by a safepoint hook): initialization
        already happened, the agenda holds the in-flight events, and the
        engine clock sits at the checkpointed cycle.
        """
        if not self._ran:
            raise SimulationError(
                "resume() is for restored checkpoints; use run()"
            )
        if self._finished:
            raise SimulationError("this run already finished")
        start = (
            time.perf_counter() if self.sim_profiler is not None else None
        )
        self._advance(safepoint_every, on_safepoint)
        if start is not None:
            previous = self._wall_seconds or 0.0
            self._wall_seconds = previous + (time.perf_counter() - start)
        return self._finish()

    def _advance(
        self,
        safepoint_every: Optional[int],
        on_safepoint: Optional[Callable[["System", int], None]],
    ) -> None:
        """Drive the engine to the horizon, optionally in bounded steps."""
        # The event loop allocates heavily (keys, commands, events) but the
        # objects are overwhelmingly acyclic and die by refcount; cyclic-gc
        # passes over the live heap are pure overhead at this allocation
        # rate, so collection is paused for the duration of the run.
        if safepoint_every is not None and safepoint_every <= 0:
            raise SimulationError("safepoint_every must be positive")
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            if not safepoint_every:
                self.engine.run()
                return
            now = self.engine.now
            while now < self.horizon:
                stop = min(self.horizon, now + safepoint_every)
                self.engine.run(until=stop)
                now = self.engine.now
                if now < self.horizon and on_safepoint is not None:
                    on_safepoint(self, now)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _finish(self) -> SystemResult:
        self._finished = True
        if self.telemetry is not None:
            self.telemetry.close()
        if self.validate:
            self._validate_command_streams()
        return self._collect()

    # ------------------------------------------------------------------
    # Checkpoint / restore.
    # ------------------------------------------------------------------
    def checkpoint(self, meta: Optional[Dict[str, object]] = None) -> bytes:
        """Snapshot the complete mid-run state as a self-verifying blob.

        Legal between engine steps only — i.e. from a safepoint hook or
        before :meth:`run`/after an aborted step — never from inside an
        event callback, where a half-applied event would be frozen.
        The blob restores with :meth:`restore` to a system that
        :meth:`resume`\\ s to a bit-identical :class:`SystemResult`.
        """
        if self.engine._running:
            raise CheckpointError(
                "checkpoint() called from inside the event loop; "
                "only safepoint hooks may checkpoint"
            )
        if self._finished:
            raise CheckpointError("this run already finished")
        if self.telemetry is not None and getattr(
            self.telemetry, "stream", None
        ) is not None:
            raise CheckpointError(
                "streaming telemetry holds an open file and cannot be "
                "checkpointed; use in-memory telemetry or no telemetry"
            )
        doc: Dict[str, object] = {
            "cycle": self.engine.now,
            "horizon": self.horizon,
            "kernel": self.kernel,
        }
        if meta:
            doc.update(meta)
        return dump_checkpoint(self, meta=doc)

    @classmethod
    def restore(cls, blob: bytes) -> "System":
        """Rebuild a checkpointed system, ready to :meth:`resume`.

        Raises :class:`~repro.sim.checkpoint.CheckpointCorruptError` on a
        torn/corrupted blob and :class:`CheckpointError` on a stale one
        (foreign format version or interpreter); callers are expected to
        fall back to a from-scratch run on either.
        """
        system, _header = load_checkpoint(blob)
        if not isinstance(system, cls):
            raise CheckpointError(
                f"checkpoint does not hold a {cls.__name__} "
                f"(found {type(system).__name__})"
            )
        return system

    def profile_report(self) -> Dict[str, object]:
        """Wall-clock profile of the completed run (``profile=True`` only)."""
        if self.sim_profiler is None:
            raise SimulationError("system was built without profile=True")
        if self._wall_seconds is None:
            raise SimulationError("profile_report() requires a finished run")
        wall = self._wall_seconds
        components = [
            {
                "component": name,
                "seconds": seconds,
                "events": events,
                "share": seconds / wall if wall else 0.0,
            }
            for name, seconds, events in self.sim_profiler.breakdown()
        ]
        return {
            "wall_seconds": wall,
            "cycles": self.engine.now,
            "cycles_per_second": self.engine.now / wall if wall else 0.0,
            "events": self.engine.stat_events,
            "components": components,
        }

    def _validate_command_streams(self) -> None:
        org = self.config.organization
        for channel in self.channels:
            validator = ProtocolValidator(
                self.config.timings,
                org.ranks_per_channel,
                org.banks_per_rank,
                clock_ratio=self.config.clock_ratio,
            )
            validator.observe_all(channel.command_log or [])

    def metrics_registry(self):
        """Collect every component's counters into a fresh metrics registry.

        Pull model: this walks the native ``stat_*`` counters on demand, so
        it costs nothing during simulation and may be called at any point
        (normally after :meth:`run`). Deterministic for a given state.
        """
        from ..metrics.registry import MetricsRegistry

        registry = MetricsRegistry()
        cycles = registry.gauge(
            "repro_sim_cycles", "Simulated CPU cycles elapsed"
        )
        cycles.set(self.engine.now)
        registry.counter(
            "repro_sim_engine_events_total", "Discrete events executed"
        ).inc(self.engine.stat_events)
        registry.gauge(
            "repro_kernel_agenda_peak",
            "High-water mark of the engine's event agenda",
        ).set(self.engine.stat_agenda_peak)
        retired = registry.counter(
            "repro_cpu_retired_insts_total", "Instructions retired per core"
        )
        for thread_id, core in enumerate(self.cores):
            retired.inc(core.stats.retired_insts, thread=str(thread_id))
        for channel in self.channels:
            channel.collect_metrics(registry)
        for controller in self.controllers:
            controller.collect_metrics(registry)
        self.scheduler.collect_metrics(registry)
        self.allocator.collect_metrics(registry)
        if self.migration is not None:
            self.migration.collect_metrics(registry)
        repartitions = getattr(self.policy, "stat_repartitions", None)
        if repartitions is not None:
            registry.counter(
                "repro_policy_repartitions_total",
                "Policy epochs that changed at least one allocation",
            ).inc(repartitions, policy=self.policy.name)
        return registry

    def _collect(self) -> SystemResult:
        result = SystemResult(horizon=self.horizon)
        for core in self.cores:
            core.finalize()
        for thread_id, core in enumerate(self.cores):
            ipc = core.ipc()
            reads = writes = hits = latency = 0
            for controller in self.controllers:
                stats = controller.stats
                reads += stats.per_thread_reads.get(thread_id, 0)
                writes += stats.per_thread_writes.get(thread_id, 0)
                hits += stats.per_thread_row_hits.get(thread_id, 0)
                latency += stats.per_thread_latency_sum.get(thread_id, 0)
            served = reads + writes
            result.threads[thread_id] = ThreadResult(
                thread_id=thread_id,
                app=self.traces[thread_id].name,
                ipc=ipc,
                retired_insts=core.stats.retired_insts,
                reads=reads,
                writes=writes,
                llc_miss_rate=self.caches[thread_id].miss_rate,
                row_hit_rate=hits / served if served else 0.0,
                mean_read_latency=latency / reads if reads else 0.0,
            )
        result.bus_utilization = {
            controller.channel.channel_id: (
                controller.stats.data_bus_busy / self.horizon
            )
            for controller in self.controllers
        }
        result.total_commands = sum(c.stat_commands for c in self.channels)
        result.total_refreshes = sum(
            rank.stat_refreshes for channel in self.channels for rank in channel.ranks
        )
        if self.migration is not None:
            result.pages_migrated = self.migration.stat_pages_moved
        result.engine_events = self.engine.stat_events
        return result
