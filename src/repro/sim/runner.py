"""Experiment runner: mixes, approaches, alone-run baselines, metrics.

The runner owns the methodology boilerplate every experiment shares:

* traces are generated once per (app, seed) and reused;
* each application's *alone* IPC — the denominator of every speedup — is
  measured once per configuration on the unpartitioned FR-FCFS system with
  a single core, then cached;
* a mix run builds a fresh :class:`~repro.sim.system.System` for the chosen
  approach and converts the resulting IPCs into the paper's metrics.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence

from ..config import SystemConfig
from ..core.integration import Approach, get_approach
from ..cpu.trace import Trace
from ..errors import ExperimentError
from ..metrics import MetricSummary, slowdowns, summarize
from ..telemetry import TelemetryConfig, TelemetryRecorder
from ..telemetry.spans import current_tracer, now_us
from ..traces.source import DefaultTraceSource, TraceSource
from ..workloads import Mix
from .system import System, SystemResult

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from ..campaign.store import ResultStore


@dataclass(frozen=True)
class WorkloadRunMetrics:
    """Metrics of one (mix, approach) run."""

    mix: str
    approach: str
    summary: MetricSummary
    slowdowns: Dict[int, float]
    apps: Sequence[str]

    @property
    def weighted_speedup(self) -> float:
        return self.summary.weighted_speedup

    @property
    def max_slowdown(self) -> float:
        return self.summary.max_slowdown

    @property
    def harmonic_speedup(self) -> float:
        return self.summary.harmonic_speedup


@dataclass
class RunResult:
    """Metrics plus the raw system result, for deeper inspection."""

    metrics: WorkloadRunMetrics
    system: SystemResult
    alone_ipcs: Dict[int, float] = field(default_factory=dict)
    shared_ipcs: Dict[int, float] = field(default_factory=dict)
    #: Telemetry run digest (:meth:`TelemetryRecorder.summary`) when the
    #: Runner recorded the run; None otherwise. Persisted with the result.
    telemetry: Optional[Dict[str, object]] = None
    #: Deterministic metrics-registry snapshot
    #: (:meth:`System.metrics_registry` → :meth:`MetricsRegistry.snapshot`)
    #: collected after every simulated run. Persisted with the result;
    #: render it with :func:`repro.metrics.prometheus_text`.
    metrics_snapshot: Optional[Dict[str, object]] = None
    #: Wall-clock profile (:meth:`System.profile_report`) when the Runner
    #: was built with ``profile=True``; never persisted (host-specific).
    profile: Optional[Dict[str, object]] = None


class Runner:
    """Shared methodology for every experiment."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        horizon: int = 400_000,
        seed: int = 1,
        target_insts: int = 4_000_000,
        validate: bool = False,
        ahead_limit: int = 8192,
        store: Optional["ResultStore"] = None,
        jobs: int = 1,
        telemetry: Optional[TelemetryConfig] = None,
        profile: bool = False,
        trace_source: Optional[TraceSource] = None,
        kernel: Optional[str] = None,
        safepoint_every: Optional[int] = None,
        safepoint_dir: Optional[object] = None,
    ) -> None:
        self.config = config if config is not None else SystemConfig()
        if horizon <= 0:
            raise ExperimentError("horizon must be positive")
        if jobs < 1:
            raise ExperimentError("jobs must be >= 1")
        self.horizon = horizon
        self.seed = seed
        self.target_insts = target_insts
        self.validate = validate
        self.ahead_limit = ahead_limit
        #: Optional persistent result store (see :mod:`repro.campaign.store`)
        #: consulted before and fed after every cacheable mix run.
        self.store = store
        #: Worker processes campaign-backed sweeps may fan out over.
        self.jobs = jobs
        #: When set, every mix run records per-epoch telemetry; the full
        #: recorder of the most recent *simulated* (non-cached) run is kept
        #: on :attr:`last_telemetry` and its summary travels on the
        #: RunResult. Telemetry never changes simulation results, so store
        #: keys are unaffected.
        self.telemetry = telemetry
        self.last_telemetry: Optional[TelemetryRecorder] = None
        #: When True, mix runs time the event loop per component; the
        #: report of the most recent simulated run lands on
        #: :attr:`last_profile` and on ``RunResult.profile``.
        self.profile = profile
        self.last_profile: Optional[Dict[str, object]] = None
        #: Controller hot-loop implementation ("fast" or "reference");
        #: ``None`` defers to ``REPRO_KERNEL`` / the repo default. The two
        #: kernels are bit-identical by contract (pinned by the kernel
        #: equivalence grid), so this deliberately does NOT enter run-cache
        #: or store keys — switching kernels must never fork result sets.
        self.kernel = kernel
        #: Where app names resolve to traces: the default source serves
        #: synthetic profiles and registered library traces alike (see
        #: :mod:`repro.traces.source`).
        #: When both are set, every cacheable mix run writes a checkpoint
        #: to ``safepoint_dir/<store_key>.ckpt`` every ``safepoint_every``
        #: cycles and *resumes from* a matching checkpoint left behind by a
        #: killed or timed-out predecessor. The checkpoint is deleted once
        #: the run completes. Resumed runs are bit-identical to
        #: uninterrupted ones (pinned by the kernel-golden checkpoint grid).
        self.safepoint_every = safepoint_every
        self.safepoint_dir = safepoint_dir
        #: Retry attempt this Runner hand-off serves (set by the campaign
        #: executor before each submission). Only consumed by the fault
        #: harness so ``times=N`` checkpoint-write faults stop firing once
        #: the campaign has moved past attempt N.
        self.fault_attempt = 1
        self.trace_source: TraceSource = (
            trace_source if trace_source is not None else DefaultTraceSource()
        )
        self._trace_cache: Dict[tuple, Trace] = {}
        self._alone_cache: Dict[tuple, float] = {}
        self._run_cache: Dict[tuple, RunResult] = {}

    # ------------------------------------------------------------------
    def _source_key(self, app: str) -> tuple:
        """The trace source's identity key for ``app`` under this scope.

        For synthetic apps this is (app, seed, target_insts) — the full
        generator input — so mutating the Runner's fields can never serve
        a stale trace; for library traces it is (app, content digest).
        """
        return self.trace_source.cache_key(
            app, self.seed, self.target_insts
        )

    def trace_for(self, app: str) -> Trace:
        """The (cached) trace for one application — synthetic or library."""
        key = self._source_key(app)
        trace = self._trace_cache.get(key)
        if trace is None:
            trace = self.trace_source.trace_for(
                app, self.seed, self.target_insts
            )
            self._trace_cache[key] = trace
        return trace

    def library_digests(self, apps: Sequence[str]) -> Dict[str, str]:
        """{app: digest} for the library-resolved apps among ``apps``.

        Empty for all-synthetic runs, which keeps their store keys (and
        therefore every previously-persisted result) unchanged.
        """
        digests: Dict[str, str] = {}
        for app in apps:
            digest = self.trace_source.digest_for(app)
            if digest is not None:
                digests[app] = digest
        return digests

    def alone_ipc(self, app: str) -> float:
        """IPC of ``app`` running alone on the full machine (cached)."""
        key = self._source_key(app)
        ipc = self._alone_cache.get(key)
        if ipc is None:
            tracer = current_tracer()
            started = now_us() if tracer is not None else 0
            config = replace(self.config, num_cores=1)
            config = config.with_scheduler("frfcfs")
            system = System(
                config,
                [self.trace_for(app)],
                horizon=self.horizon,
                validate=self.validate,
                ahead_limit=self.ahead_limit,
                kernel=self.kernel,
            )
            result = system.run()
            if tracer is not None:
                tracer.complete(
                    "alone-run", started, now_us() - started, app=app
                )
            ipc = result.threads[0].ipc
            if ipc <= 0:
                raise ExperimentError(f"alone run of {app!r} retired nothing")
            self._alone_cache[key] = ipc
        return ipc

    # ------------------------------------------------------------------
    def run_cache_key(self, apps: Sequence[str], approach: str) -> tuple:
        """In-memory cache key binding the *resolved* approach.

        Includes the policy and scheduler names and parameters the approach
        label resolves to, so two registrations sharing a label can never
        collide — in this cache or in the persistent store's hash. Library
        traces contribute their content digests, so re-registering a name
        with different records can never serve a stale run either.
        """
        spec = get_approach(approach)
        return (
            tuple(apps),
            approach,
            spec.policy,
            tuple(sorted(spec.policy_params.items())),
            spec.scheduler,
            tuple(sorted(spec.scheduler_params.items())),
            tuple(sorted(self.library_digests(apps).items())),
        )

    def cached_run(
        self, apps: Sequence[str], approach: str
    ) -> Optional[RunResult]:
        """The in-memory cached result for (apps, approach), if any."""
        return self._run_cache.get(self.run_cache_key(apps, approach))

    def adopt_result(
        self, apps: Sequence[str], approach: str, result: RunResult
    ) -> None:
        """Insert an externally-computed result (e.g. a campaign worker's).

        The caller asserts the result came from this Runner's exact scope
        (config, seed, horizon, target_insts) — the campaign store key
        guarantees that for results fetched through it.
        """
        self._run_cache[self.run_cache_key(apps, approach)] = result

    def _store_key(self, apps: Sequence[str], approach: str) -> str:
        from ..campaign.store import run_key

        return run_key(
            self.config,
            apps,
            approach,
            seed=self.seed,
            horizon=self.horizon,
            target_insts=self.target_insts,
            ahead_limit=self.ahead_limit,
            validate=self.validate,
            trace_digests=self.library_digests(apps),
        )

    def run_apps(
        self,
        apps: Sequence[str],
        approach: str,
        mix_name: Optional[str] = None,
    ) -> RunResult:
        """Run a list of applications under a named approach.

        Results are cached per (apps, resolved approach): experiments that
        share runs (e.g. the WS and MS views of the same sweep) pay for
        them once per process — and, when a persistent ``store`` is
        attached, once *ever* per store.
        """
        cache_key = self.run_cache_key(apps, approach)
        cached = self._run_cache.get(cache_key)
        if cached is not None:
            return cached
        tracer = current_tracer()
        store_key = None
        if self.store is not None:
            store_key = self._store_key(apps, approach)
            hit = self.store.get(store_key)
            if hit is not None:
                result, _wall = hit
                self._run_cache[cache_key] = result
                # A cached run was not simulated here: any recorder on
                # last_telemetry — and any wall-clock profile on
                # last_profile — belongs to an earlier run, not this one.
                self.last_telemetry = None
                self.last_profile = None
                if tracer is not None:
                    tracer.instant(
                        "run-cached",
                        mix=mix_name or "+".join(apps),
                        approach=approach,
                    )
                return result
        run_started = now_us() if tracer is not None else 0
        started = time.perf_counter()
        spec = get_approach(approach)
        config = self._configure(spec, len(apps))
        ckpt_path: Optional[Path] = None
        hook: Optional[Callable[[System, int], None]] = None
        every: Optional[int] = None
        if self.safepoint_every and self.safepoint_dir is not None:
            if store_key is None:
                store_key = self._store_key(apps, approach)
            ckpt_path = Path(self.safepoint_dir) / f"{store_key}.ckpt"
            every = self.safepoint_every
            label = (
                f"{mix_name or '+'.join(apps)}/{approach} "
                f"s{self.seed} h{self.horizon}"
            )
            hook = self._safepoint_hook(
                ckpt_path, store_key, label, self.fault_attempt
            )
        sim_started = now_us() if tracer is not None else 0
        system = (
            self._restore_safepoint(ckpt_path, store_key)
            if ckpt_path is not None
            else None
        )
        if system is not None:
            recorder = system.telemetry
            result = system.resume(safepoint_every=every, on_safepoint=hook)
        else:
            traces = [self.trace_for(app) for app in apps]
            recorder = self._make_recorder()
            system = System(
                config,
                traces,
                horizon=self.horizon,
                policy=spec.make_policy(),
                validate=self.validate,
                ahead_limit=self.ahead_limit,
                telemetry=recorder,
                profile=self.profile,
                kernel=self.kernel,
            )
            result = system.run(safepoint_every=every, on_safepoint=hook)
        if tracer is not None:
            tracer.complete(
                "measure",
                sim_started,
                now_us() - sim_started,
                mix=mix_name or "+".join(apps),
                approach=approach,
                horizon=self.horizon,
            )
        if ckpt_path is not None:
            try:
                ckpt_path.unlink()
            except OSError:
                pass
        self.last_telemetry = recorder
        self.last_profile = (
            system.profile_report() if self.profile else None
        )
        shared = {t: result.threads[t].ipc for t in range(len(apps))}
        for thread_id, ipc in shared.items():
            if ipc <= 0:
                raise ExperimentError(
                    f"thread {thread_id} ({apps[thread_id]}) retired nothing "
                    f"under {approach}"
                )
        alone_started = now_us() if tracer is not None else 0
        alone = {t: self.alone_ipc(app) for t, app in enumerate(apps)}
        if tracer is not None:
            tracer.complete(
                "alone-baselines",
                alone_started,
                now_us() - alone_started,
                apps=list(apps),
            )
        metrics = WorkloadRunMetrics(
            mix=mix_name or "+".join(apps),
            approach=approach,
            summary=summarize(alone, shared),
            slowdowns=slowdowns(alone, shared),
            apps=tuple(apps),
        )
        run_result = RunResult(
            metrics=metrics,
            system=result,
            alone_ipcs=alone,
            shared_ipcs=shared,
            telemetry=recorder.summary() if recorder is not None else None,
            metrics_snapshot=system.metrics_registry().snapshot(),
            profile=self.last_profile,
        )
        self._run_cache[cache_key] = run_result
        if self.store is not None and store_key is not None:
            describe = {
                "mix": metrics.mix,
                "apps": list(apps),
                "approach": approach,
                "seed": self.seed,
                "horizon": self.horizon,
                "target_insts": self.target_insts,
            }
            digests = self.library_digests(apps)
            if digests:
                describe["trace_digests"] = digests
            if run_result.telemetry is not None:
                describe["telemetry"] = run_result.telemetry
            self.store.put(
                store_key,
                run_result,
                time.perf_counter() - started,
                describe=describe,
            )
        if tracer is not None:
            tracer.complete(
                "run",
                run_started,
                now_us() - run_started,
                mix=metrics.mix,
                approach=approach,
            )
        return run_result

    # ------------------------------------------------------------------
    # Safepoints (checkpointed mid-run state for fault-tolerant retries).
    # ------------------------------------------------------------------
    def _restore_safepoint(
        self, path: Path, run_key: Optional[str]
    ) -> Optional[System]:
        """A System resumed from ``path``, or None for scratch.

        A checkpoint that is corrupt (torn write, flipped bytes) or stale
        (foreign interpreter/format, different run) never aborts the run:
        it is discarded with a warning and the run starts from scratch.
        """
        from .checkpoint import (
            CheckpointError,
            load_checkpoint,
            read_checkpoint_header,
        )

        if not path.is_file():
            return None
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            header = read_checkpoint_header(blob)
            if header.get("meta", {}).get("run_key") != run_key:
                raise CheckpointError("checkpoint belongs to another run")
            system, _header = load_checkpoint(blob)
            if not isinstance(system, System):
                raise CheckpointError("checkpoint does not hold a System")
        except CheckpointError as error:
            warnings.warn(
                f"discarding unusable checkpoint {path.name}: {error}; "
                f"restarting from scratch",
                RuntimeWarning,
                stacklevel=3,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return system

    @staticmethod
    def _safepoint_hook(
        path: Path, run_key: str, fault_key: str, fault_attempt: int = 1
    ) -> Callable[[System, int], None]:
        """The per-safepoint callback: checkpoint the system to ``path``.

        A system that cannot be checkpointed (e.g. streaming telemetry
        holds an open file) disables safepoints for the rest of the run
        with a warning instead of failing it.
        """
        from .checkpoint import CheckpointError, write_checkpoint_file

        disabled = [False]

        def hook(system: System, cycle: int) -> None:
            if disabled[0]:
                return
            tracer = current_tracer()
            started = now_us() if tracer is not None else 0
            try:
                blob = system.checkpoint(meta={"run_key": run_key})
            except CheckpointError as error:
                disabled[0] = True
                warnings.warn(
                    f"safepoints disabled for this run: {error}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return
            write_checkpoint_file(
                path, blob,
                fault_key=fault_key,
                fault_attempt=fault_attempt,
            )
            if tracer is not None:
                tracer.complete(
                    "checkpoint-write",
                    started,
                    now_us() - started,
                    cycle=cycle,
                    bytes=len(blob),
                )

        return hook

    def run_mix(self, mix: Mix, approach: str) -> RunResult:
        """Run a named mix under a named approach."""
        return self.run_apps(list(mix.apps), approach, mix_name=mix.name)

    def run_custom(
        self,
        apps: Sequence[str],
        policy,
        scheduler: str = "frfcfs",
        label: str = "custom",
        mix_name: Optional[str] = None,
        **scheduler_params: object,
    ) -> RunResult:
        """Run with an explicit policy instance (sweeps and ablations).

        Not cached: policy instances carry their own state and parameters,
        so two calls with the same label are not necessarily the same run.
        """
        config = replace(self.config, num_cores=len(apps))
        config = config.with_scheduler(scheduler, **scheduler_params)
        traces = [self.trace_for(app) for app in apps]
        recorder = self._make_recorder()
        system = System(
            config,
            traces,
            horizon=self.horizon,
            policy=policy,
            validate=self.validate,
            ahead_limit=self.ahead_limit,
            telemetry=recorder,
            profile=self.profile,
            kernel=self.kernel,
        )
        result = system.run()
        self.last_telemetry = recorder
        self.last_profile = (
            system.profile_report() if self.profile else None
        )
        shared = {t: result.threads[t].ipc for t in range(len(apps))}
        for thread_id, ipc in shared.items():
            if ipc <= 0:
                raise ExperimentError(
                    f"thread {thread_id} ({apps[thread_id]}) retired nothing "
                    f"under {label}"
                )
        alone = {t: self.alone_ipc(app) for t, app in enumerate(apps)}
        metrics = WorkloadRunMetrics(
            mix=mix_name or "+".join(apps),
            approach=label,
            summary=summarize(alone, shared),
            slowdowns=slowdowns(alone, shared),
            apps=tuple(apps),
        )
        return RunResult(
            metrics=metrics,
            system=result,
            alone_ipcs=alone,
            shared_ipcs=shared,
            telemetry=recorder.summary() if recorder is not None else None,
            metrics_snapshot=system.metrics_registry().snapshot(),
            profile=self.last_profile,
        )

    # ------------------------------------------------------------------
    def _make_recorder(self) -> Optional[TelemetryRecorder]:
        """A fresh recorder when telemetry is enabled, else None."""
        if self.telemetry is None:
            return None
        return TelemetryRecorder(self.telemetry)

    # ------------------------------------------------------------------
    def _configure(self, spec: Approach, num_cores: int) -> SystemConfig:
        config = replace(self.config, num_cores=num_cores)
        return config.with_scheduler(spec.scheduler, **spec.scheduler_params)
