"""Versioned checkpoint codec for mid-run simulator state.

A checkpoint is the complete object graph of a paused :class:`System` —
engine agenda, controller queues and memo caches, cores, caches, policy and
scheduler state, RNG streams — serialized between two engine steps, when no
event is executing. The format is::

    MAGIC | u32 header length | header JSON | payload (pickle bytes)

The header carries the checkpoint format version, the interpreter tag, the
SHA-256 of the payload, and caller metadata (the run key, the cycle). The
digest is verified before a single payload byte is unpickled, so a torn or
bit-flipped file surfaces as :class:`CheckpointCorruptError` — never as a
silently wrong simulation.

Stock pickle refuses the agenda's callbacks: completion relays are lambdas
and nested closures (see ``System.access``), which have no importable name.
:class:`_SimPickler` extends pickle with a reducer for exactly those:
the code object travels by ``marshal``, globals re-bind to the defining
module on load, and defaults/closure-cell contents are restored through a
deferred state setter so cyclic graphs (a lambda whose closure reaches the
System that holds the agenda that holds the lambda) terminate via the
pickle memo. Closure *cells* are recreated per function rather than
shared; every closure in the simulator captures frame locals that are
never rebound after creation, so identity of the cells (as opposed to
their contents, which stay shared through the memo) is not observable.

``marshal`` code bytes are interpreter-specific, so the header pins the
CPython x.y tag; a checkpoint from another interpreter is *stale*
(:class:`CheckpointError`), not corrupt, and callers fall back to a
from-scratch run.
"""

from __future__ import annotations

import hashlib
import importlib
import io
import json
import marshal
import os
import pickle
import struct
import sys
import types
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError

#: Bump whenever the serialized layout (header or reducer contract)
#: changes incompatibly. Distinct from the store's ``STORE_VERSION``:
#: checkpoints are short-lived scratch state, not results.
CHECKPOINT_VERSION = 1

_MAGIC = b"RDBPCKPT\n"
_HEADER_LEN = struct.Struct(">I")


class CheckpointError(ReproError):
    """A checkpoint could not be produced or is unusable (e.g. stale)."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file is damaged: torn write, truncation, bad digest."""


def _interp_tag() -> str:
    return "%s-%d.%d" % (
        sys.implementation.name,
        sys.version_info[0],
        sys.version_info[1],
    )


# ---------------------------------------------------------------------------
# Function/closure reduction.
# ---------------------------------------------------------------------------
class _EmptyCell:
    """Sentinel for an unset closure cell (picklable singleton)."""

    _instance: Optional["_EmptyCell"] = None

    def __new__(cls) -> "_EmptyCell":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (_EmptyCell, ())


_EMPTY = _EmptyCell()


def _make_skeleton_function(
    code_bytes: bytes, module: str, qualname: str, n_cells: int
):
    """Rebuild a function shell: code + module globals + empty closure.

    Defaults and cell contents arrive later via :func:`_apply_function_state`
    — the two-phase construction is what lets pickle memoize the function
    before any (possibly self-referential) captured state is deserialized.
    """
    code = marshal.loads(code_bytes)
    try:
        globals_ = importlib.import_module(module).__dict__
    except Exception as error:  # pragma: no cover - module vanished
        raise CheckpointCorruptError(
            f"checkpointed function {qualname!r} needs module {module!r}: "
            f"{error}"
        ) from error
    closure = tuple(types.CellType() for _ in range(n_cells))
    func = types.FunctionType(
        code, globals_, code.co_name, None, closure or None
    )
    func.__qualname__ = qualname
    return func


def _apply_function_state(func, state) -> None:
    defaults, kwdefaults, cell_values = state
    func.__defaults__ = defaults
    if kwdefaults:
        func.__kwdefaults__ = dict(kwdefaults)
    for cell, value in zip(func.__closure__ or (), cell_values):
        if not isinstance(value, _EmptyCell):
            cell.cell_contents = value


def _cell_value(cell):
    try:
        return cell.cell_contents
    except ValueError:  # unset cell (still-building closure)
        return _EMPTY


class _SimPickler(pickle.Pickler):
    """Pickle extended with lambda/closure support (see module docstring)."""

    def reducer_override(self, obj):  # noqa: D102 - pickle API
        if isinstance(obj, types.FunctionType):
            qualname = obj.__qualname__ or ""
            if "<lambda>" in qualname or "<locals>" in qualname:
                return self._reduce_function(obj, qualname)
        return NotImplemented

    @staticmethod
    def _reduce_function(obj, qualname: str):
        closure = obj.__closure__ or ()
        state = (
            obj.__defaults__,
            obj.__kwdefaults__,
            tuple(_cell_value(cell) for cell in closure),
        )
        return (
            _make_skeleton_function,
            (
                marshal.dumps(obj.__code__),
                obj.__module__ or "builtins",
                qualname,
                len(closure),
            ),
            state,
            None,
            None,
            _apply_function_state,
        )


# ---------------------------------------------------------------------------
# Blob encode/decode.
# ---------------------------------------------------------------------------
def dump_checkpoint(root: Any, meta: Optional[Dict[str, Any]] = None) -> bytes:
    """Serialize ``root`` into a self-verifying checkpoint blob."""
    buffer = io.BytesIO()
    pickler = _SimPickler(buffer, protocol=5)
    try:
        pickler.dump(root)
    except (pickle.PicklingError, TypeError, AttributeError, ValueError) as e:
        raise CheckpointError(f"state is not checkpointable: {e}") from e
    payload = buffer.getvalue()
    header = {
        "version": CHECKPOINT_VERSION,
        "interp": _interp_tag(),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "payload_len": len(payload),
        "meta": dict(meta or {}),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    return (
        _MAGIC + _HEADER_LEN.pack(len(header_bytes)) + header_bytes + payload
    )


def read_checkpoint_header(blob: bytes) -> Dict[str, Any]:
    """Parse and validate the header without touching the payload digest.

    Cheap pre-check for "is this checkpoint even for my run / my
    interpreter" before paying for unpickling. Raises
    :class:`CheckpointCorruptError` for structural damage and
    :class:`CheckpointError` for a readable-but-unusable checkpoint
    (foreign format version or interpreter).
    """
    if not blob.startswith(_MAGIC):
        raise CheckpointCorruptError("not a checkpoint (bad magic)")
    offset = len(_MAGIC)
    if len(blob) < offset + _HEADER_LEN.size:
        raise CheckpointCorruptError("checkpoint truncated inside header")
    (header_len,) = _HEADER_LEN.unpack_from(blob, offset)
    offset += _HEADER_LEN.size
    header_bytes = blob[offset : offset + header_len]
    if len(header_bytes) < header_len:
        raise CheckpointCorruptError("checkpoint truncated inside header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise CheckpointCorruptError(
            f"checkpoint header is not valid JSON: {error}"
        ) from error
    if not isinstance(header, dict):
        raise CheckpointCorruptError("checkpoint header is not an object")
    if header.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint format version {header.get('version')!r} != "
            f"{CHECKPOINT_VERSION}"
        )
    if header.get("interp") != _interp_tag():
        raise CheckpointError(
            f"checkpoint written by {header.get('interp')!r}, "
            f"this interpreter is {_interp_tag()!r}"
        )
    header["_payload_offset"] = offset + header_len
    return header


def load_checkpoint(blob: bytes) -> Tuple[Any, Dict[str, Any]]:
    """Verify and deserialize a checkpoint blob; returns (root, header)."""
    header = read_checkpoint_header(blob)
    payload = blob[header["_payload_offset"] :]
    if len(payload) != header.get("payload_len"):
        raise CheckpointCorruptError(
            f"checkpoint payload is {len(payload)} bytes, header promises "
            f"{header.get('payload_len')}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CheckpointCorruptError(
            "checkpoint payload digest mismatch (torn or corrupted write)"
        )
    try:
        root = pickle.loads(payload)
    except CheckpointError:
        raise
    except Exception as error:
        raise CheckpointCorruptError(
            f"checkpoint payload does not unpickle: {error}"
        ) from error
    return root, header


# ---------------------------------------------------------------------------
# File helpers (safepoints on disk).
# ---------------------------------------------------------------------------
def write_checkpoint_file(
    path, blob: bytes, fault_key: str = "", fault_attempt: int = 1
) -> Path:
    """Atomically persist a checkpoint blob (tmp file + rename).

    The deterministic fault harness can intercept this write (site
    ``checkpoint.write``, addressed by the run's ``fault_key`` on the
    caller's ``fault_attempt``):

    * kind ``torn_checkpoint`` leaves a half-written file at the *final*
      path — exactly what a crash between ``write`` and ``fsync`` on a
      non-atomic writer produces — and raises, so resume paths must
      survive it via the digest check;
    * kind ``transient`` completes the write and *then* raises — a worker
      dying right after the flush — so retries must resume from the
      checkpoint just written.
    """
    from ..faults import check_fault  # local import: faults is optional

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    spec = check_fault("checkpoint.write", key=fault_key, attempt=fault_attempt)
    if spec is not None and spec.kind == "torn_checkpoint":
        from ..faults import TransientFaultError

        path.write_bytes(blob[: max(len(_MAGIC) + 2, len(blob) // 2)])
        raise TransientFaultError(
            f"injected torn checkpoint write at {path}"
        )
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_bytes(blob)
    os.replace(tmp, path)
    if spec is not None and spec.kind == "transient":
        from ..faults import TransientFaultError

        raise TransientFaultError(
            f"injected worker death right after checkpoint flush to {path}"
        )
    return path


def read_checkpoint_file(path) -> Tuple[Any, Dict[str, Any]]:
    """Load a checkpoint file; OSError maps to :class:`CheckpointError`."""
    try:
        blob = Path(path).read_bytes()
    except OSError as error:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {error}"
        ) from error
    return load_checkpoint(blob)


def read_checkpoint_file_header(path) -> Dict[str, Any]:
    """Header of a checkpoint file without deserializing the payload."""
    try:
        blob = Path(path).read_bytes()
    except OSError as error:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {error}"
        ) from error
    return read_checkpoint_header(blob)
