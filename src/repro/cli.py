"""Command-line interface: ``repro-dbp`` (or ``python -m repro``).

Subcommands:

* ``list``     — experiments, approaches, applications, mixes;
  ``--tunables`` adds each approach's declared parameter space.
* ``run``      — run one experiment by id and print its table; ``--jobs``
  fans its sweeps out over worker processes.
* ``campaign`` — run a (mix x approach x seed) grid in parallel, backed by
  the persistent result store (re-runs are served from disk); ``--gates``
  evaluates the paper-claim acceptance gates over the finished grid and
  sets the exit code.
* ``results``  — the result service over the store: ``results index``
  syncs the SQLite index from the blobs, ``results query`` filters runs
  and derived views (rollups, pair deltas, intensity breakdowns),
  ``results compare`` A/B-diffs two campaigns or store snapshots, and
  ``results gates`` evaluates the C1-C3 acceptance gates (or a custom
  JSON gates file) with a machine-readable report, and ``results
  perf-trend`` ingests ``benchmarks/BENCH_*.json`` trajectories into the
  index and flags perf regressions (the perf-observatory CI hook).
* ``store``    — blob-store maintenance: ``store stats`` (entries, bytes,
  quarantine and index state), ``store ls`` (entries or quarantined
  files), ``store gc`` (prune quarantined/tmp/stale files).
* ``tune``     — auto-tuning over the declared parameter spaces:
  ``tune run`` drives a seeded search strategy (random | halving | tpe)
  with the campaign grid as the objective (every simulation lands in the
  content-addressed store, so repeated points are cache hits and
  re-running a study is nearly free), ``tune report`` lists recorded
  studies and their trials, ``tune frontier`` renders the WS-vs-MS
  Pareto frontier of tuned points against the paper default with an
  explicit dominance verdict.
* ``mix``      — run a single mix under one or more approaches.
* ``trace``    — run one mix with per-epoch telemetry and print the epoch
  timeline and the policy's decisions table (optionally export or stream
  JSONL); ``--from-jsonl`` renders a stored stream without re-simulating.
* ``metrics``  — run one mix and print the simulator-wide metrics registry
  snapshot in Prometheus text (or JSON) form.
* ``perf``     — run one mix with profiling and print the wall-clock
  component profile plus the fast-kernel introspection counters (wake-memo
  short-circuit ratio, best-memo hit rate, scan lengths, cas-floor reuse).
* ``traces``   — the workload trace library: ``traces import`` parses an
  external ChampSim/DRAMSim-style dump (or ``.rtrc``), characterizes it
  alone, and registers it as a first-class app; ``traces list`` / ``info``
  / ``export`` browse and extract the catalogue. ``traces APP...`` (legacy
  form) analyzes generated traces.
* ``config``   — print the simulated system configuration.

Anywhere a mix name is accepted, an ad-hoc ``app1+app2`` spec works too —
including library-trace names — so an imported real trace can be run
against synthetic apps without editing the mix table.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .core.integration import APPROACHES
from .errors import ReproError
from .experiments import EXPERIMENTS, run_experiment
from .sim.runner import Runner
from .workloads import MIXES, resolve_mix
from .workloads.mixes import MAIN_MIXES
from .workloads.profiles import APP_PROFILES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dbp",
        description=(
            "Dynamic Bank Partitioning (HPCA 2014) reproduction: run the "
            "reconstructed tables and figures or individual workload mixes."
        ),
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=400_000,
        help="simulated CPU cycles per run (default 400000)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload generation seed"
    )
    parser.add_argument(
        "--kernel",
        choices=("fast", "reference"),
        default=None,
        help=(
            "controller hot-loop implementation (default: REPRO_KERNEL env "
            "or 'fast'); results are bit-identical either way"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser(
        "list", help="list experiments, approaches, apps, mixes"
    )
    list_parser.add_argument(
        "--tunables",
        action="store_true",
        help="also print each approach's declared tunable-parameter space",
    )
    sub.add_parser("config", help="print the system configuration")

    run_parser = sub.add_parser("run", help="run one experiment by id")
    run_parser.add_argument("experiment", help="experiment id, e.g. F2")
    run_parser.add_argument(
        "--mixes",
        nargs="*",
        default=None,
        help="restrict sweep experiments to these mixes",
    )
    run_parser.add_argument(
        "--format",
        choices=["table", "csv", "json"],
        default="table",
        help="output format (default: table)",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep experiments (default 1 = serial)",
    )
    run_parser.add_argument(
        "--store",
        nargs="?",
        const="auto",
        default=None,
        metavar="DIR",
        help=(
            "persist runs to the content-addressed result store "
            "(default location when DIR omitted)"
        ),
    )

    campaign_parser = sub.add_parser(
        "campaign",
        help="run a mix x approach x seed grid in parallel, resumably",
    )
    campaign_parser.add_argument(
        "--mixes",
        nargs="*",
        default=None,
        help=f"mix names (default: the main evaluation set {list(MAIN_MIXES)})",
    )
    campaign_parser.add_argument(
        "--approaches",
        nargs="*",
        default=None,
        help="approach names (default: shared-frfcfs ebp dbp — the F2/F3 grid)",
    )
    campaign_parser.add_argument(
        "--seeds",
        nargs="*",
        type=int,
        default=None,
        help="workload seeds (default: the global --seed)",
    )
    campaign_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    campaign_parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts for a failed/crashed run (default 1)",
    )
    campaign_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-run timeout in seconds (default: none)",
    )
    campaign_parser.add_argument(
        "--backoff",
        type=float,
        default=0.25,
        help="base of the exponential retry backoff in seconds (default 0.25)",
    )
    campaign_parser.add_argument(
        "--quarantine-after",
        type=int,
        default=2,
        help=(
            "deterministic failures before a spec is quarantined instead "
            "of retried (default 2)"
        ),
    )
    campaign_parser.add_argument(
        "--safepoint-every",
        type=int,
        default=None,
        metavar="CYCLES",
        help=(
            "checkpoint running simulations every CYCLES cycles so a "
            "killed or timed-out run resumes from its last safepoint"
        ),
    )
    campaign_parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help=(
            "inject the deterministic fault plan into every worker "
            "(chaos testing; see repro.faults)"
        ),
    )
    campaign_parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="result store directory (default: benchmarks/results/store)",
    )
    campaign_parser.add_argument(
        "--no-store",
        action="store_true",
        help="do not read or write the persistent store",
    )
    campaign_parser.add_argument(
        "--format",
        choices=["table", "json"],
        default="table",
        help="output format (default: table)",
    )
    campaign_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-run progress lines on stderr",
    )
    campaign_parser.add_argument(
        "--telemetry",
        action="store_true",
        help="record per-epoch telemetry and attach summaries to the store",
    )
    campaign_parser.add_argument(
        "--gates",
        action="store_true",
        help=(
            "evaluate the paper-claim acceptance gates (C1-C3) over the "
            "finished campaign; a failed gate fails the command"
        ),
    )
    campaign_parser.add_argument(
        "--gates-claims",
        nargs="*",
        default=None,
        metavar="CLAIM",
        help="restrict --gates to these claim ids (e.g. C1)",
    )
    campaign_parser.add_argument(
        "--spans",
        default=None,
        metavar="PATH",
        help=(
            "write a merged Chrome-trace span timeline (supervisor + all "
            "workers) to PATH; open it in Perfetto or chrome://tracing"
        ),
    )

    results_parser = sub.add_parser(
        "results",
        help="result service: index | query | compare | gates",
    )
    results_sub = results_parser.add_subparsers(
        dest="results_verb", required=True
    )

    def _add_index_source(p, with_db: bool = True) -> None:
        p.add_argument(
            "--store",
            default=None,
            metavar="DIR",
            help="store directory (default: benchmarks/results/store)",
        )
        if with_db:
            p.add_argument(
                "--db",
                default=None,
                metavar="PATH",
                help=(
                    "SQLite index file (default: index.sqlite inside the "
                    "store directory)"
                ),
            )

    rindex = results_sub.add_parser(
        "index", help="sync the SQLite index from the blob store"
    )
    _add_index_source(rindex)
    rindex.add_argument(
        "--no-prune",
        action="store_true",
        help="keep index rows whose blob entry disappeared",
    )

    rquery = results_sub.add_parser(
        "query", help="query indexed runs and derived views"
    )
    _add_index_source(rquery)
    rquery.add_argument(
        "--view",
        choices=["runs", "rollup", "deltas", "intensity"],
        default="runs",
        help="what to show (default: runs)",
    )
    rquery.add_argument(
        "--pair",
        nargs=2,
        default=None,
        metavar=("BETTER", "BASELINE"),
        help="approach pair for --view deltas (e.g. dbp ebp)",
    )
    rquery.add_argument("--mix", default=None, help="filter: mix name")
    rquery.add_argument(
        "--approach", default=None, help="filter: approach name"
    )
    rquery.add_argument(
        "--run-seed", type=int, default=None, help="filter: workload seed"
    )
    rquery.add_argument(
        "--run-horizon", type=int, default=None, help="filter: horizon"
    )
    rquery.add_argument(
        "--all-versions",
        action="store_true",
        help="include rows from other STORE_VERSIONs",
    )
    rquery.add_argument(
        "--format",
        choices=["table", "json"],
        default="table",
        help="output format (default: table)",
    )

    rcompare = results_sub.add_parser(
        "compare",
        help="A/B diff two campaigns (index files or store directories)",
    )
    rcompare.add_argument(
        "side_a", metavar="A", help="index.sqlite file or store directory"
    )
    rcompare.add_argument(
        "side_b", metavar="B", help="index.sqlite file or store directory"
    )
    rcompare.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        metavar="PCT",
        help="metric-delta tolerance in percent (default 0.5)",
    )
    rcompare.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit non-zero when any run regressed beyond tolerance",
    )
    rcompare.add_argument(
        "--format",
        choices=["table", "json"],
        default="table",
        help="output format (default: table)",
    )

    rtrend = results_sub.add_parser(
        "perf-trend",
        help=(
            "ingest benchmarks/BENCH_*.json into the index and flag perf "
            "regressions"
        ),
    )
    _add_index_source(rtrend)
    rtrend.add_argument(
        "--bench-dir",
        default="benchmarks",
        metavar="DIR",
        help="directory holding BENCH_*.json snapshots (default: benchmarks)",
    )
    rtrend.add_argument(
        "--benchmark",
        default=None,
        help="show only this benchmark's trajectory",
    )
    rtrend.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        metavar="FRACTION",
        help=(
            "allowed fractional throughput drop below the best earlier "
            "trajectory entry (default 0.10)"
        ),
    )
    rtrend.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when any regression is flagged (the CI hook)",
    )
    rtrend.add_argument(
        "--format",
        choices=["table", "json"],
        default="table",
        help="output format (default: table)",
    )

    rgates = results_sub.add_parser(
        "gates", help="evaluate paper-claim acceptance gates"
    )
    _add_index_source(rgates)
    rgates.add_argument(
        "--claims",
        nargs="*",
        default=None,
        metavar="CLAIM",
        help="restrict to these claim ids (e.g. C1 C3; default: all)",
    )
    rgates.add_argument(
        "--gates-file",
        default=None,
        metavar="JSON",
        help="evaluate gates from a JSON file instead of the built-ins",
    )
    rgates.add_argument(
        "--run-seed", type=int, default=None, help="scope: workload seed"
    )
    rgates.add_argument(
        "--run-horizon", type=int, default=None, help="scope: horizon"
    )
    rgates.add_argument(
        "--strict",
        action="store_true",
        help="treat skipped gates (missing runs) as failures",
    )
    rgates.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the machine-readable JSON report to PATH",
    )
    rgates.add_argument(
        "--format",
        choices=["table", "json"],
        default="table",
        help="output format (default: table)",
    )

    store_parser = sub.add_parser(
        "store", help="blob-store maintenance: stats | ls | gc"
    )
    store_sub = store_parser.add_subparsers(dest="store_verb", required=True)
    sstats = store_sub.add_parser(
        "stats", help="entry/quarantine/index accounting for a store"
    )
    _add_index_source(sstats, with_db=False)
    sstats.add_argument(
        "--format",
        choices=["table", "json"],
        default="table",
        help="output format (default: table)",
    )
    sls = store_sub.add_parser("ls", help="list store entries")
    _add_index_source(sls, with_db=False)
    sls.add_argument(
        "--corrupt",
        action="store_true",
        help="list quarantined .corrupt files instead of entries",
    )
    sls.add_argument(
        "--limit",
        type=int,
        default=50,
        metavar="N",
        help="show at most N entries (default 50; 0 = no limit)",
    )
    sgc = store_sub.add_parser(
        "gc", help="prune quarantined and orphaned-tmp files"
    )
    _add_index_source(sgc, with_db=False)
    sgc.add_argument(
        "--stale",
        action="store_true",
        help="also delete entries written by another STORE_VERSION",
    )
    sgc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be deleted without deleting",
    )

    tune_parser = sub.add_parser(
        "tune",
        help="auto-tune policy parameters: run | report | frontier",
    )
    tune_sub = tune_parser.add_subparsers(dest="tune_verb", required=True)

    trun = tune_sub.add_parser(
        "run",
        help=(
            "run one seeded tuning study (full horizon = the global "
            "--horizon, seed = the global --seed)"
        ),
    )
    trun.add_argument(
        "--approach",
        default="dbp",
        help="base approach to tune (default: dbp)",
    )
    trun.add_argument(
        "--strategy",
        choices=["random", "halving", "tpe"],
        default="halving",
        help="search strategy (default: halving)",
    )
    trun.add_argument(
        "--budget",
        type=int,
        default=12,
        help="searched trials, excluding the free baseline (default 12)",
    )
    trun.add_argument(
        "--objective",
        choices=["balanced", "ws", "hs", "ms"],
        default="balanced",
        help="scalar objective over the mix set (default: balanced = WS/MS)",
    )
    trun.add_argument(
        "--mixes",
        nargs="*",
        default=None,
        help="mix names to score over (default: M4 M7)",
    )
    trun.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    trun.add_argument(
        "--study",
        default=None,
        help="study name (default: APPROACH-STRATEGY-OBJECTIVE-sSEED)",
    )
    trun.add_argument(
        "--screen-fidelity",
        type=float,
        default=None,
        metavar="FRACTION",
        help="halving: screening-rung horizon fraction (default 0.25)",
    )
    trun.add_argument(
        "--survivors",
        type=float,
        default=None,
        metavar="FRACTION",
        help="halving: fraction of the cohort promoted (default 0.25)",
    )
    trun.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts for a failed run (default 1)",
    )
    trun.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-run timeout in seconds (default: none)",
    )
    _add_index_source(trun)
    trun.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-trial progress lines on stderr",
    )
    trun.add_argument(
        "--format",
        choices=["table", "json"],
        default="table",
        help="output format (default: table)",
    )

    treport = tune_sub.add_parser(
        "report", help="list recorded studies (or one study's trials)"
    )
    _add_index_source(treport)
    treport.add_argument(
        "--study", default=None, help="show this study's trials in full"
    )
    treport.add_argument(
        "--format",
        choices=["table", "json"],
        default="table",
        help="output format (default: table)",
    )

    tfrontier = tune_sub.add_parser(
        "frontier",
        help="WS-vs-MS Pareto frontier of a study vs the paper default",
    )
    _add_index_source(tfrontier)
    tfrontier.add_argument(
        "--study",
        default=None,
        help="study name (default: the only recorded study)",
    )
    tfrontier.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the machine-readable JSON frontier to PATH",
    )
    tfrontier.add_argument(
        "--format",
        choices=["table", "json"],
        default="table",
        help="output format (default: table)",
    )

    trace_parser = sub.add_parser(
        "trace",
        help="run one mix with telemetry; print epoch timeline + decisions",
    )
    trace_parser.add_argument(
        "mix",
        nargs="?",
        default=None,
        help="mix name, e.g. M4 (omit with --from-jsonl)",
    )
    trace_parser.add_argument(
        "--approach",
        default="dbp-tcm",
        help="approach to trace (default: dbp-tcm)",
    )
    trace_parser.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="show only the newest N epochs in the timeline",
    )
    trace_parser.add_argument(
        "--jsonl",
        default=None,
        metavar="PATH",
        help="also export every recorded epoch as JSON lines to PATH",
    )
    trace_parser.add_argument(
        "--stream",
        default=None,
        metavar="PATH",
        help=(
            "stream every epoch to a rotating JSONL file during the run "
            "(history beyond --capacity survives on disk)"
        ),
    )
    trace_parser.add_argument(
        "--from-jsonl",
        default=None,
        metavar="PATH",
        help=(
            "render the timeline and decisions from a stored telemetry "
            "stream instead of simulating"
        ),
    )
    trace_parser.add_argument(
        "--capacity",
        type=int,
        default=4096,
        help="telemetry ring-buffer capacity in epochs (default 4096)",
    )
    trace_parser.add_argument(
        "--profile",
        action="store_true",
        help="also print wall-clock profile (cycles/sec, per-component)",
    )
    trace_parser.add_argument(
        "--spans",
        default=None,
        metavar="PATH",
        help=(
            "record hierarchical wall-clock spans (run, phases, policy "
            "epochs, migration bursts) as Chrome trace events to PATH"
        ),
    )

    perf_parser = sub.add_parser(
        "perf",
        help=(
            "run one mix with profiling and print the wall-clock profile "
            "plus the fast-kernel introspection counters"
        ),
    )
    perf_parser.add_argument(
        "mix",
        nargs="?",
        default="M4",
        help="mix name (default: M4, the kernel-benchmark workload)",
    )
    perf_parser.add_argument(
        "--approach",
        default="dbp-tcm",
        help="approach to profile (default: dbp-tcm)",
    )
    perf_parser.add_argument(
        "--format",
        choices=["table", "json"],
        default="table",
        help="output format (default: table)",
    )

    metrics_parser = sub.add_parser(
        "metrics",
        help="run one mix and print the metrics-registry snapshot",
    )
    metrics_parser.add_argument("mix", help="mix name, e.g. M4")
    metrics_parser.add_argument(
        "--approach",
        default="dbp-tcm",
        help="approach to run (default: dbp-tcm)",
    )
    metrics_parser.add_argument(
        "--format",
        choices=["prom", "json"],
        default="prom",
        help="Prometheus text (default) or the raw snapshot as JSON",
    )

    mix_parser = sub.add_parser("mix", help="run one mix under approaches")
    mix_parser.add_argument("mix", help="mix name, e.g. M1")
    mix_parser.add_argument(
        "approaches",
        nargs="*",
        default=["shared-frfcfs", "ebp", "dbp"],
        help="approach names (default: shared-frfcfs ebp dbp)",
    )
    mix_parser.add_argument(
        "--profile",
        action="store_true",
        help="print a wall-clock profile after each approach",
    )

    traces_parser = sub.add_parser(
        "traces",
        help=(
            "trace library (import | list | info NAME | export NAME), "
            "or analyze generated traces: traces APP..."
        ),
    )
    traces_parser.add_argument(
        "apps",
        nargs="+",
        metavar="ARG",
        help=(
            "'import PATH', 'list', 'info NAME', 'export NAME', or "
            "application names to analyze (e.g. mcf libquantum)"
        ),
    )
    traces_parser.add_argument(
        "--library",
        default=None,
        metavar="DIR",
        help="trace library directory (default: benchmarks/traces/library)",
    )
    traces_parser.add_argument(
        "--name",
        default=None,
        help="import: register under this name (default: file basename)",
    )
    traces_parser.add_argument(
        "--format",
        dest="trace_format",
        choices=["auto", "champsim", "dramsim", "rtrc", "text"],
        default="auto",
        help="import: input trace format (default: auto-detect)",
    )
    traces_parser.add_argument(
        "--to",
        default=None,
        metavar="PATH",
        help="export: destination file (default: ./<name>.rtrc)",
    )
    traces_parser.add_argument(
        "--export-format",
        choices=["rtrc", "text"],
        default="rtrc",
        help="export: output format (default: rtrc)",
    )
    traces_parser.add_argument(
        "--no-characterize",
        action="store_true",
        help="import: skip the alone-run characterization pass",
    )
    traces_parser.add_argument(
        "--override",
        action="store_true",
        help="import: replace an existing library/registry entry",
    )

    gen_parser = sub.add_parser(
        "gen-traces", help="export generated traces to files"
    )
    gen_parser.add_argument("apps", nargs="+", help="application names")
    gen_parser.add_argument(
        "--out", default=".", help="output directory (default: cwd)"
    )
    gen_parser.add_argument(
        "--format",
        dest="trace_format",
        choices=["text", "rtrc"],
        default="text",
        help="output format (default: text; rtrc is the binary library form)",
    )
    return parser


def _cmd_list(args: Optional[argparse.Namespace] = None) -> int:
    print("experiments:")
    for exp_id in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[exp_id].__doc__ or "").strip().splitlines()[0]
        print(f"  {exp_id:<3} {doc}")
    print("\napproaches:")
    for name in sorted(APPROACHES):
        print(f"  {name:<14} {APPROACHES[name].description}")
    if args is not None and getattr(args, "tunables", False):
        from .tuner.space import approach_space

        print("\ntunables (append @name=value,... to the approach name):")
        for name in sorted(APPROACHES):
            space = approach_space(name)
            if not len(space):
                print(f"  {name}: (no tunables)")
                continue
            print(f"  {name}:")
            for tunable in space.tunables:
                print(
                    f"    {tunable.name:<28} {tunable.kind:<6} "
                    f"{tunable.bounds_text():<24} "
                    f"default={tunable.default!r:<10} [{tunable.target}]"
                )
    print("\napplications:")
    for name in sorted(APP_PROFILES):
        profile = APP_PROFILES[name]
        print(
            f"  {name:<12} mpki={profile.mpki:<6} "
            f"rbh={profile.row_locality:<5} streams={profile.streams}"
        )
    print("\nmixes:")
    for name in sorted(MIXES, key=lambda n: (len(MIXES[n].apps), n)):
        mix = MIXES[name]
        print(f"  {mix.name:<4} [{mix.category:<5}] {' '.join(mix.apps)}")
    return 0


def _cmd_run(args: argparse.Namespace, runner: Runner) -> int:
    started = time.time()
    kwargs = {}
    exp = args.experiment.upper()
    if args.mixes and exp in (
        "F2", "F3", "F4", "F5", "F6", "F8", "F9", "F10", "F11", "F12", "F13",
    ):
        kwargs["mixes"] = args.mixes
    result = run_experiment(args.experiment, runner, **kwargs)
    if args.format == "csv":
        print(result.to_csv(), end="")
    elif args.format == "json":
        print(result.to_json())
    else:
        print(result.render())
        print(f"\n({time.time() - started:.1f}s simulated wall-clock)")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .campaign import (
        CampaignSpec,
        ProgressPrinter,
        ResultStore,
        aggregate_telemetry,
        default_store_dir,
        render_report,
        run_campaign,
    )

    spec = CampaignSpec(
        mixes=tuple(args.mixes) if args.mixes else tuple(MAIN_MIXES),
        approaches=(
            tuple(args.approaches)
            if args.approaches
            else ("shared-frfcfs", "ebp", "dbp")
        ),
        seeds=tuple(args.seeds) if args.seeds else (args.seed,),
        horizons=(args.horizon,),
        telemetry=args.telemetry,
    )
    plan = spec.plan()
    store = None
    if not args.no_store:
        store = ResultStore(args.store if args.store else default_store_dir())
    progress = ProgressPrinter(
        total=len(plan), jobs=args.jobs, enabled=not args.quiet
    )
    faults = None
    if args.faults:
        from .faults import FaultPlan

        faults = FaultPlan.load(args.faults)
    result = run_campaign(
        plan,
        jobs=args.jobs,
        store=store,
        retries=args.retries,
        timeout=args.timeout,
        progress=progress,
        persist=not args.no_store,
        backoff=args.backoff,
        quarantine_after=args.quarantine_after,
        safepoint_every=args.safepoint_every,
        faults=faults,
        spans=args.spans,
    )
    if args.spans and not args.quiet:
        print(f"wrote merged span timeline to {args.spans}", file=sys.stderr)
    gates_report = None
    if args.gates:
        from .results import evaluate_gates, index_outcomes

        gates_report = evaluate_gates(
            index_outcomes(result.outcomes), claims=args.gates_claims
        )
    if args.format == "json":
        doc = {
            "runs": [
                {
                    "mix": o.spec.mix_name or "+".join(o.spec.apps),
                    "approach": o.spec.approach,
                    "seed": o.spec.seed,
                    "horizon": o.spec.horizon,
                    "status": o.status,
                    "attempts": o.attempts,
                    "wall_clock": o.wall_clock,
                    "error": o.error,
                    "failure": o.failure.to_doc() if o.failure else None,
                    "metrics": (
                        {
                            "ws": o.result.metrics.weighted_speedup,
                            "hs": o.result.metrics.harmonic_speedup,
                            "ms": o.result.metrics.max_slowdown,
                        }
                        if o.result is not None
                        else None
                    ),
                }
                for o in result.outcomes
            ],
            "summary": {
                "total": len(result.outcomes),
                "executed": len(result.executed),
                "cached": len(result.cached),
                "failed": len(result.failed),
                "quarantined": len(result.quarantined),
                "cache_hit_rate": result.cache_hit_rate,
                "wall_clock": result.wall_clock,
                "time_lost_to_faults": result.time_lost_to_faults,
                "pool_respawns": result.pool_respawns,
                "store": store.stats.as_dict() if store else None,
                "telemetry": aggregate_telemetry(result.outcomes),
            },
        }
        if gates_report is not None:
            doc["gates"] = gates_report.as_dict()
        print(json.dumps(doc, indent=2))
    else:
        print(render_report(result, store))
        if gates_report is not None:
            print("\nAcceptance gates:")
            print(gates_report.render())
    if gates_report is not None and not gates_report.ok():
        return 1
    return 1 if (result.failed or result.quarantined) else 0


def _print_profile(report: dict) -> None:
    """Render one :meth:`System.profile_report` dict for the terminal."""
    print(
        f"profile: {report['cycles']} cycles in "
        f"{report['wall_seconds']:.2f}s "
        f"({report['cycles_per_second']:,.0f} cycles/sec, "
        f"{report['events']} events)"
    )
    for row in report["components"]:
        print(
            f"  {row['component']:<20} {row['seconds']:>8.3f}s "
            f"{100.0 * row['share']:>5.1f}%  {row['events']:>9} events"
        )


def _cmd_mix(args: argparse.Namespace, runner: Runner) -> int:
    mix = resolve_mix(args.mix)
    print(f"{mix.name}: {' '.join(mix.apps)}  [{mix.category}]")
    header = f"{'approach':<14} {'WS':>7} {'HS':>7} {'MS':>7}  slowdowns"
    print(header)
    print("-" * len(header))
    for approach in args.approaches:
        metrics = runner.run_mix(mix, approach).metrics
        downs = " ".join(
            f"{mix.apps[t]}={s:.2f}" for t, s in metrics.slowdowns.items()
        )
        print(
            f"{approach:<14} {metrics.weighted_speedup:>7.3f} "
            f"{metrics.harmonic_speedup:>7.3f} "
            f"{metrics.max_slowdown:>7.3f}  {downs}"
        )
        if runner.profile and runner.last_profile is not None:
            _print_profile(runner.last_profile)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .errors import ConfigError
    from .telemetry import (
        TelemetryConfig,
        load_stream,
        render_decisions,
        render_timeline,
    )

    if args.from_jsonl is not None:
        if args.mix is not None:
            raise ConfigError(
                "trace --from-jsonl renders a stored stream; "
                "do not also name a mix"
            )
        stored = load_stream(args.from_jsonl)
        print(
            f"telemetry stream {stored.source} "
            f"({stored.segments} segment(s), schema capacity "
            f"{stored.config.capacity})"
        )
        print(
            f"epochs={stored.epochs} quanta={stored.quanta} "
            f"policy_epochs={stored.policy_epochs} "
            f"dropped_epochs={stored.dropped_epochs}"
        )
        print("\nEpoch timeline (Q = scheduler quantum, P = policy epoch):")
        print(render_timeline(stored, last=args.last))
        print("\nPolicy decisions:")
        print(render_decisions(stored))
        return 0
    if args.mix is None:
        raise ConfigError("trace needs a mix name (or --from-jsonl PATH)")
    mix = resolve_mix(args.mix)
    runner = Runner(
        horizon=args.horizon,
        seed=args.seed,
        telemetry=TelemetryConfig(
            capacity=args.capacity, stream_path=args.stream
        ),
        profile=args.profile,
        kernel=getattr(args, "kernel", None),
    )
    tracer = None
    previous_tracer = None
    if args.spans:
        from .telemetry import SpanTracer, install_tracer

        tracer = SpanTracer("repro-dbp trace")
        previous_tracer = install_tracer(tracer)
    try:
        result = runner.run_mix(mix, args.approach)
    finally:
        if tracer is not None:
            from .telemetry import install_tracer

            install_tracer(previous_tracer)
            tracer.write(args.spans)
    recorder = runner.last_telemetry
    if recorder is None:  # pragma: no cover - trace never attaches a store
        print("error: no telemetry was recorded", file=sys.stderr)
        return 1
    metrics = result.metrics
    print(
        f"{mix.name} under {args.approach}  "
        f"(horizon {args.horizon}, seed {args.seed})"
    )
    print(
        f"WS={metrics.weighted_speedup:.3f} "
        f"HS={metrics.harmonic_speedup:.3f} "
        f"MS={metrics.max_slowdown:.3f}"
    )
    summary = result.telemetry or {}
    print(
        f"epochs={summary.get('epochs', 0)} "
        f"quanta={summary.get('quanta', 0)} "
        f"policy_epochs={summary.get('policy_epochs', 0)} "
        f"repartitions={summary.get('repartitions', '-')} "
        f"pages_migrated={summary.get('pages_migrated', '-')}"
    )
    if args.profile and runner.last_profile is not None:
        _print_profile(runner.last_profile)
    print("\nEpoch timeline (Q = scheduler quantum, P = policy epoch):")
    print(render_timeline(recorder, last=args.last))
    print("\nPolicy decisions:")
    print(render_decisions(recorder))
    if args.jsonl:
        recorder.dump_jsonl(args.jsonl)
        print(f"\nwrote {len(recorder.records)} epoch records to {args.jsonl}")
    if args.stream and recorder.stream is not None:
        print(
            f"\nstreamed {recorder.stream.records_written} epoch records "
            f"to {args.stream}"
        )
    if args.spans:
        print(f"\nwrote span timeline to {args.spans}")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from .metrics import kernel_counter_summary, render_kernel_summary

    mix = resolve_mix(args.mix)
    runner = Runner(
        horizon=args.horizon,
        seed=args.seed,
        profile=True,
        kernel=getattr(args, "kernel", None),
    )
    from .memctrl.controller import resolve_kernel

    result = runner.run_mix(mix, args.approach)
    summary = kernel_counter_summary(result.metrics_snapshot or {})
    kernel = resolve_kernel(runner.kernel)
    if args.format == "json":
        doc = {
            "mix": mix.name,
            "approach": args.approach,
            "horizon": args.horizon,
            "seed": args.seed,
            "kernel": kernel,
            "profile": runner.last_profile,
            "kernel_counters": summary,
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(
        f"{mix.name} under {args.approach}  "
        f"(horizon {args.horizon}, seed {args.seed}, kernel {kernel})"
    )
    if runner.last_profile is not None:
        _print_profile(runner.last_profile)
    print()
    print(render_kernel_summary(summary))
    if summary["decisions"] == 0:
        print(
            "\n(counters are all zero: the reference kernel records "
            "nothing — rerun with --kernel fast)"
        )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .metrics.registry import prometheus_text

    mix = resolve_mix(args.mix)
    runner = Runner(
        horizon=args.horizon,
        seed=args.seed,
        kernel=getattr(args, "kernel", None),
    )
    result = runner.run_mix(mix, args.approach)
    snapshot = result.metrics_snapshot or {"metrics": []}
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(prometheus_text(snapshot), end="")
    return 0


#: First positional tokens that select a trace-library verb rather than
#: the legacy "analyze these apps" form.
_LIBRARY_VERBS = ("import", "list", "info", "export")


def _cmd_traces(args: argparse.Namespace, runner: Runner) -> int:
    from .workloads import analyze_trace

    if args.apps[0] in _LIBRARY_VERBS:
        return _cmd_trace_library(args.apps[0], args.apps[1:], args, runner)
    for app in args.apps:
        print(analyze_trace(runner.trace_for(app)).render())
        print()
    return 0


def _cmd_trace_library(
    verb: str,
    operands: List[str],
    args: argparse.Namespace,
    runner: Runner,
) -> int:
    from .errors import ConfigError
    from .traces import TraceLibrary

    library = TraceLibrary(args.library)
    if verb == "import":
        if len(operands) != 1:
            raise ConfigError("usage: traces import PATH [--name N ...]")
        entry = library.import_file(
            operands[0],
            name=args.name,
            fmt=args.trace_format,
            characterize=not args.no_characterize,
            config=runner.config,
            horizon=args.horizon,
            override=args.override,
        )
        kind = "intensive" if entry.intensive else "light"
        print(
            f"imported {entry.name!r} from {operands[0]} "
            f"({entry.source_format}, {entry.records} records, "
            f"{entry.total_insts} insts, class {kind})"
        )
        print(f"  library: {library.root}")
        print(f"  digest:  {entry.digest}")
        if entry.characterization:
            c = entry.characterization
            print(
                f"  measured: mpki={c.get('mpki', 0.0):.2f} "
                f"rbh={c.get('rbh', 0.0):.3f} blp={c.get('blp', 0.0):.2f} "
                f"ipc_alone={c.get('ipc_alone', 0.0):.3f}"
            )
        print(f"usable in mixes now, e.g.: repro-dbp mix {entry.name}+lbm")
        return 0
    if verb == "list":
        entries = library.entries()
        if not entries:
            print(f"trace library {library.root} is empty")
            return 0
        print(f"trace library {library.root}:")
        header = (
            f"  {'name':<20} {'class':<9} {'records':>9} "
            f"{'insts':>11} {'mpki':>7}  digest"
        )
        print(header)
        print("  " + "-" * (len(header) - 2))
        for name in library.names():
            entry = entries[name]
            char = entry.get("characterization") or {}
            mpki = char.get("mpki")
            mpki_text = f"{mpki:>7.2f}" if mpki is not None else f"{'-':>7}"
            print(
                f"  {name:<20} {str(entry.get('class', '?')):<9} "
                f"{int(entry.get('records', 0)):>9} "
                f"{int(entry.get('total_insts', 0)):>11} "
                f"{mpki_text}  {str(entry['digest'])[:16]}…"
            )
        return 0
    if verb == "info":
        if len(operands) != 1:
            raise ConfigError("usage: traces info NAME")
        name = operands[0]
        entry = library.entry(name)
        print(f"{name}  ({library.path_for(name)})")
        print(f"  digest:        {entry['digest']}")
        print(f"  records:       {entry.get('records', 0)}")
        print(f"  total insts:   {entry.get('total_insts', 0)}")
        print(f"  source format: {entry.get('source_format', '?')}")
        print(f"  imported from: {entry.get('imported_from', '') or '-'}")
        print(f"  class:         {entry.get('class', '?')}")
        char = entry.get("characterization") or {}
        if char:
            print("  characterization (alone run):")
            for key in sorted(char):
                print(f"    {key:<16} {char[key]}")
        return 0
    if verb == "export":
        if len(operands) != 1:
            raise ConfigError("usage: traces export NAME [--to PATH]")
        name = operands[0]
        suffix = "rtrc" if args.export_format == "rtrc" else "trace"
        dest = args.to if args.to else f"{name}.{suffix}"
        library.export(name, dest, fmt=args.export_format)
        print(f"wrote {dest} ({args.export_format})")
        return 0
    raise ConfigError(f"unknown traces verb {verb!r}")  # pragma: no cover


def _cmd_gen_traces(args: argparse.Namespace, runner: Runner) -> int:
    import os

    from .cpu.trace import save_trace
    from .traces import save_rtrc

    os.makedirs(args.out, exist_ok=True)
    for app in args.apps:
        trace = runner.trace_for(app)
        if args.trace_format == "rtrc":
            path = os.path.join(args.out, f"{app}.rtrc")
            save_rtrc(
                trace,
                path,
                provenance={
                    "imported_from": f"synthetic:{app} seed={runner.seed}",
                    "source_format": "synthetic",
                },
            )
        else:
            path = os.path.join(args.out, f"{app}.trace")
            save_trace(trace, path)
        print(f"wrote {path} ({len(trace)} records)")
    return 0


def _store_dir(args: argparse.Namespace):
    from .campaign import default_store_dir

    return args.store if args.store else default_store_dir()


def _open_query_index(args: argparse.Namespace):
    """The index named by --db/--store, building it on first use.

    An explicit ``--db`` opens that SQLite file; otherwise the store
    directory's colocated index is opened, syncing it from the blobs when
    it does not exist yet (later freshness is the put-time hook's and
    ``results index``'s business).
    """
    from .results import index_path_for, open_index

    if getattr(args, "db", None):
        return open_index(args.db)
    root = _store_dir(args)
    return open_index(root, sync=not index_path_for(root).is_file())


def _cmd_results(args: argparse.Namespace) -> int:
    if args.results_verb == "index":
        return _cmd_results_index(args)
    if args.results_verb == "query":
        return _cmd_results_query(args)
    if args.results_verb == "compare":
        return _cmd_results_compare(args)
    if args.results_verb == "gates":
        return _cmd_results_gates(args)
    if args.results_verb == "perf-trend":
        return _cmd_results_perf_trend(args)
    raise ReproError(f"unknown results verb {args.results_verb!r}")


def _cmd_results_perf_trend(args: argparse.Namespace) -> int:
    from .results import (
        ResultIndex,
        bench_trend,
        check_bench_docs,
        index_path_for,
        load_bench_docs,
        render_findings,
        render_trend,
        sync_bench_dir,
    )

    docs = load_bench_docs(args.bench_dir)
    # Unlike the query verbs, perf-trend may be the first thing to touch
    # the index (CI runs it without ever building a store), so open the
    # index file directly — ResultIndex creates it and its parents.
    db_path = args.db if args.db else index_path_for(_store_dir(args))
    with ResultIndex(db_path) as index:
        count = sync_bench_dir(index, args.bench_dir)
        rows = bench_trend(index, benchmark=args.benchmark)
    findings = check_bench_docs(docs, tolerance=args.tolerance)
    if args.benchmark is not None:
        findings = [f for f in findings if f.benchmark == args.benchmark]
    if args.format == "json":
        doc = {
            "synced_samples": count,
            "trend": rows,
            "findings": [
                {
                    "benchmark": f.benchmark,
                    "kind": f.kind,
                    "date": f.date,
                    "message": f.message,
                }
                for f in findings
            ],
            "tolerance": args.tolerance,
        }
        print(json.dumps(doc, indent=2))
    else:
        print(f"synced {count} benchmark sample(s) from {args.bench_dir}")
        print(render_trend(rows))
        print()
        print(render_findings(findings))
    if args.check and findings:
        return 1
    return 0


def _cmd_results_index(args: argparse.Namespace) -> int:
    from .campaign import ResultStore
    from .results import ResultIndex, index_path_for

    root = _store_dir(args)
    store = ResultStore(root, index=False)
    db_path = args.db if args.db else index_path_for(root)
    with ResultIndex(db_path) as index:
        report = index.sync(store, prune=not args.no_prune)
        print(f"{db_path}: {report.render()}")
        for path in report.malformed_paths:
            print(f"  malformed: {path}", file=sys.stderr)
        print(f"index rows: {index.count()}")
    return 0


def _cmd_results_query(args: argparse.Namespace) -> int:
    from .errors import ConfigError
    from .results import (
        approach_rollup,
        intensity_breakdown,
        pair_deltas,
        render_intensity,
        render_pair_deltas,
        render_rollup,
    )

    with _open_query_index(args) as index:
        if args.view == "deltas":
            if not args.pair:
                raise ConfigError(
                    "results query --view deltas needs --pair BETTER BASELINE"
                )
            deltas = pair_deltas(
                index,
                args.pair[0],
                args.pair[1],
                mix=args.mix,
                seed=args.run_seed,
                horizon=args.run_horizon,
            )
            if args.format == "json":
                print(json.dumps(deltas.as_dict(), indent=2))
            else:
                print(render_pair_deltas(deltas))
            return 0
        if args.view == "rollup":
            rollup = approach_rollup(
                index,
                [args.approach] if args.approach else None,
                horizon=args.run_horizon,
            )
            if args.format == "json":
                print(json.dumps(rollup, indent=2, sort_keys=True))
            else:
                print(render_rollup(rollup))
            return 0
        if args.view == "intensity":
            breakdown = intensity_breakdown(
                index, [args.approach] if args.approach else None
            )
            if args.format == "json":
                print(json.dumps(breakdown, indent=2, sort_keys=True))
            else:
                print(render_intensity(breakdown))
            return 0
        rows = index.rows(
            mix=args.mix,
            approach=args.approach,
            seed=args.run_seed,
            horizon=args.run_horizon,
            current_version_only=not args.all_versions,
        )
        if args.format == "json":
            print(json.dumps(rows, indent=2))
            return 0
        from .experiments.report import render_table

        table_rows = [
            [
                r["mix"],
                r["approach"],
                "-" if r["seed"] is None else r["seed"],
                "-" if r["horizon"] is None else r["horizon"],
                round(float(r["ws"]), 3),
                round(float(r["hs"]), 3),
                round(float(r["ms"]), 3),
                str(r["key"])[:12] + "…",
            ]
            for r in rows
        ]
        print(
            render_table(
                ["mix", "approach", "seed", "horizon", "ws", "hs", "ms",
                 "key"],
                table_rows,
            )
        )
        print(f"{len(rows)} run(s)")
    return 0


def _cmd_results_compare(args: argparse.Namespace) -> int:
    from .results import compare_indexes, open_index, render_compare

    with open_index(args.side_a, sync=True) as index_a, open_index(
        args.side_b, sync=True
    ) as index_b:
        summary = compare_indexes(
            index_a,
            index_b,
            label_a=args.side_a,
            label_b=args.side_b,
            tolerance_pct=args.tolerance,
        )
    if args.format == "json":
        print(json.dumps(summary.as_dict(), indent=2))
    else:
        print(render_compare(summary))
    if args.fail_on_regression and summary.regressions:
        return 1
    return 0


def _cmd_results_gates(args: argparse.Namespace) -> int:
    from .results import PAPER_GATES, evaluate_gates, load_gates_file

    gates = (
        load_gates_file(args.gates_file) if args.gates_file else PAPER_GATES
    )
    with _open_query_index(args) as index:
        report = evaluate_gates(
            index,
            gates,
            claims=args.claims,
            horizon=args.run_horizon,
            seed=args.run_seed,
        )
    doc = report.as_dict(strict=args.strict)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=2)
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(doc, indent=2))
    else:
        print(report.render())
    return 0 if report.ok(strict=args.strict) else 1


def _cmd_tune(args: argparse.Namespace) -> int:
    if args.tune_verb == "run":
        return _cmd_tune_run(args)
    if args.tune_verb == "report":
        return _cmd_tune_report(args)
    if args.tune_verb == "frontier":
        return _cmd_tune_frontier(args)
    raise ReproError(f"unknown tune verb {args.tune_verb!r}")


def _cmd_tune_run(args: argparse.Namespace) -> int:
    from .campaign import ResultStore
    from .errors import ConfigError
    from .results import ResultIndex, index_path_for
    from .tuner import frontier_doc, render_frontier, run_study, trial_rows

    searcher_opts = {}
    if args.strategy == "halving":
        if args.survivors is not None:
            searcher_opts["survivor_fraction"] = args.survivors
        if args.screen_fidelity is not None:
            searcher_opts["screen_fidelity"] = args.screen_fidelity
    elif args.survivors is not None or args.screen_fidelity is not None:
        raise ConfigError(
            "--survivors/--screen-fidelity only apply to --strategy halving"
        )
    root = _store_dir(args)
    store = ResultStore(root)
    db_path = args.db if args.db else index_path_for(root)

    def _progress(trial) -> None:
        if args.quiet:
            return
        point = trial.point
        score = (
            f"score={trial.score:.4f}"
            if trial.score is not None
            else f"FAILED ({trial.error})"
        )
        label = "baseline" if trial.is_default else trial.approach
        print(
            f"  trial {point.trial_id:>3} rung {point.rung} "
            f"fid {point.fidelity:.2f} h={trial.horizon} "
            f"{label}: {score} "
            f"[{trial.cached}c/{trial.executed}x {trial.wall_clock:.1f}s]",
            file=sys.stderr,
        )

    with ResultIndex(db_path) as index:
        result = run_study(
            approach=args.approach,
            strategy=args.strategy,
            budget=args.budget,
            objective=args.objective,
            seed=args.seed,
            mixes=tuple(args.mixes) if args.mixes else ("M4", "M7"),
            horizon=args.horizon,
            store=store,
            index=index,
            jobs=args.jobs,
            study=args.study,
            progress=_progress,
            searcher_opts=searcher_opts or None,
            retries=args.retries,
            timeout=args.timeout,
        )
        rows = trial_rows(index, result.study)
    if args.format == "json":
        doc = {
            "study": result.study,
            "strategy": result.strategy,
            "objective": result.objective,
            "base_approach": result.base_approach,
            "mixes": result.mixes,
            "seed": result.seed,
            "trials": rows,
            "total_runs": result.total_runs,
            "cache_hits": result.cache_hits,
            "cache_hit_rate": result.cache_hit_rate,
            "wall_clock": result.wall_clock,
            "frontier": frontier_doc(rows),
        }
        print(json.dumps(doc, indent=2))
        return 0
    from .tuner import render_trials

    best = result.best
    print(
        f"study {result.study}: {len(result.trials)} trial(s) over "
        f"{'+'.join(result.mixes)} in {result.wall_clock:.1f}s"
    )
    print(
        f"{result.cache_hits}/{result.total_runs} cached "
        f"({100.0 * result.cache_hit_rate:.0f}% hit rate)"
    )
    if best is not None:
        print(f"best: {best.approach} ({result.objective}={best.score:.4f})")
    print()
    print(render_trials(rows))
    print()
    print(render_frontier(rows))
    return 0


def _tune_study_rows(args: argparse.Namespace, index) -> tuple:
    """(study, rows) for report/frontier, defaulting to the sole study."""
    from .errors import ConfigError
    from .tuner import studies, trial_rows

    study = args.study
    if study is None:
        recorded = [row["study"] for row in studies(index)]
        if not recorded:
            raise ConfigError(
                "no tuning studies recorded — run `repro-dbp tune run` first"
            )
        if len(recorded) > 1:
            raise ConfigError(
                "several studies recorded; pick one with --study: "
                + ", ".join(str(s) for s in recorded)
            )
        study = recorded[0]
    rows = trial_rows(index, study)
    if not rows:
        raise ConfigError(f"no trials recorded for study {study!r}")
    return study, rows


def _cmd_tune_report(args: argparse.Namespace) -> int:
    from .tuner import render_studies, render_trials, studies, trial_rows

    with _open_query_index(args) as index:
        if args.study is not None:
            rows = trial_rows(index, args.study)
            if args.format == "json":
                print(json.dumps(rows, indent=2))
            else:
                print(render_trials(rows))
            return 0
        summary = studies(index)
        if args.format == "json":
            print(json.dumps(summary, indent=2))
        else:
            print(render_studies(summary))
    return 0


def _cmd_tune_frontier(args: argparse.Namespace) -> int:
    from .tuner import frontier_doc, render_frontier

    with _open_query_index(args) as index:
        study, rows = _tune_study_rows(args, index)
    doc = frontier_doc(rows)
    doc["study"] = study
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=2)
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(doc, indent=2))
    else:
        print(f"study {study}")
        print(render_frontier(rows))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from .campaign import ResultStore

    store = ResultStore(_store_dir(args), index=False)
    if args.store_verb == "stats":
        return _cmd_store_stats(args, store)
    if args.store_verb == "ls":
        return _cmd_store_ls(args, store)
    if args.store_verb == "gc":
        return _cmd_store_gc(args, store)
    raise ReproError(f"unknown store verb {args.store_verb!r}")


def _cmd_store_stats(args: argparse.Namespace, store) -> int:
    disk = store.disk_stats()
    index_rows = None
    versions = {}
    if disk["index_exists"]:
        from .results import ResultIndex

        with ResultIndex(store.index_path()) as index:
            index_rows = index.count()
            versions = index.version_counts()
    if args.format == "json":
        doc = dict(disk)
        doc["index_rows"] = index_rows
        doc["index_version_counts"] = {
            str(v): n for v, n in sorted(versions.items())
        }
        doc["handle_stats"] = store.stats.as_dict()
        print(json.dumps(doc, indent=2))
        return 0
    print(f"store {disk['root']}")
    print(
        f"  entries:     {disk['entries']} "
        f"({disk['entry_bytes']} bytes)"
    )
    print(
        f"  quarantined: {disk['quarantined']} "
        f"({disk['quarantined_bytes']} bytes)"
    )
    print(f"  tmp files:   {disk['tmp_files']}")
    if index_rows is None:
        print("  index:       absent (build with: repro-dbp results index)")
    else:
        version_text = ", ".join(
            f"v{v}: {n}" for v, n in sorted(versions.items())
        )
        print(
            f"  index:       {index_rows} row(s), "
            f"{disk['index_bytes']} bytes ({version_text})"
        )
    return 0


def _cmd_store_ls(args: argparse.Namespace, store) -> int:
    if args.corrupt:
        paths = store.quarantined_paths()
        for path in paths:
            print(path)
        print(f"{len(paths)} quarantined file(s)")
        return 0
    from .experiments.report import render_table

    shown = 0
    rows = []
    total = 0
    for key, path in store.iter_blobs():
        total += 1
        if args.limit and shown >= args.limit:
            continue
        shown += 1
        try:
            doc = store.load_doc(path)
            spec = doc.get("spec") or {}
            metrics = doc["result"]["metrics"]
            rows.append(
                [
                    key[:12] + "…",
                    doc.get("version", "?"),
                    spec.get("mix") or metrics.get("mix", "?"),
                    spec.get("approach") or metrics.get("approach", "?"),
                    spec.get("seed", "-"),
                    spec.get("horizon", "-"),
                ]
            )
        except (OSError, ValueError, KeyError, TypeError):
            rows.append([key[:12] + "…", "?", "<malformed>", "-", "-", "-"])
    print(
        render_table(
            ["key", "ver", "mix", "approach", "seed", "horizon"], rows
        )
    )
    suffix = f" (showing {shown})" if shown < total else ""
    print(f"{total} entr{'y' if total == 1 else 'ies'}{suffix}")
    return 0


def _cmd_store_gc(args: argparse.Namespace, store) -> int:
    removed = []
    if args.dry_run:
        quarantined = store.quarantined_paths()
        tmp = store.orphaned_tmp_paths()
        stale = store.stale_paths() if args.stale else []
        for label, paths in (
            ("quarantined", quarantined),
            ("tmp", tmp),
            ("stale", stale),
        ):
            for path in paths:
                print(f"would delete [{label}] {path}")
        print(
            f"dry run: {len(quarantined)} quarantined, {len(tmp)} tmp"
            + (f", {len(stale)} stale" if args.stale else "")
            + " file(s) would be deleted"
        )
        return 0
    count, freed = store.purge_quarantined()
    removed.append(f"{count} quarantined ({freed} bytes)")
    count, freed = store.purge_orphaned_tmp()
    removed.append(f"{count} tmp ({freed} bytes)")
    if args.stale:
        count, freed = store.purge_stale()
        removed.append(f"{count} stale ({freed} bytes)")
    print(f"gc {store.root}: removed " + ", ".join(removed))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "tune":
            return _cmd_tune(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "results":
            return _cmd_results(args)
        if args.command == "store":
            return _cmd_store(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "metrics":
            return _cmd_metrics(args)
        if args.command == "perf":
            return _cmd_perf(args)
        store = None
        if getattr(args, "store", None) is not None:
            from .campaign import ResultStore, default_store_dir

            store = ResultStore(
                default_store_dir() if args.store == "auto" else args.store
            )
        runner = Runner(
            horizon=args.horizon,
            seed=args.seed,
            store=store,
            jobs=getattr(args, "jobs", 1),
            profile=getattr(args, "profile", False),
            kernel=getattr(args, "kernel", None),
        )
        if args.command == "config":
            print(runner.config.describe())
            return 0
        if args.command == "run":
            return _cmd_run(args, runner)
        if args.command == "mix":
            return _cmd_mix(args, runner)
        if args.command == "traces":
            return _cmd_traces(args, runner)
        if args.command == "gen-traces":
            return _cmd_gen_traces(args, runner)
        parser.error(f"unknown command {args.command!r}")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
