"""Trace records and trace containers.

A trace is the unit of workload: an ordered list of records, each meaning
"execute ``gap`` non-memory instructions, then one memory instruction that
touches virtual cache line ``vline``". Traces loop when replayed for longer
than their length, which is the standard methodology for fixed-horizon
multiprogrammed runs.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, NamedTuple, Optional, Sequence

from ..errors import TraceError


class TraceRecord(NamedTuple):
    """One trace entry. ``vline`` is a virtual cache-line address."""

    gap: int
    vline: int
    is_write: bool


class Trace:
    """An immutable memory trace with precomputed instruction offsets."""

    def __init__(self, name: str, records: Sequence[TraceRecord]) -> None:
        if not records:
            raise TraceError(f"trace {name!r} is empty")
        self.name = name
        self.records: List[TraceRecord] = list(records)
        for index, record in enumerate(self.records):
            if record.gap < 0:
                raise TraceError(
                    f"trace {name!r} record {index}: negative gap {record.gap}"
                )
            if record.vline < 0:
                raise TraceError(
                    f"trace {name!r} record {index}: negative address"
                )
        # cumulative_insts[i] = instructions up to and including record i's
        # memory instruction (each record is gap + 1 instructions).
        self.cumulative_insts: List[int] = []
        total = 0
        for record in self.records:
            total += record.gap + 1
            self.cumulative_insts.append(total)
        self.total_insts = total
        self.total_requests = len(self.records)
        self._footprint_lines: Optional[int] = None
        self._digest: Optional[str] = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def mean_gap(self) -> float:
        """Average non-memory instructions between memory accesses."""
        return (self.total_insts - self.total_requests) / self.total_requests

    @property
    def intrinsic_mpki(self) -> float:
        """Memory accesses per kilo-instruction, before cache filtering."""
        return 1000.0 * self.total_requests / self.total_insts

    def footprint_lines(self) -> int:
        """Number of distinct virtual lines the trace touches (cached)."""
        if self._footprint_lines is None:
            self._footprint_lines = len(
                {record.vline for record in self.records}
            )
        return self._footprint_lines

    @property
    def digest(self) -> str:
        """Stable SHA-256 content hash of the record stream (cached).

        Hashes records only — not the name — so a renamed copy of the same
        access stream is recognized as the same workload. This is the one
        digest definition shared by the trace library's ``.rtrc`` files and
        the campaign store's run keys.
        """
        if self._digest is None:
            hasher = hashlib.sha256()
            for record in self.records:
                hasher.update(
                    b"%d %d %d\n"
                    % (record.gap, record.vline, int(record.is_write))
                )
            self._digest = hasher.hexdigest()
        return self._digest


def save_trace(trace: Trace, path: str) -> None:
    """Write a trace in the plain-text interchange format.

    Format: a header line ``#trace <name>``, then one record per line:
    ``<gap> <vline> <R|W>``.
    """
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"#trace {trace.name}\n")
        for record in trace.records:
            kind = "W" if record.is_write else "R"
            handle.write(f"{record.gap} {record.vline} {kind}\n")


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    records: List[TraceRecord] = []
    name = "unnamed"
    with open(path, "r", encoding="ascii") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#trace"):
                parts = line.split(maxsplit=1)
                if len(parts) == 2:
                    name = parts[1]
                continue
            fields = line.split()
            if len(fields) != 3 or fields[2] not in ("R", "W"):
                raise TraceError(f"{path}:{line_no}: malformed record {line!r}")
            try:
                gap, vline = int(fields[0]), int(fields[1])
            except ValueError:
                raise TraceError(
                    f"{path}:{line_no}: non-integer field in {line!r}"
                ) from None
            records.append(TraceRecord(gap, vline, fields[2] == "W"))
    return Trace(name, records)


def concatenate(name: str, traces: Iterable[Trace]) -> Trace:
    """Join traces back to back (useful for building phased workloads)."""
    records: List[TraceRecord] = []
    for trace in traces:
        records.extend(trace.records)
    return Trace(name, records)
