"""Event-driven interval model of an out-of-order core.

The model reproduces the processor abstraction this paper family simulates —
a W-wide core with an R-entry ROB and MSHR-limited memory-level parallelism —
at a cost of O(1) work per *memory request* instead of per cycle:

* Instructions retire in order. A block of ``gap`` non-memory instructions
  retires at ``width`` per cycle; a read retires one cycle after its data
  returns; writes never block retirement (they drain through a store buffer,
  the standard simplification). Retirement is charged per *record*:
  each (gap, memory-instruction) bundle costs ``ceil((gap+1)/width)``
  cycles, with no packing of one record's instructions into another
  record's final retire cycle — the usual interval-model granularity,
  which overstates compute time by at most ``(width-1)/(gap+1)`` per
  record and affects alone and shared runs identically (so it largely
  cancels out of the slowdown-based metrics). The per-cycle reference
  model in ``tests/test_core_reference.py`` pins down these semantics.
* A memory instruction issues its request the cycle it enters the ROB, i.e.
  when retirement comes within ``rob_size`` instructions of it, provided an
  MSHR is free (reads only — writes are fire-and-forget).
* Retirement is allowed to be *computed* ahead of simulated time by at most
  ``ahead_limit`` cycles (it is deterministic once request completions are
  known), which bounds the skew of epoch-based profiling counters while
  keeping the event count low.

The core talks to the rest of the system through a ``MemoryPort``: a single
``access`` call that either returns a synchronously known completion cycle
(a cache hit) or arranges a callback (a DRAM access).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Protocol, Tuple

from ..config import CoreConfig
from ..errors import SimulationError
from .trace import Trace


class MemoryPort(Protocol):
    """What a core needs from the memory system."""

    def access(
        self,
        thread_id: int,
        vline: int,
        is_write: bool,
        at: int,
        on_complete: Optional[Callable[[int], None]],
    ) -> Optional[int]:
        """Perform one access at cycle ``at``.

        Returns the completion cycle if it is synchronously known (a cache
        hit), otherwise ``None`` and ``on_complete(cycle)`` fires later.
        """


class WakeScheduler(Protocol):
    """Minimal engine surface the core uses to resume after an ahead-cap."""

    def schedule(self, cycle: int, callback: Callable[[int], None]) -> None:
        """Invoke ``callback(cycle)`` when simulated time reaches ``cycle``."""


class CoreStats:
    """Counters a core exposes to the runner and the profiler."""

    __slots__ = (
        "retired_insts",
        "reads_issued",
        "writes_issued",
        "finished",
    )

    def __init__(self) -> None:
        self.retired_insts = 0
        self.reads_issued = 0
        self.writes_issued = 0
        self.finished = False


# History entry fields: (m_prev, m_end, t_start, t_end, gap)
_HistEntry = Tuple[int, int, int, int, int]


class Core:
    """Replays one trace against the memory system until ``horizon``."""

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        trace: Trace,
        port: MemoryPort,
        scheduler: WakeScheduler,
        horizon: int,
        ahead_limit: int = 8192,
    ) -> None:
        if horizon <= 0:
            raise SimulationError("horizon must be positive")
        self.core_id = core_id
        self.config = config
        self.trace = trace
        self.port = port
        self.scheduler = scheduler
        self.horizon = horizon
        self.ahead_limit = ahead_limit
        self.stats = CoreStats()
        # Virtual (looping) record indexing.
        self._n = len(trace)
        self._records = trace.records
        self._cum = trace.cumulative_insts
        self._insts_per_loop = trace.total_insts
        # Hoisted config constants for the per-record hot loops.
        self._width = config.width
        self._mshrs = config.mshrs
        self._rob_size = config.rob_size
        # Retirement state.
        self._retire_idx = 0
        self._retire_clock = 0
        self._retired_processed = 0  # instructions retired (processed)
        self._history: Deque[_HistEntry] = deque()
        self._history_span = config.rob_size + 2
        # Issue state.
        self._issue_idx = 0
        self._last_issue = -1
        self._issue_floor = 0
        self._outstanding_reads = 0
        self._complete: Dict[int, int] = {}
        self._wake_scheduled = False

    # ------------------------------------------------------------------
    # Virtual-index helpers (traces loop past their end).
    # ------------------------------------------------------------------
    def _m(self, virt_idx: int) -> int:
        loops, i = divmod(virt_idx, self._n)
        return loops * self._insts_per_loop + self._cum[i]

    def _record(self, virt_idx: int):
        return self._records[virt_idx % self._n]

    # ------------------------------------------------------------------
    # Public surface.
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Kick the core off at cycle 0."""
        self.process(0)

    def process(self, now: int) -> None:
        """Advance retirement and issue as far as currently determined."""
        while True:
            progressed = False
            if not self.stats.finished:
                progressed = self._advance_retirement(now)
            # Issue even after the horizon froze retirement: non-blocking
            # requests (writes, fills) whose issue time falls before the
            # horizon still belong on the memory system.
            progressed |= self._issue_requests(now)
            if not progressed:
                break
        if self.stats.finished:
            return
        # If the only thing stopping retirement is the ahead-cap, resume when
        # simulated time catches up.
        if (
            not self._wake_scheduled
            and self._retire_clock >= now + self.ahead_limit
        ):
            self._wake_scheduled = True
            self.scheduler.schedule(self._retire_clock, self._on_wake)

    def _on_wake(self, now: int) -> None:
        self._wake_scheduled = False
        self.process(now)

    def _on_read_complete(self, virt_idx: int, now: int) -> None:
        if self._outstanding_reads >= self.config.mshrs:
            # This completion frees the MSHR that was gating issue.
            self._issue_floor = max(self._issue_floor, now)
        self._outstanding_reads -= 1
        self._complete[virt_idx] = now
        self.process(now)

    # ------------------------------------------------------------------
    # Retirement.
    # ------------------------------------------------------------------
    def _advance_retirement(self, now: int) -> bool:
        width = self._width
        limit = now + self.ahead_limit
        progressed = False
        records = self._records
        n = self._n
        complete = self._complete
        while self._retire_clock < limit:
            idx = self._retire_idx
            # Retirement may pass unissued writes (they never block), but
            # not so far that the crossing-time history for those writes'
            # issue thresholds gets evicted; the process loop alternates
            # back to issuing once this cap is hit.
            if idx - self._issue_idx >= self._history_span - 2:
                break
            record = records[idx % n]
            completion: Optional[int] = None
            if not record.is_write:
                completion = complete.get(idx)
                if completion is None:
                    break  # head read still outstanding (or not yet issued)
            t_start = self._retire_clock
            t_end = t_start - (-(record.gap + 1) // width)
            if completion is not None:
                t_end = max(t_end, completion + 1)
            if t_end >= self.horizon:
                self._finish_at_horizon(t_start, record.gap, width)
                return True
            m_prev = self._retired_processed
            m_end = self._m(idx)
            self._history.append((m_prev, m_end, t_start, t_end, record.gap))
            if len(self._history) > self._history_span:
                self._history.popleft()
            self._retire_idx += 1
            self._retire_clock = t_end
            self._retired_processed = m_end
            if completion is not None:
                del self._complete[idx]
            progressed = True
        return progressed

    def _finish_at_horizon(self, t_start: int, gap: int, width: int) -> None:
        """Freeze the core, crediting the instructions retired by horizon."""
        partial = 0
        if self.horizon > t_start:
            partial = min(gap, width * (self.horizon - t_start))
        self.stats.retired_insts = self._retired_processed + partial
        self.stats.finished = True

    # ------------------------------------------------------------------
    # Issue.
    # ------------------------------------------------------------------
    def _issue_requests(self, now: int) -> bool:
        progressed = False
        records = self._records
        n = self._n
        mshrs = self._mshrs
        rob_size = self._rob_size
        while True:
            idx = self._issue_idx
            record = records[idx % n]
            if not record.is_write and self._outstanding_reads >= mshrs:
                break
            threshold = self._m(idx) - rob_size
            cross = self._crossing_time(threshold)
            if cross is None:
                break  # ROB window has not reached this record yet
            t_issue = max(cross, self._last_issue + 1, self._issue_floor)
            if t_issue >= self.horizon:
                break  # nothing past the horizon matters
            self._dispatch(idx, record, t_issue)
            self._issue_idx += 1
            self._last_issue = t_issue
            progressed = True
        return progressed

    def _dispatch(self, virt_idx: int, record, t_issue: int) -> None:
        if record.is_write:
            self.port.access(
                self.core_id, record.vline, True, t_issue, None
            )
            self.stats.writes_issued += 1
            return
        self._outstanding_reads += 1
        self.stats.reads_issued += 1
        callback = lambda cycle, i=virt_idx: self._on_read_complete(i, cycle)
        sync = self.port.access(
            self.core_id, record.vline, False, t_issue, callback
        )
        if sync is not None:
            # Synchronously known latency (cache hit): complete inline.
            self._outstanding_reads -= 1
            self._complete[virt_idx] = sync

    def _crossing_time(self, threshold: int) -> Optional[int]:
        """Cycle at which cumulative retirement reaches ``threshold``.

        Returns None when retirement has not been processed that far.
        Thresholds are queried in non-decreasing order, so consumed history
        can be discarded.
        """
        if threshold <= 0:
            return 0
        if threshold > self._retired_processed:
            # The threshold may fall inside the *gap* (non-memory) phase of
            # the record retirement is currently parked on: those
            # instructions retire on a schedule that is already known even
            # though the record's memory instruction is still outstanding.
            pending = self._record(self._retire_idx)
            pending_limit = self._retired_processed + pending.gap
            if threshold <= pending_limit:
                offset = threshold - self._retired_processed
                return self._retire_clock - (-offset // self._width)
            return None
        history = self._history
        while history and history[0][1] < threshold:
            history.popleft()
        if not history:
            raise SimulationError(
                "retirement history evicted too early "
                f"(threshold={threshold})"
            )
        m_prev, _m_end, t_start, t_end, gap = history[0]
        offset = threshold - m_prev
        if offset <= 0:
            return t_start
        if offset <= gap:
            return min(t_end, t_start - (-offset // self._width))
        return t_end

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    @property
    def retired_insts_processed(self) -> int:
        """Instructions whose retirement has been computed so far."""
        return self._retired_processed

    @property
    def outstanding_reads(self) -> int:
        """Reads currently in flight to the memory system."""
        return self._outstanding_reads

    def finalize(self) -> None:
        """Freeze the retirement counters at end of run (idempotent).

        When the run was cut short by the engine (e.g. all cores idle),
        everything processed retired before the horizon. Called by the
        system after the event loop drains; never during simulation —
        ``finished`` gates retirement in :meth:`process`.
        """
        if not self.stats.finished:
            self.stats.retired_insts = self._retired_processed
            self.stats.finished = True

    def ipc(self) -> float:
        """Retired IPC over the full horizon.

        Pure: safe to call mid-run (an epoch-boundary probe sees the
        instructions retired so far) — only :meth:`finalize` and
        :meth:`_finish_at_horizon` freeze the stats.
        """
        retired = (
            self.stats.retired_insts
            if self.stats.finished
            else self._retired_processed
        )
        return retired / self.horizon
