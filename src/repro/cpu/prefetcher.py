"""Per-core stride prefetcher.

A classic table-based stride prefetcher trained on the core's virtual
cache-line stream: each table entry tracks the last address and stride of
one access region (virtual page); after the same stride is seen twice, the
prefetcher emits ``degree`` prefetch addresses ahead of the demand stream.

Prefetching is **disabled by default** — the paper family evaluates without
it — but it is a first-order interaction for bank partitioning (prefetchers
multiply a streaming thread's outstanding requests and therefore its bank
footprint), so the harness exposes it as an extension experiment (F11).
"""

from __future__ import annotations

from typing import Dict, List

from ..config import PrefetcherConfig

__all__ = ["PrefetcherConfig", "StridePrefetcher"]


class _Entry:
    __slots__ = ("last_vline", "stride", "confidence")

    def __init__(self, vline: int) -> None:
        self.last_vline = vline
        self.stride = 0
        self.confidence = 0


class StridePrefetcher:
    """One core's prefetch engine; operates on virtual line addresses."""

    # Region granularity for table indexing: one virtual page of lines.
    _REGION_BITS = 6

    def __init__(self, config: PrefetcherConfig) -> None:
        self.config = config
        self._table: Dict[int, _Entry] = {}
        self._lru: List[int] = []  # region keys, least recent first
        self.stat_trained = 0
        self.stat_prefetches = 0

    def observe(self, vline: int) -> List[int]:
        """Feed one demand access; returns virtual lines to prefetch."""
        if not self.config.enabled:
            return []
        region = vline >> self._REGION_BITS
        entry = self._table.get(region)
        if entry is None:
            self._insert(region, vline)
            return []
        self._touch(region)
        stride = vline - entry.last_vline
        prefetches: List[int] = []
        if stride != 0 and stride == entry.stride:
            if entry.confidence < 2:
                entry.confidence += 1
            if entry.confidence >= 2:
                self.stat_trained += 1
                base = vline + stride * self.config.distance
                for k in range(self.config.degree):
                    target = base + stride * k
                    # Hardware stride prefetchers stop at the page boundary
                    # (they work on physical addresses); mirror that here.
                    if target >= 0 and (target >> self._REGION_BITS) == region:
                        prefetches.append(target)
                self.stat_prefetches += len(prefetches)
        else:
            entry.stride = stride
            entry.confidence = 1 if stride != 0 else 0
        entry.last_vline = vline
        return prefetches

    # ------------------------------------------------------------------
    def _insert(self, region: int, vline: int) -> None:
        if len(self._table) >= self.config.table_entries:
            victim = self._lru.pop(0)
            del self._table[victim]
        self._table[region] = _Entry(vline)
        self._lru.append(region)

    def _touch(self, region: int) -> None:
        self._lru.remove(region)
        self._lru.append(region)
