"""Trace-driven core model.

A :class:`~repro.cpu.trace.Trace` is a sequence of (compute gap, memory
access) records; a :class:`~repro.cpu.core.Core` replays it through an
event-driven interval model of a W-wide out-of-order core with an R-entry
ROB and an MSHR-limited number of outstanding misses. The model costs one
event per memory request rather than one per cycle, which is what makes a
pure-Python cycle study of this scale feasible.
"""

from .trace import Trace, TraceRecord, load_trace, save_trace
from .core import Core, CoreStats

__all__ = ["Trace", "TraceRecord", "load_trace", "save_trace", "Core", "CoreStats"]
