"""Exception hierarchy for the repro package.

All errors raised by this package derive from :class:`ReproError`, so callers
can catch one type at the API boundary. The subtypes mirror the subsystem that
raised them, which keeps failure reports readable when a multi-component
simulation aborts.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class ProtocolError(ReproError):
    """A DRAM command violated the DDR3 timing/state protocol.

    Raised by the device model when the controller attempts an illegal
    command, and by :class:`repro.dram.validator.ProtocolValidator` when an
    observed command stream breaks a timing rule.
    """


class MappingError(ReproError):
    """An address could not be mapped or decomposed."""


class AllocationError(ReproError):
    """The OS page allocator could not satisfy a request."""


class TraceError(ReproError):
    """A trace record or trace file is malformed."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment definition or run is invalid."""
