"""Tuning-trial persistence: the ``tuning_trials`` table in the index.

Follows the perf observatory's additive-table pattern exactly: the table
lives inside the result service's SQLite index (``index.sqlite`` beside
the blob store) under its **own** schema-version meta key, so the ``runs``
and ``bench_samples`` schemas are untouched and a tuner layout change
rebuilds only this table. Rows key on (study, trial_id) and every write
is an idempotent upsert — re-running a seeded study rewrites the same
rows, which is what makes studies resumable and re-renderable offline
(``repro-dbp tune report|frontier`` read only this table).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..results.db import ResultIndex

__all__ = [
    "TUNER_SCHEMA_VERSION",
    "ensure_tuner_schema",
    "record_trial",
    "trial_rows",
    "studies",
]

#: Version of the tuner tables only; bumping rebuilds them without
#: disturbing the ``runs`` or ``bench_samples`` tables.
TUNER_SCHEMA_VERSION = 1

_TUNER_CREATE = """
CREATE TABLE IF NOT EXISTS tuning_trials (
    study TEXT NOT NULL,
    trial_id INTEGER NOT NULL,
    strategy TEXT NOT NULL,
    objective TEXT NOT NULL,
    base_approach TEXT NOT NULL,
    approach TEXT NOT NULL,
    params TEXT NOT NULL,
    mixes TEXT NOT NULL,
    seed INTEGER,
    fidelity REAL,
    rung INTEGER,
    horizon INTEGER,
    ws REAL,
    ms REAL,
    hs REAL,
    score REAL,
    status TEXT,
    error TEXT,
    cached INTEGER,
    executed INTEGER,
    wall_clock REAL,
    PRIMARY KEY (study, trial_id)
);
CREATE INDEX IF NOT EXISTS trials_by_study ON tuning_trials (study, score);
"""

_COLUMNS = (
    "study", "trial_id", "strategy", "objective", "base_approach",
    "approach", "params", "mixes", "seed", "fidelity", "rung", "horizon",
    "ws", "ms", "hs", "score", "status", "error", "cached", "executed",
    "wall_clock",
)


def ensure_tuner_schema(index: ResultIndex) -> None:
    """Create (or version-rebuild) the tuner tables in an index."""
    conn = index._conn
    with conn:
        conn.executescript(_TUNER_CREATE)
        conn.execute(
            "INSERT OR IGNORE INTO meta (name, value) VALUES (?, ?)",
            ("tuner_schema_version", str(TUNER_SCHEMA_VERSION)),
        )
        row = conn.execute(
            "SELECT value FROM meta WHERE name='tuner_schema_version'"
        ).fetchone()
        if row["value"] != str(TUNER_SCHEMA_VERSION):
            conn.execute("DROP TABLE IF EXISTS tuning_trials")
            conn.executescript(_TUNER_CREATE)
            conn.execute(
                "UPDATE meta SET value=? WHERE name='tuner_schema_version'",
                (str(TUNER_SCHEMA_VERSION),),
            )


def record_trial(index: ResultIndex, row: Dict[str, object]) -> None:
    """Idempotently upsert one trial row (keyed by study + trial_id)."""
    ensure_tuner_schema(index)
    doc = dict(row)
    for name in ("params", "mixes"):
        if not isinstance(doc.get(name), str):
            doc[name] = json.dumps(doc.get(name), sort_keys=True)
    values = tuple(doc.get(name) for name in _COLUMNS)
    assignments = ", ".join(
        f"{name}=excluded.{name}"
        for name in _COLUMNS
        if name not in ("study", "trial_id")
    )
    conn = index._conn
    with conn:
        conn.execute(
            f"INSERT INTO tuning_trials ({', '.join(_COLUMNS)}) "
            f"VALUES ({', '.join('?' for _ in _COLUMNS)}) "
            f"ON CONFLICT(study, trial_id) DO UPDATE SET {assignments}",
            values,
        )


def trial_rows(
    index: ResultIndex, study: Optional[str] = None
) -> List[Dict[str, object]]:
    """Trial rows (params/mixes decoded), ordered by study then trial."""
    ensure_tuner_schema(index)
    clauses = ""
    params: List[object] = []
    if study is not None:
        clauses = " WHERE study=?"
        params.append(study)
    cursor = index._conn.execute(
        f"SELECT * FROM tuning_trials{clauses} ORDER BY study, trial_id",
        params,
    )
    out = []
    for raw in cursor:
        row = dict(raw)
        row["params"] = json.loads(row["params"]) if row["params"] else {}
        row["mixes"] = json.loads(row["mixes"]) if row["mixes"] else []
        out.append(row)
    return out


def studies(index: ResultIndex) -> List[Dict[str, object]]:
    """One summary row per recorded study (for ``tune report``)."""
    ensure_tuner_schema(index)
    cursor = index._conn.execute(
        "SELECT study, strategy, objective, base_approach, "
        "COUNT(*) AS trials, "
        "MAX(CASE WHEN fidelity >= 1.0 THEN score END) AS best_score, "
        "SUM(cached) AS cached, SUM(executed) AS executed "
        "FROM tuning_trials GROUP BY study ORDER BY study"
    )
    return [dict(row) for row in cursor]
