"""Search strategies over a :class:`~repro.tuner.space.ParameterSpace`.

All searchers share one ask/tell interface — :meth:`Searcher.propose`
hands out the next :class:`TrialPoint` (or ``None`` when the budget is
spent) and :meth:`Searcher.observe` feeds back the scalar score (higher
is better; ``None`` marks a failed trial). Every strategy is driven by a
private ``random.Random(seed)``, so a given (space, budget, seed) always
replays the identical trial sequence — which is what makes a re-run of a
tuning study hit the content-addressed store instead of the simulator.

Strategies:

* :class:`RandomSearcher` — uniform (log-uniform where declared)
  sampling; the baseline strategy and the startup phase of the others.
* :class:`HalvingSearcher` — successive halving with two rungs: a
  screening cohort at a short fidelity (fraction of the full horizon),
  then exactly ``ceil(cohort * survivor_fraction)`` survivors promoted
  to full fidelity.
* :class:`TPESearcher` — a dependency-free tree-structured Parzen
  estimator: after a random startup, observed points split into
  good/bad quantiles and candidates are drawn from a Parzen (Gaussian
  kernel) model of the good set, ranked by the good/bad density ratio.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from .space import ParameterSpace, Tunable

__all__ = [
    "STRATEGIES",
    "TrialPoint",
    "Searcher",
    "RandomSearcher",
    "HalvingSearcher",
    "TPESearcher",
    "make_searcher",
]


@dataclass(frozen=True)
class TrialPoint:
    """One parameter point a searcher wants evaluated."""

    trial_id: int
    params: Tuple[Tuple[str, object], ...]
    #: Fraction of the full evaluation horizon (successive halving screens
    #: at < 1.0; everything else evaluates at 1.0).
    fidelity: float = 1.0
    #: Halving rung index (0 = screening); 0 for single-rung strategies.
    rung: int = 0
    #: Screening trial this point was promoted from, if any.
    parent: Optional[int] = None

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)


def _as_items(params: Dict[str, object]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(params.items()))


def _round_sig(value: float, digits: int = 4) -> float:
    """Round to significant digits — keeps parameterized approach names
    short without meaningfully coarsening the search."""
    if value == 0.0:
        return 0.0
    scale = digits - 1 - math.floor(math.log10(abs(value)))
    return round(value, scale)


def _sample_tunable(tunable: Tunable, rng: random.Random) -> object:
    """One in-bounds value, honoring the declared scale."""
    if tunable.kind == "choice":
        return tunable.choices[rng.randrange(len(tunable.choices))]
    low = float(tunable.low)  # type: ignore[arg-type]
    high = float(tunable.high)  # type: ignore[arg-type]
    if tunable.log:
        value = math.exp(rng.uniform(math.log(low), math.log(high)))
    else:
        value = rng.uniform(low, high)
    if tunable.kind == "int":
        return max(int(tunable.low), min(int(tunable.high), int(round(value))))
    return min(high, max(low, _round_sig(value)))


class Searcher:
    """Common ask/tell interface; subclasses implement ``_next``."""

    name = "base"

    def __init__(self, space: ParameterSpace, budget: int, seed: int = 1) -> None:
        if budget < 1:
            raise ConfigError("search budget must be >= 1")
        if not len(space):
            raise ConfigError(
                f"approach {space.approach!r} declares no tunables"
            )
        self.space = space
        self.budget = budget
        self.seed = seed
        self._rng = random.Random(seed)
        self._proposed = 0
        self._observed: List[Tuple[TrialPoint, Optional[float]]] = []

    # -- interface ------------------------------------------------------
    def propose(self) -> Optional[TrialPoint]:
        """The next point to evaluate, or ``None`` when done."""
        if self._proposed >= self.budget:
            return None
        point = self._next()
        if point is not None:
            self._proposed += 1
        return point

    def observe(self, point: TrialPoint, score: Optional[float]) -> None:
        """Feed back one trial's scalar score (higher is better)."""
        self._observed.append((point, score))

    @property
    def done(self) -> bool:
        return self._proposed >= self.budget

    # -- subclass hooks -------------------------------------------------
    def _next(self) -> Optional[TrialPoint]:
        raise NotImplementedError

    def _sample(self) -> Dict[str, object]:
        return {
            t.name: _sample_tunable(t, self._rng) for t in self.space.tunables
        }


class RandomSearcher(Searcher):
    """Pure random search at full fidelity — the honest baseline."""

    name = "random"

    def _next(self) -> Optional[TrialPoint]:
        return TrialPoint(
            trial_id=self._proposed + 1, params=_as_items(self._sample())
        )


class HalvingSearcher(Searcher):
    """Two-rung successive halving: screen short, promote the top slice.

    With a total budget ``B`` and survivor fraction ``f``, the screening
    cohort is the largest ``n`` with ``n + ceil(n * f) <= B``; exactly
    ``ceil(n * f)`` survivors re-run at full fidelity. Ranking is by
    score descending with trial id as the deterministic tie-break;
    failed trials (score ``None``) rank last and are never promoted
    ahead of a scored trial.
    """

    name = "halving"

    def __init__(
        self,
        space: ParameterSpace,
        budget: int,
        seed: int = 1,
        survivor_fraction: float = 0.25,
        screen_fidelity: float = 0.25,
    ) -> None:
        super().__init__(space, budget, seed)
        if not 0.0 < survivor_fraction <= 1.0:
            raise ConfigError("survivor_fraction must be in (0, 1]")
        if not 0.0 < screen_fidelity <= 1.0:
            raise ConfigError("screen_fidelity must be in (0, 1]")
        self.survivor_fraction = survivor_fraction
        self.screen_fidelity = screen_fidelity
        cohort = budget
        while cohort > 1 and cohort + self._survivors_of(cohort) > budget:
            cohort -= 1
        self.cohort = cohort
        self.survivors = min(
            self._survivors_of(cohort), max(0, budget - cohort)
        )
        self._promoted: List[TrialPoint] = []

    def _survivors_of(self, cohort: int) -> int:
        return max(1, math.ceil(cohort * self.survivor_fraction))

    def _next(self) -> Optional[TrialPoint]:
        if self._proposed < self.cohort:
            return TrialPoint(
                trial_id=self._proposed + 1,
                params=_as_items(self._sample()),
                fidelity=self.screen_fidelity,
                rung=0,
            )
        if not self._promoted:
            self._promoted = self._promote()
        index = self._proposed - self.cohort
        if index >= len(self._promoted):
            return None
        return self._promoted[index]

    def _promote(self) -> List[TrialPoint]:
        screened = [
            (point, score)
            for point, score in self._observed
            if point.rung == 0
        ]
        if len(screened) < self.cohort:
            raise ConfigError(
                f"halving cannot promote: {len(screened)} of {self.cohort} "
                "screening trials observed"
            )
        ranked = sorted(
            screened,
            key=lambda item: (
                item[1] is None,
                -(item[1] if item[1] is not None else 0.0),
                item[0].trial_id,
            ),
        )
        promoted = []
        for offset, (point, _score) in enumerate(ranked[: self.survivors]):
            promoted.append(
                TrialPoint(
                    trial_id=self.cohort + offset + 1,
                    params=point.params,
                    fidelity=1.0,
                    rung=1,
                    parent=point.trial_id,
                )
            )
        return promoted


class TPESearcher(Searcher):
    """Dependency-free TPE: Parzen density ratio over good/bad trials."""

    name = "tpe"

    def __init__(
        self,
        space: ParameterSpace,
        budget: int,
        seed: int = 1,
        n_startup: Optional[int] = None,
        gamma: float = 0.25,
        n_candidates: int = 24,
    ) -> None:
        super().__init__(space, budget, seed)
        if not 0.0 < gamma < 1.0:
            raise ConfigError("gamma must be in (0, 1)")
        if n_candidates < 1:
            raise ConfigError("n_candidates must be >= 1")
        self.n_startup = (
            max(3, budget // 3) if n_startup is None else max(1, n_startup)
        )
        self.gamma = gamma
        self.n_candidates = n_candidates

    def _next(self) -> Optional[TrialPoint]:
        trial_id = self._proposed + 1
        scored = [
            (point.params_dict(), score)
            for point, score in self._observed
            if score is not None
        ]
        if self._proposed < self.n_startup or len(scored) < 2:
            return TrialPoint(trial_id=trial_id, params=_as_items(self._sample()))
        scored.sort(key=lambda item: -item[1])
        n_good = max(1, math.ceil(self.gamma * len(scored)))
        good = [params for params, _ in scored[:n_good]]
        bad = [params for params, _ in scored[n_good:]] or good
        best: Optional[Dict[str, object]] = None
        best_ratio = -math.inf
        for _ in range(self.n_candidates):
            candidate = {
                t.name: self._draw_from(good, t) for t in self.space.tunables
            }
            ratio = sum(
                self._log_density(candidate[t.name], good, t)
                - self._log_density(candidate[t.name], bad, t)
                for t in self.space.tunables
            )
            if ratio > best_ratio:
                best_ratio = ratio
                best = candidate
        assert best is not None
        return TrialPoint(trial_id=trial_id, params=_as_items(best))

    # -- Parzen helpers -------------------------------------------------
    @staticmethod
    def _transform(value: float, tunable: Tunable) -> float:
        return math.log(value) if tunable.log else value

    def _bandwidth(self, tunable: Tunable, count: int) -> float:
        low = self._transform(float(tunable.low), tunable)  # type: ignore[arg-type]
        high = self._transform(float(tunable.high), tunable)  # type: ignore[arg-type]
        return max(1e-9, (high - low) / math.sqrt(count + 1))

    def _draw_from(self, group: List[Dict[str, object]], tunable: Tunable) -> object:
        """Sample near a random member of ``group`` (kernel perturbation)."""
        if tunable.kind == "choice":
            counts = {c: 1.0 for c in tunable.choices}  # Laplace smoothing
            for params in group:
                counts[params[tunable.name]] = counts.get(params[tunable.name], 1.0) + 1.0
            total = sum(counts.values())
            pick = self._rng.uniform(0.0, total)
            acc = 0.0
            for choice in tunable.choices:
                acc += counts[choice]
                if pick <= acc:
                    return choice
            return tunable.choices[-1]
        center = float(
            group[self._rng.randrange(len(group))][tunable.name]  # type: ignore[arg-type]
        )
        sigma = self._bandwidth(tunable, len(group))
        value = self._rng.gauss(self._transform(center, tunable), sigma)
        if tunable.log:
            value = math.exp(value)
        low = float(tunable.low)  # type: ignore[arg-type]
        high = float(tunable.high)  # type: ignore[arg-type]
        value = min(high, max(low, value))
        if tunable.kind == "int":
            return int(round(value))
        return value

    def _log_density(
        self, value: object, group: List[Dict[str, object]], tunable: Tunable
    ) -> float:
        if tunable.kind == "choice":
            counts = {c: 1.0 for c in tunable.choices}
            for params in group:
                counts[params[tunable.name]] = counts.get(params[tunable.name], 1.0) + 1.0
            total = sum(counts.values())
            return math.log(counts[value] / total)
        x = self._transform(float(value), tunable)  # type: ignore[arg-type]
        sigma = self._bandwidth(tunable, len(group))
        acc = 0.0
        for params in group:
            center = self._transform(float(params[tunable.name]), tunable)  # type: ignore[arg-type]
            acc += math.exp(-0.5 * ((x - center) / sigma) ** 2)
        return math.log(max(acc / (len(group) * sigma), 1e-300))


STRATEGIES: Dict[str, type] = {
    cls.name: cls for cls in (RandomSearcher, HalvingSearcher, TPESearcher)
}


def make_searcher(
    strategy: str, space: ParameterSpace, budget: int, seed: int = 1, **opts
) -> Searcher:
    """Instantiate a search strategy by name."""
    try:
        cls = STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise ConfigError(
            f"unknown search strategy {strategy!r}; known: {known}"
        ) from None
    return cls(space, budget, seed, **opts)
