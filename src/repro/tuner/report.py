"""Tuning reports: trial tables and the WS-vs-MS Pareto frontier.

The frontier is the point of the whole subsystem: it renders every
full-fidelity trial of a study in the (weighted speedup ↑, maximum
slowdown ↓) plane, marks the non-dominated set, and states **explicitly**
whether any tuned point Pareto-dominates the paper-default baseline —
"no dominating point found" is a first-class result, never a silent
success.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = [
    "dominates",
    "pareto_front",
    "frontier_doc",
    "render_trials",
    "render_studies",
    "render_frontier",
]


def _scored(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    return [
        row
        for row in rows
        if row.get("ws") is not None and row.get("ms") is not None
    ]


def dominates(a: Dict[str, object], b: Dict[str, object]) -> bool:
    """True when ``a`` is at least as good as ``b`` on WS (higher) and MS
    (lower), and strictly better on at least one."""
    ws_a, ms_a = float(a["ws"]), float(a["ms"])
    ws_b, ms_b = float(b["ws"]), float(b["ms"])
    return (
        ws_a >= ws_b
        and ms_a <= ms_b
        and (ws_a > ws_b or ms_a < ms_b)
    )


def pareto_front(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """The non-dominated subset of ``rows`` (WS maximized, MS minimized)."""
    scored = _scored(rows)
    return [
        row
        for row in scored
        if not any(dominates(other, row) for other in scored if other is not row)
    ]


def _is_default(row: Dict[str, object]) -> bool:
    return not row.get("params")


def _full_fidelity(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Frontier candidates: trials evaluated at the full horizon only.

    Halving's screening rung runs a shorter horizon, so its WS/MS are not
    comparable with full-fidelity points and would pollute the frontier.
    """
    return [row for row in rows if float(row.get("fidelity") or 1.0) >= 1.0]


def frontier_doc(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Machine-readable frontier report for one study's trial rows."""
    candidates = _scored(_full_fidelity(rows))
    front = pareto_front(candidates)
    default = next((row for row in candidates if _is_default(row)), None)
    tuned = [row for row in candidates if not _is_default(row)]
    dominating = (
        [row for row in tuned if dominates(row, default)]
        if default is not None
        else []
    )
    return {
        "trials": len(list(rows)),
        "evaluated": len(candidates),
        "points": [_point_doc(row, front, default) for row in candidates],
        "default": _point_doc(default, front, default) if default else None,
        "dominating": [_point_doc(row, front, default) for row in dominating],
        "verdict": _verdict(default, dominating),
    }


def _point_doc(
    row: Optional[Dict[str, object]],
    front: Sequence[Dict[str, object]],
    default: Optional[Dict[str, object]],
) -> Dict[str, object]:
    assert row is not None
    return {
        "trial_id": row.get("trial_id"),
        "approach": row.get("approach"),
        "params": row.get("params") or {},
        "ws": row.get("ws"),
        "ms": row.get("ms"),
        "hs": row.get("hs"),
        "score": row.get("score"),
        "on_front": any(other is row for other in front),
        "is_default": _is_default(row),
        "dominates_default": (
            default is not None and not _is_default(row)
            and dominates(row, default)
        ),
    }


def _verdict(
    default: Optional[Dict[str, object]],
    dominating: Sequence[Dict[str, object]],
) -> str:
    if default is None:
        return (
            "no paper-default baseline trial recorded — run the study with "
            "its default point to compare"
        )
    if dominating:
        best = max(dominating, key=lambda r: float(r["ws"]))
        return (
            f"{len(dominating)} tuned point(s) Pareto-dominate the paper "
            f"default (best: {best['approach']}, "
            f"WS {float(best['ws']):.3f} vs {float(default['ws']):.3f}, "
            f"MS {float(best['ms']):.3f} vs {float(default['ms']):.3f})"
        )
    return (
        "no tuned point Pareto-dominates the paper default on this mix set "
        "— the default is on the frontier"
    )


# ----------------------------------------------------------------------
# Renderers

def _params_text(params: Dict[str, object], width: int = 44) -> str:
    if not params:
        return "(paper defaults)"
    text = ",".join(f"{k}={v}" for k, v in sorted(params.items()))
    return text if len(text) <= width else text[: width - 1] + "…"

def render_trials(rows: Sequence[Dict[str, object]]) -> str:
    """One line per trial, best score first within each study."""
    if not rows:
        return "no tuning trials recorded"
    lines = [
        f"{'trial':>5} {'rung':>4} {'fid':>5} {'WS':>7} {'MS':>7} "
        f"{'HS':>7} {'score':>8} {'runs':>9}  params"
    ]
    ordered = sorted(
        rows,
        key=lambda r: (
            str(r.get("study")),
            r.get("score") is None,
            -(float(r["score"]) if r.get("score") is not None else 0.0),
            int(r.get("trial_id") or 0),
        ),
    )
    for row in ordered:
        def num(name: str) -> str:
            value = row.get(name)
            return f"{float(value):.3f}" if value is not None else "-"

        runs = f"{row.get('cached', 0)}c/{row.get('executed', 0)}x"
        if row.get("status") == "failed":
            score_text = "FAILED"
        else:
            value = row.get("score")
            score_text = f"{float(value):.4f}" if value is not None else "-"
        lines.append(
            f"{row.get('trial_id', '?'):>5} {row.get('rung', 0):>4} "
            f"{float(row.get('fidelity') or 1.0):>5.2f} {num('ws'):>7} "
            f"{num('ms'):>7} {num('hs'):>7} {score_text:>8} {runs:>9}  "
            f"{_params_text(row.get('params') or {})}"
        )
    return "\n".join(lines)


def render_studies(rows: Sequence[Dict[str, object]]) -> str:
    if not rows:
        return "no tuning studies recorded"
    lines = [
        f"{'study':<36} {'strategy':<8} {'objective':<9} {'trials':>6} "
        f"{'best':>8} {'cached':>6}"
    ]
    for row in rows:
        best = row.get("best_score")
        best_text = f"{float(best):.4f}" if best is not None else "-"
        lines.append(
            f"{str(row['study']):<36} {str(row['strategy']):<8} "
            f"{str(row['objective']):<9} {int(row['trials']):>6} "
            f"{best_text:>8} {int(row.get('cached') or 0):>6}"
        )
    return "\n".join(lines)


def render_frontier(rows: Sequence[Dict[str, object]]) -> str:
    """The WS-vs-MS frontier table plus the explicit dominance verdict."""
    doc = frontier_doc(rows)
    if not doc["evaluated"]:
        return "no evaluated full-fidelity trials to build a frontier from"
    lines = [
        f"Pareto frontier (WS ↑ vs MS ↓) over {doc['evaluated']} "
        "full-fidelity point(s):",
        f"{'':>2} {'trial':>5} {'WS':>7} {'MS':>7} {'HS':>7}  point",
    ]
    points = sorted(
        doc["points"], key=lambda p: (-float(p["ws"]), float(p["ms"]))
    )
    for point in points:
        marker = "*" if point["on_front"] else " "
        label = (
            "paper default"
            if point["is_default"]
            else _params_text(point["params"], width=52)
        )
        if point["dominates_default"]:
            label += "  [dominates default]"
        lines.append(
            f"{marker:>2} {point['trial_id']:>5} {float(point['ws']):>7.3f} "
            f"{float(point['ms']):>7.3f} {float(point['hs']):>7.3f}  {label}"
        )
    lines.append("")
    lines.append(f"verdict: {doc['verdict']}")
    return "\n".join(lines)
