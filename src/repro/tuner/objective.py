"""The objective layer: a parameter point → campaign → scalar score.

One :class:`CampaignObjective` binds a base approach, a mix set, and a
full evaluation horizon. Evaluating a :class:`TrialPoint` then means:

1. fold the point's policy/scheduler params into a **parameterized
   approach name** (``dbp@epoch_cycles=20000,...``) and its OS/migration
   params into the RunSpec's SystemConfig;
2. plan one RunSpec per mix and push them through the existing
   supervised campaign executor against the content-addressed store —
   a repeated point is therefore a set of cache hits, not simulations;
3. geomean WS/MS/HS across the mixes and scalarize per the chosen
   objective (higher is always better for the searcher).

The empty point (the paper defaults) maps to the *bare* approach name,
so the baseline evaluation shares store entries with every ordinary
campaign that ever ran the same grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign.executor import execute
from ..campaign.spec import RunSpec, _mix_trace_digests
from ..campaign.store import ResultStore
from ..config import SystemConfig
from ..core.integration import get_approach
from ..errors import ConfigError
from ..workloads import resolve_mix
from .searchers import TrialPoint
from .space import ParameterSpace, approach_space, parameterized_name, split_point

__all__ = [
    "OBJECTIVES",
    "CampaignObjective",
    "TrialResult",
    "scalarize",
]

#: Scalarized objectives (all maximized by the searchers). ``balanced``
#: is the paper's stated goal — throughput *and* fairness — as the ratio
#: of weighted speedup to maximum slowdown.
OBJECTIVES: Tuple[str, ...] = ("balanced", "ws", "hs", "ms")


def scalarize(objective: str, ws: float, ms: float, hs: float) -> float:
    """Fold the three headline metrics into one higher-is-better score."""
    if objective == "ws":
        return ws
    if objective == "hs":
        return hs
    if objective == "ms":
        return -ms
    if objective == "balanced":
        return ws / ms
    known = ", ".join(OBJECTIVES)
    raise ConfigError(f"unknown objective {objective!r}; known: {known}")


def _geomean(values: Sequence[float]) -> float:
    from ..results.views import geomean

    return geomean(list(values))


@dataclass
class TrialResult:
    """One evaluated trial: the point, its metrics, and its score."""

    point: TrialPoint
    approach: str
    horizon: int
    ws: Optional[float] = None
    ms: Optional[float] = None
    hs: Optional[float] = None
    score: Optional[float] = None
    status: str = "ok"  # "ok" | "failed"
    error: Optional[str] = None
    cached: int = 0
    executed: int = 0
    wall_clock: float = 0.0
    #: Non-default OS/migration overrides applied through the config.
    osmm_params: Dict[str, object] = field(default_factory=dict)

    @property
    def is_default(self) -> bool:
        return not self.point.params

    def as_row(self) -> Dict[str, object]:
        return {
            "trial_id": self.point.trial_id,
            "params": self.point.params_dict(),
            "approach": self.approach,
            "fidelity": self.point.fidelity,
            "rung": self.point.rung,
            "horizon": self.horizon,
            "ws": self.ws,
            "ms": self.ms,
            "hs": self.hs,
            "score": self.score,
            "status": self.status,
            "error": self.error,
            "cached": self.cached,
            "executed": self.executed,
            "wall_clock": self.wall_clock,
        }


class CampaignObjective:
    """Scores parameter points by running them through the campaign grid."""

    def __init__(
        self,
        approach: str,
        mixes: Sequence[str],
        objective: str = "balanced",
        horizon: int = 400_000,
        seed: int = 1,
        config: Optional[SystemConfig] = None,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        target_insts: int = 4_000_000,
        min_horizon: int = 10_000,
        retries: int = 1,
        timeout: Optional[float] = None,
    ) -> None:
        if "@" in approach:
            raise ConfigError(
                "tune the base approach; parameter points come from the "
                f"search (got {approach!r})"
            )
        if not mixes:
            raise ConfigError("the objective needs at least one mix")
        scalarize(objective, 1.0, 1.0, 1.0)  # validate the name early
        self.base = get_approach(approach)
        self.space: ParameterSpace = approach_space(self.base)
        self.mixes = [resolve_mix(name) for name in mixes]
        self.objective = objective
        self.horizon = horizon
        self.seed = seed
        self.config = config if config is not None else SystemConfig()
        self.store = store
        self.jobs = jobs
        self.target_insts = target_insts
        self.min_horizon = min_horizon
        self.retries = retries
        self.timeout = timeout

    # ------------------------------------------------------------------
    def horizon_for(self, fidelity: float) -> int:
        """The (deterministic) horizon of a fidelity fraction."""
        return max(self.min_horizon, int(round(self.horizon * fidelity)))

    def specs_for(self, point: TrialPoint) -> Tuple[List[RunSpec], str, Dict[str, object]]:
        """The point's run plan, parameterized name, and osmm overrides."""
        layers = split_point(self.space, point.params_dict())
        name_params = {**layers["policy"], **layers["scheduler"]}
        name = parameterized_name(self.base.name, name_params)
        config = self.config
        if layers["osmm"]:
            config = replace(
                config, osmm=replace(config.osmm, **layers["osmm"])
            )
        horizon = self.horizon_for(point.fidelity)
        specs = [
            RunSpec(
                apps=tuple(mix.apps),
                approach=name,
                config=config,
                seed=self.seed,
                horizon=horizon,
                target_insts=self.target_insts,
                mix_name=mix.name,
                trace_digests=_mix_trace_digests(mix.apps),
            )
            for mix in self.mixes
        ]
        return specs, name, layers["osmm"]

    def evaluate(self, point: TrialPoint) -> TrialResult:
        """Run (or fetch) the point's grid and score it."""
        specs, name, osmm_params = self.specs_for(point)
        campaign = execute(
            specs,
            jobs=self.jobs,
            store=self.store,
            retries=self.retries,
            timeout=self.timeout,
        )
        result = TrialResult(
            point=point,
            approach=name,
            horizon=self.horizon_for(point.fidelity),
            cached=len(campaign.cached),
            executed=len(campaign.executed),
            wall_clock=campaign.wall_clock,
            osmm_params=dict(osmm_params),
        )
        failures = campaign.failed + campaign.quarantined
        if failures:
            first = failures[0]
            result.status = "failed"
            result.error = f"{first.spec.label}: {first.error}"
            return result
        summaries = [
            outcome.result.metrics.summary for outcome in campaign.outcomes
        ]
        result.ws = _geomean([s.weighted_speedup for s in summaries])
        result.ms = _geomean([s.max_slowdown for s in summaries])
        result.hs = _geomean([s.harmonic_speedup for s in summaries])
        result.score = scalarize(
            self.objective, result.ws, result.ms, result.hs
        )
        return result

    def default_point(self) -> TrialPoint:
        """Trial 0: the paper defaults at full fidelity (the baseline)."""
        return TrialPoint(trial_id=0, params=(), fidelity=1.0)
