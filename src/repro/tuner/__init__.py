"""Auto-tuning subsystem: search over policy parameters with the
campaign grid as the objective function.

The paper's policies carry magic constants (DBP's epoch length and EWMA
weight, the intensive-MPKI cutoff, TCM's cluster boundary, BLISS's
blacklist threshold, the migration budget). This package turns the
existing campaign machinery into a tuner for them:

* :mod:`~repro.tuner.space`     — the declarative tunable registry
  (``tunables()`` protocol on policy/scheduler/migration classes) and
  **parameterized approach names** (``dbp@epoch_cycles=20000``) that any
  process resolves identically;
* :mod:`~repro.tuner.searchers` — seeded deterministic strategies behind
  one ask/tell interface: random, successive halving, TPE;
* :mod:`~repro.tuner.objective` — a parameter point → RunSpecs over a
  mix set → the supervised executor + content-addressed store (repeat
  points are cache hits) → scalarized WS/MS/HS score;
* :mod:`~repro.tuner.trials`    — the ``tuning_trials`` table beside
  ``bench_samples`` in the results index;
* :mod:`~repro.tuner.report`    — trial tables and the WS-vs-MS Pareto
  frontier against the paper defaults, with an explicit verdict;
* :mod:`~repro.tuner.api`       — :func:`~repro.tuner.api.run_study`,
  the loop the ``repro-dbp tune`` CLI drives.
"""

from .api import StudyResult, run_study, study_name
from .objective import OBJECTIVES, CampaignObjective, TrialResult, scalarize
from .report import (
    dominates,
    frontier_doc,
    pareto_front,
    render_frontier,
    render_studies,
    render_trials,
)
from .searchers import (
    STRATEGIES,
    HalvingSearcher,
    RandomSearcher,
    Searcher,
    TPESearcher,
    TrialPoint,
    make_searcher,
)
from .space import (
    ParameterSpace,
    Tunable,
    approach_space,
    derive_approach,
    format_params,
    parameterized_name,
    parse_params,
    split_point,
)
from .trials import (
    TUNER_SCHEMA_VERSION,
    ensure_tuner_schema,
    record_trial,
    studies,
    trial_rows,
)

__all__ = [
    "StudyResult",
    "run_study",
    "study_name",
    "OBJECTIVES",
    "CampaignObjective",
    "TrialResult",
    "scalarize",
    "dominates",
    "frontier_doc",
    "pareto_front",
    "render_frontier",
    "render_studies",
    "render_trials",
    "STRATEGIES",
    "HalvingSearcher",
    "RandomSearcher",
    "Searcher",
    "TPESearcher",
    "TrialPoint",
    "make_searcher",
    "ParameterSpace",
    "Tunable",
    "approach_space",
    "derive_approach",
    "format_params",
    "parameterized_name",
    "parse_params",
    "split_point",
    "TUNER_SCHEMA_VERSION",
    "ensure_tuner_schema",
    "record_trial",
    "studies",
    "trial_rows",
]
