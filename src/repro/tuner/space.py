"""Tunable-parameter spaces: what each approach lets a searcher move.

Every policy/scheduler class that carries paper constants declares them
through the ``tunables()`` protocol — a classmethod returning
:class:`Tunable` records (name, kind, bounds, paper default). This module
assembles those declarations into one :class:`ParameterSpace` per
registered approach and turns concrete parameter points back into
runnable :class:`~repro.core.integration.Approach` objects via
**parameterized approach names**::

    dbp@epoch_cycles=20000,demand_smoothing=0.25

``get_approach`` resolves such names in *any* process — campaign workers
included — as a pure function of the string, which is what lets tuned
points travel through the existing campaign machinery unchanged: the
content-addressed store key hashes the resolved policy/scheduler params,
so every distinct point gets its own entry and every repeated point is a
cache hit by construction.

Tunables target one of three layers:

* ``policy``    — constructor params of the partitioning policy (nested
  config dataclasses are reached with dotted names, e.g.
  ``demand.low_mpki_threshold``);
* ``scheduler`` — flat keyword params of the memory scheduler;
* ``osmm``      — fields of :class:`~repro.config.OSConfig` (the
  migration engine's knobs). These cannot ride in an approach name — the
  engine is built from the SystemConfig, not the approach — so the
  objective layer applies them to the RunSpec's config instead, and
  :func:`derive_approach` rejects them in names with a pointer there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError

__all__ = [
    "Tunable",
    "ParameterSpace",
    "approach_space",
    "derive_approach",
    "format_params",
    "parameterized_name",
    "parse_params",
    "split_point",
]

#: Valid ``Tunable.target`` values, in display order.
TARGETS = ("policy", "scheduler", "osmm")


@dataclass(frozen=True)
class Tunable:
    """One searchable parameter: its type, bounds, and paper default."""

    name: str
    kind: str  # "int" | "float" | "choice"
    default: object
    low: Optional[float] = None
    high: Optional[float] = None
    choices: Tuple[object, ...] = ()
    #: Sample on a log scale (spans-orders-of-magnitude knobs).
    log: bool = False
    target: str = "policy"
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("int", "float", "choice"):
            raise ConfigError(
                f"tunable {self.name!r}: kind must be int, float, or choice"
            )
        if self.target not in TARGETS:
            raise ConfigError(
                f"tunable {self.name!r}: target must be one of {TARGETS}"
            )
        if self.kind == "choice":
            if not self.choices:
                raise ConfigError(
                    f"tunable {self.name!r}: choice kind needs choices"
                )
            if self.default not in self.choices:
                raise ConfigError(
                    f"tunable {self.name!r}: default {self.default!r} not "
                    f"among choices {self.choices}"
                )
        else:
            if self.low is None or self.high is None:
                raise ConfigError(
                    f"tunable {self.name!r}: numeric kind needs low and high"
                )
            if not self.low <= self.default <= self.high:
                raise ConfigError(
                    f"tunable {self.name!r}: default {self.default!r} outside "
                    f"[{self.low}, {self.high}]"
                )
            if self.log and self.low <= 0:
                raise ConfigError(
                    f"tunable {self.name!r}: log scale needs low > 0"
                )

    # ------------------------------------------------------------------
    def coerce(self, value: object) -> object:
        """Parse/validate one value for this tunable; raises ConfigError."""
        if self.kind == "choice":
            for choice in self.choices:
                if value == choice or str(value) == str(choice):
                    return choice
            raise ConfigError(
                f"tunable {self.name!r}: {value!r} not among "
                f"choices {self.choices}"
            )
        try:
            if self.kind == "int":
                if isinstance(value, float) and not value.is_integer():
                    raise ValueError(value)
                number: object = int(value)  # type: ignore[call-overload]
            else:
                number = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ConfigError(
                f"tunable {self.name!r}: {value!r} is not a valid {self.kind}"
            ) from None
        if not self.low <= number <= self.high:  # type: ignore[operator]
            raise ConfigError(
                f"tunable {self.name!r}: {number!r} outside "
                f"[{self.low}, {self.high}]"
            )
        return number

    def bounds_text(self) -> str:
        if self.kind == "choice":
            return "{" + ", ".join(str(c) for c in self.choices) + "}"
        low = _value_text(self.low)
        high = _value_text(self.high)
        scale = ", log" if self.log else ""
        return f"[{low}, {high}{scale}]"


@dataclass(frozen=True)
class ParameterSpace:
    """The ordered tunables of one approach (policy + scheduler + osmm)."""

    approach: str
    tunables: Tuple[Tunable, ...] = ()

    def __post_init__(self) -> None:
        seen: Dict[str, str] = {}
        for tunable in self.tunables:
            if tunable.name in seen:
                raise ConfigError(
                    f"approach {self.approach!r}: tunable {tunable.name!r} "
                    f"declared by both {seen[tunable.name]} and "
                    f"{tunable.target}"
                )
            seen[tunable.name] = tunable.target

    def __len__(self) -> int:
        return len(self.tunables)

    def names(self) -> List[str]:
        return [t.name for t in self.tunables]

    def get(self, name: str) -> Tunable:
        for tunable in self.tunables:
            if tunable.name == name:
                return tunable
        known = ", ".join(self.names()) or "(none)"
        raise ConfigError(
            f"approach {self.approach!r} has no tunable {name!r}; "
            f"known: {known}"
        )

    def defaults(self) -> Dict[str, object]:
        return {t.name: t.default for t in self.tunables}

    def coerce_point(self, params: Dict[str, object]) -> Dict[str, object]:
        """Validate a parameter point against this space (bounds, types)."""
        return {name: self.get(name).coerce(value) for name, value in params.items()}


# ----------------------------------------------------------------------
# Canonical point <-> string forms (the "@k=v,..." approach-name suffix).

def _value_text(value: object) -> str:
    """Deterministic text form; floats use repr (shortest round-trip)."""
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return repr(value)
    return str(value)


def format_params(params: Dict[str, object]) -> str:
    """Canonical ``k=v,k2=v2`` text of a point (sorted by name)."""
    return ",".join(
        f"{name}={_value_text(params[name])}" for name in sorted(params)
    )


def parameterized_name(base: str, params: Dict[str, object]) -> str:
    """The approach name for ``base`` at ``params``.

    An empty point is *the base name itself* — the paper-default point
    shares its store entries with ordinary campaigns.
    """
    if not params:
        return base
    return f"{base}@{format_params(params)}"


def parse_params(text: str) -> Dict[str, str]:
    """Split a ``k=v,k2=v2`` suffix into raw string values."""
    params: Dict[str, str] = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        name, sep, value = item.partition("=")
        if not sep or not name or not value:
            raise ConfigError(
                f"bad approach parameter {item!r}; expected name=value"
            )
        if name in params:
            raise ConfigError(f"approach parameter {name!r} given twice")
        params[name] = value
    if not params:
        raise ConfigError("an '@' approach name needs at least one name=value")
    return params


# ----------------------------------------------------------------------
# Space assembly from the tunables() declarations.

def _policy_class(name: str) -> Optional[type]:
    from ..baselines.base import _REGISTRY

    return _REGISTRY.get(name)


def _scheduler_class(name: str) -> Optional[type]:
    from ..memctrl.schedulers import _REGISTRY

    return _REGISTRY.get(name)


def _declared(cls: Optional[type], target: str) -> List[Tunable]:
    if cls is None or not hasattr(cls, "tunables"):
        return []
    out: List[Tunable] = []
    for tunable in cls.tunables():
        if tunable.target != target:
            raise ConfigError(
                f"{cls.__name__}.tunables() declared {tunable.name!r} with "
                f"target {tunable.target!r}; expected {target!r}"
            )
        out.append(tunable)
    return out


def approach_space(approach) -> ParameterSpace:
    """The full parameter space of one approach.

    ``approach`` is an :class:`~repro.core.integration.Approach` (or a
    name resolvable to one). Policy and scheduler classes contribute via
    their ``tunables()`` declarations; partitioning approaches (policy
    other than ``shared``) additionally expose the migration engine's
    OS-level knobs.
    """
    if isinstance(approach, str):
        from ..core.integration import get_approach

        approach = get_approach(approach)
    tunables: List[Tunable] = []
    tunables.extend(_declared(_policy_class(approach.policy), "policy"))
    tunables.extend(_declared(_scheduler_class(approach.scheduler), "scheduler"))
    if approach.policy != "shared":
        from ..osmm.migration import MigrationEngine

        tunables.extend(_declared(MigrationEngine, "osmm"))
    return ParameterSpace(approach=approach.name, tunables=tuple(tunables))


def split_point(
    space: ParameterSpace, params: Dict[str, object]
) -> Dict[str, Dict[str, object]]:
    """A coerced point split by target layer: policy/scheduler/osmm."""
    out: Dict[str, Dict[str, object]] = {t: {} for t in TARGETS}
    for name, value in space.coerce_point(params).items():
        out[space.get(name).target][name] = value
    return out


# ----------------------------------------------------------------------
# Deriving a concrete Approach from a parameterized name.

def derive_approach(base, param_text: str):
    """Resolve ``base@param_text`` into a derived Approach.

    Pure function of (base approach, text): workers, store keys, and the
    results index all resolve the same string to the same object. The
    derived name is canonicalized (sorted params, repr floats) so two
    spellings of one point share a single store entry.
    """
    from ..core.integration import Approach

    space = approach_space(base)
    raw = parse_params(param_text)
    point = space.coerce_point(dict(raw))
    layers = split_point(space, point)
    if layers["osmm"]:
        names = ", ".join(sorted(layers["osmm"]))
        raise ConfigError(
            f"approach {base.name!r}: {names} are OS/migration tunables and "
            "cannot ride in an approach name (the migration engine is built "
            "from the SystemConfig) — the tuner applies them via the run "
            "config instead"
        )
    policy_params = dict(base.policy_params)
    if layers["policy"]:
        cls = _policy_class(base.policy)
        if cls is not None and hasattr(cls, "from_tunables"):
            policy_params.update(cls.from_tunables(layers["policy"]))
        else:
            policy_params.update(layers["policy"])
    scheduler_params = dict(base.scheduler_params)
    scheduler_params.update(layers["scheduler"])
    name = parameterized_name(base.name, point)
    suffix = format_params(point)
    return Approach(
        name=name,
        policy=base.policy,
        scheduler=base.scheduler,
        policy_params=policy_params,
        scheduler_params=scheduler_params,
        description=f"{base.description} [tuned: {suffix}]",
    )
