"""The tuning loop: strategy + objective + persistence in one call.

:func:`run_study` is the subsystem's entry point (the CLI's ``tune run``
is a thin wrapper): it evaluates the paper-default point first (trial 0,
the frontier baseline), then drives the chosen searcher through its
budget, persisting every trial into the ``tuning_trials`` table of the
store's SQLite index as it lands. Study names are deterministic by
default — re-running the same command upserts the same rows and serves
every simulation from the content-addressed store.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..campaign.store import ResultStore, default_store_dir
from ..config import SystemConfig
from ..results.db import ResultIndex, index_path_for
from .objective import CampaignObjective, TrialResult
from .searchers import Searcher, make_searcher
from .trials import record_trial

__all__ = ["StudyResult", "run_study", "study_name"]

ProgressFn = Callable[[TrialResult], None]


def study_name(
    approach: str, strategy: str, objective: str, seed: int
) -> str:
    """The deterministic default study name (stable across re-runs)."""
    return f"{approach}-{strategy}-{objective}-s{seed}"


@dataclass
class StudyResult:
    """Everything one tuning study produced."""

    study: str
    strategy: str
    objective: str
    base_approach: str
    mixes: List[str]
    seed: int
    trials: List[TrialResult] = field(default_factory=list)
    wall_clock: float = 0.0

    @property
    def default_trial(self) -> Optional[TrialResult]:
        for trial in self.trials:
            if trial.is_default:
                return trial
        return None

    @property
    def best(self) -> Optional[TrialResult]:
        """Best-scoring *full-fidelity* trial (screening rungs run a
        shorter horizon, so their scores are not comparable)."""
        full = [
            t
            for t in self.trials
            if t.score is not None and t.point.fidelity >= 1.0
        ]
        return max(full, key=lambda t: t.score) if full else None

    @property
    def total_runs(self) -> int:
        return sum(t.cached + t.executed for t in self.trials)

    @property
    def cache_hits(self) -> int:
        return sum(t.cached for t in self.trials)

    @property
    def cache_hit_rate(self) -> float:
        total = self.total_runs
        return self.cache_hits / total if total else 0.0

    def trial_row(self, trial: TrialResult) -> Dict[str, object]:
        """The ``tuning_trials`` row of one trial of this study."""
        row = trial.as_row()
        row.update(
            study=self.study,
            strategy=self.strategy,
            objective=self.objective,
            base_approach=self.base_approach,
            mixes=json.dumps(self.mixes),
            seed=self.seed,
            params=json.dumps(trial.point.params_dict(), sort_keys=True),
        )
        return row


def run_study(
    approach: str = "dbp",
    strategy: str = "random",
    budget: int = 12,
    objective: str = "balanced",
    seed: int = 1,
    mixes: Sequence[str] = ("M4", "M7"),
    horizon: int = 400_000,
    config: Optional[SystemConfig] = None,
    store: Optional[ResultStore] = None,
    index: Optional[ResultIndex] = None,
    jobs: int = 1,
    study: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    searcher_opts: Optional[Dict[str, object]] = None,
    min_horizon: int = 10_000,
    retries: int = 1,
    timeout: Optional[float] = None,
) -> StudyResult:
    """Run one seeded tuning study end to end and persist its trials.

    The default point always evaluates first (at full fidelity) so the
    frontier report can compare tuned points against the paper baseline.
    ``budget`` counts *searched* trials only; the baseline rides free.
    With no ``store`` the default store location is used — tuning without
    a store would re-simulate every repeated point.
    """
    started = time.perf_counter()
    if store is None:
        store = ResultStore(default_store_dir())
    if index is None:
        index = ResultIndex(index_path_for(store.root))
    campaign_objective = CampaignObjective(
        approach,
        mixes,
        objective=objective,
        horizon=horizon,
        seed=seed,
        config=config,
        store=store,
        jobs=jobs,
        min_horizon=min_horizon,
        retries=retries,
        timeout=timeout,
    )
    searcher: Searcher = make_searcher(
        strategy,
        campaign_objective.space,
        budget,
        seed,
        **(searcher_opts or {}),
    )
    result = StudyResult(
        study=study or study_name(approach, strategy, objective, seed),
        strategy=strategy,
        objective=objective,
        base_approach=approach,
        mixes=[m.name for m in campaign_objective.mixes],
        seed=seed,
    )

    def _record(trial: TrialResult) -> None:
        result.trials.append(trial)
        record_trial(index, result.trial_row(trial))
        if progress is not None:
            progress(trial)

    _record(campaign_objective.evaluate(campaign_objective.default_point()))
    while True:
        point = searcher.propose()
        if point is None:
            break
        trial = campaign_objective.evaluate(point)
        searcher.observe(point, trial.score)
        _record(trial)
    result.wall_clock = time.perf_counter() - started
    return result
