"""Per-bank row-buffer state machine.

A bank tracks its open row and the earliest CPU cycle at which each command
class may legally be issued to it. The surrounding :class:`~repro.dram.rank.Rank`
and :class:`~repro.dram.channel.Channel` add the rank- and bus-level
constraints; a command is legal only when all three levels agree.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..errors import ProtocolError
from .timing import DRAMTimings


class BankState(enum.Enum):
    """DDR3 bank states the model distinguishes."""

    IDLE = "idle"  # precharged, no open row
    ACTIVE = "active"  # a row is open in the row buffer


class Bank:
    """One DRAM bank: an open-row register plus timing horizons.

    All ``earliest_*`` attributes are absolute CPU-cycle timestamps before
    which the corresponding command must not be issued to this bank.
    """

    __slots__ = (
        "rank_id",
        "bank_id",
        "timings",
        "state",
        "open_row",
        "earliest_activate",
        "earliest_read",
        "earliest_write",
        "earliest_precharge",
        "stat_activates",
        "stat_reads",
        "stat_writes",
        "stat_precharges",
    )

    def __init__(self, rank_id: int, bank_id: int, timings: DRAMTimings) -> None:
        self.rank_id = rank_id
        self.bank_id = bank_id
        self.timings = timings
        self.state = BankState.IDLE
        self.open_row: Optional[int] = None
        self.earliest_activate = 0
        self.earliest_read = 0
        self.earliest_write = 0
        self.earliest_precharge = 0
        self.stat_activates = 0
        self.stat_reads = 0
        self.stat_writes = 0
        self.stat_precharges = 0

    # ------------------------------------------------------------------
    # Legality queries (bank-level constraints only).
    # ------------------------------------------------------------------
    def activate_ready_at(self) -> int:
        """Earliest cycle an ACTIVATE is bank-legal (state permitting)."""
        return self.earliest_activate

    def cas_ready_at(self, is_write: bool) -> int:
        """Earliest cycle a READ/WRITE to the open row is bank-legal."""
        return self.earliest_write if is_write else self.earliest_read

    def precharge_ready_at(self) -> int:
        """Earliest cycle a PRECHARGE is bank-legal."""
        return self.earliest_precharge

    def is_open(self, row: int) -> bool:
        """True if ``row`` is currently in the row buffer."""
        return self.state is BankState.ACTIVE and self.open_row == row

    # ------------------------------------------------------------------
    # Command application. Each raises ProtocolError on an illegal command,
    # which turns controller bugs into immediate, attributable failures.
    # ------------------------------------------------------------------
    def activate(self, now: int, row: int) -> None:
        """Open ``row``; the bank must be precharged and past tRC/tRP."""
        if self.state is not BankState.IDLE:
            raise ProtocolError(
                f"ACT to open bank rk{self.rank_id}/bk{self.bank_id} @{now}"
            )
        if now < self.earliest_activate:
            raise ProtocolError(
                f"ACT @{now} before earliest {self.earliest_activate} "
                f"(rk{self.rank_id}/bk{self.bank_id})"
            )
        t = self.timings
        self.state = BankState.ACTIVE
        self.open_row = row
        self.earliest_read = max(self.earliest_read, now + t.tRCD)
        self.earliest_write = max(self.earliest_write, now + t.tRCD)
        self.earliest_precharge = max(self.earliest_precharge, now + t.tRAS)
        self.earliest_activate = max(self.earliest_activate, now + t.tRC)
        self.stat_activates += 1

    def read(self, now: int, row: int) -> int:
        """Issue a READ to the open row; returns the last-data-beat cycle."""
        self._check_cas(now, row, is_write=False)
        t = self.timings
        # READ constrains how soon the row may be closed (tRTP).
        self.earliest_precharge = max(self.earliest_precharge, now + t.tRTP)
        self.stat_reads += 1
        return now + t.CL + t.tBURST

    def write(self, now: int, row: int) -> int:
        """Issue a WRITE to the open row; returns the last-data-beat cycle."""
        self._check_cas(now, row, is_write=True)
        t = self.timings
        # Write recovery: row must stay open tWR after the last data beat.
        data_end = now + t.CWL + t.tBURST
        self.earliest_precharge = max(self.earliest_precharge, data_end + t.tWR)
        self.stat_writes += 1
        return data_end

    def precharge(self, now: int) -> None:
        """Close the open row; the bank becomes IDLE after tRP."""
        if self.state is not BankState.ACTIVE:
            raise ProtocolError(
                f"PRE to idle bank rk{self.rank_id}/bk{self.bank_id} @{now}"
            )
        if now < self.earliest_precharge:
            raise ProtocolError(
                f"PRE @{now} before earliest {self.earliest_precharge} "
                f"(rk{self.rank_id}/bk{self.bank_id})"
            )
        self.state = BankState.IDLE
        self.open_row = None
        self.earliest_activate = max(
            self.earliest_activate, now + self.timings.tRP
        )
        self.stat_precharges += 1

    def block_until(self, cycle: int) -> None:
        """Push every horizon to ``cycle`` (used by rank-wide REFRESH)."""
        self.earliest_activate = max(self.earliest_activate, cycle)
        self.earliest_read = max(self.earliest_read, cycle)
        self.earliest_write = max(self.earliest_write, cycle)
        self.earliest_precharge = max(self.earliest_precharge, cycle)

    def _check_cas(self, now: int, row: int, is_write: bool) -> None:
        kind = "WR" if is_write else "RD"
        if self.state is not BankState.ACTIVE:
            raise ProtocolError(
                f"{kind} to idle bank rk{self.rank_id}/bk{self.bank_id} @{now}"
            )
        if self.open_row != row:
            raise ProtocolError(
                f"{kind} to row {row} but row {self.open_row} is open "
                f"(rk{self.rank_id}/bk{self.bank_id}) @{now}"
            )
        ready = self.cas_ready_at(is_write)
        if now < ready:
            raise ProtocolError(
                f"{kind} @{now} before earliest {ready} "
                f"(rk{self.rank_id}/bk{self.bank_id})"
            )
