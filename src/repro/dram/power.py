"""DRAM energy estimation from command counts.

A Micron-power-calculator-style model, simplified to the event granularity
this simulator tracks: each command class carries a per-event energy, plus
a background power term per rank. The per-event values are representative
of 2 Gbit x8 DDR3 parts (derived from IDD current specs at nominal VDD);
they are meant for *relative* comparisons between policies — e.g. "closed
page spends N% more activate energy" — not for absolute datasheet
validation.

Usage::

    from repro.dram.power import estimate_energy
    report = estimate_energy(system)   # after system.run()
    print(report.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import ConfigError


@dataclass(frozen=True)
class PowerParams:
    """Per-event energies (nanojoules) and background power (milliwatts)."""

    name: str
    activate_precharge_nj: float  # one ACT + its eventual PRE, per bank
    read_nj: float  # one read burst (BL8)
    write_nj: float  # one write burst
    refresh_nj: float  # one all-bank refresh of a rank
    background_mw_per_rank: float  # standby power, always on

    def __post_init__(self) -> None:
        for name in (
            "activate_precharge_nj",
            "read_nj",
            "write_nj",
            "refresh_nj",
            "background_mw_per_rank",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")


# Representative 2 Gbit x8 values (per-device numbers scaled to a 64-bit
# rank of eight devices).
DDR3_1066_POWER = PowerParams(
    name="DDR3-1066",
    activate_precharge_nj=2.2,
    read_nj=4.6,
    write_nj=4.8,
    refresh_nj=27.0,
    background_mw_per_rank=530.0,
)
DDR3_1333_POWER = PowerParams(
    name="DDR3-1333",
    activate_precharge_nj=2.1,
    read_nj=4.3,
    write_nj=4.5,
    refresh_nj=26.0,
    background_mw_per_rank=560.0,
)
DDR3_1600_POWER = PowerParams(
    name="DDR3-1600",
    activate_precharge_nj=2.0,
    read_nj=4.1,
    write_nj=4.3,
    refresh_nj=25.0,
    background_mw_per_rank=590.0,
)

POWER_PRESETS: Dict[str, PowerParams] = {
    p.name: p for p in (DDR3_1066_POWER, DDR3_1333_POWER, DDR3_1600_POWER)
}


@dataclass
class EnergyReport:
    """Energy breakdown of one run, in nanojoules."""

    activate_nj: float = 0.0
    read_nj: float = 0.0
    write_nj: float = 0.0
    refresh_nj: float = 0.0
    background_nj: float = 0.0
    per_channel_nj: Dict[int, float] = field(default_factory=dict)

    @property
    def dynamic_nj(self) -> float:
        """Energy caused by commands (everything but background)."""
        return (
            self.activate_nj + self.read_nj + self.write_nj + self.refresh_nj
        )

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.background_nj

    def render(self) -> str:
        """Human-readable breakdown."""
        rows = [
            ("activate+precharge", self.activate_nj),
            ("read bursts", self.read_nj),
            ("write bursts", self.write_nj),
            ("refresh", self.refresh_nj),
            ("background", self.background_nj),
            ("total", self.total_nj),
        ]
        width = max(len(label) for label, _ in rows)
        lines = [
            f"  {label:<{width}} : {value / 1e6:10.3f} mJ"
            for label, value in rows
        ]
        return "\n".join(lines)


def estimate_energy(system, params: PowerParams = None) -> EnergyReport:
    """Estimate DRAM energy of a finished :class:`~repro.sim.system.System`.

    Uses the per-bank command counters the device model maintains plus the
    elapsed simulated time for the background term. The CPU-cycle clock is
    converted to seconds through the preset's tCK and the system's clock
    ratio.
    """
    config = system.config
    if params is None:
        preset_name = config.dram_preset
        try:
            params = POWER_PRESETS[preset_name]
        except KeyError:
            raise ConfigError(
                f"no power parameters for preset {preset_name!r}"
            ) from None
    report = EnergyReport()
    for channel in system.channels:
        channel_nj = 0.0
        for rank in channel.ranks:
            for bank in rank.banks:
                act = bank.stat_activates * params.activate_precharge_nj
                rd = bank.stat_reads * params.read_nj
                wr = bank.stat_writes * params.write_nj
                report.activate_nj += act
                report.read_nj += rd
                report.write_nj += wr
                channel_nj += act + rd + wr
            ref = rank.stat_refreshes * params.refresh_nj
            report.refresh_nj += ref
            channel_nj += ref
        report.per_channel_nj[channel.channel_id] = channel_nj
    # Background: elapsed wall time = cycles * tCK / clock_ratio... the
    # engine counts CPU cycles, each lasting tCK / clock_ratio picoseconds?
    # No: one DRAM bus cycle = clock_ratio CPU cycles = tCK picoseconds.
    from ..dram.timing import preset as timing_preset

    tck_ps = timing_preset(config.dram_preset).tCK_ps
    elapsed_s = system.engine.now / config.clock_ratio * tck_ps * 1e-12
    ranks_total = config.organization.channels * config.organization.ranks_per_channel
    report.background_nj = (
        params.background_mw_per_rank * 1e-3 * ranks_total * elapsed_s * 1e9
    )
    return report
