"""DDR3 timing parameter sets.

All fields are expressed in DRAM bus cycles exactly as a datasheet gives
them. The simulator runs on a single CPU-cycle clock, so
:func:`scaled_timings` multiplies every field by the CPU:DRAM clock ratio
before the device model sees it.

The presets follow JEDEC DDR3 datasheet values for 2 Gbit x8 parts; they are
the configurations the TCM/MCP/DBP papers evaluate on (DDR3-1066 in TCM,
DDR3-1333/1600 in later work).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class DRAMTimings:
    """Primary DDR3 timing constraints, in DRAM bus cycles.

    Attributes mirror datasheet names:

    * ``tCK_ps``  — bus clock period in picoseconds (informational).
    * ``CL``      — CAS latency, READ to first data.
    * ``CWL``     — CAS write latency, WRITE to first data.
    * ``tBURST``  — data-bus occupancy of one column access (BL8 => 4).
    * ``tRCD``    — ACTIVATE to READ/WRITE, same bank.
    * ``tRP``     — PRECHARGE to ACTIVATE, same bank.
    * ``tRAS``    — ACTIVATE to PRECHARGE, same bank (minimum row open time).
    * ``tRC``     — ACTIVATE to ACTIVATE, same bank (tRAS + tRP).
    * ``tRRD``    — ACTIVATE to ACTIVATE, different banks, same rank.
    * ``tFAW``    — rolling window allowing at most four ACTIVATEs per rank.
    * ``tCCD``    — CAS to CAS, same rank.
    * ``tRTP``    — READ to PRECHARGE, same bank.
    * ``tWR``     — end of write data to PRECHARGE, same bank.
    * ``tWTR``    — end of write data to READ, same rank.
    * ``tRTW``    — READ command to WRITE command, same channel (bus turnaround).
    * ``tRTRS``   — rank-to-rank data-bus switch penalty.
    * ``tREFI``   — average interval between refresh commands.
    * ``tRFC``    — refresh cycle time (rank busy after REFRESH).
    """

    name: str
    tCK_ps: int
    CL: int
    CWL: int
    tBURST: int
    tRCD: int
    tRP: int
    tRAS: int
    tRC: int
    tRRD: int
    tFAW: int
    tCCD: int
    tRTP: int
    tWR: int
    tWTR: int
    tRTW: int
    tRTRS: int
    tREFI: int
    tRFC: int

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if field.name in ("name",):
                continue
            value = getattr(self, field.name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigError(
                    f"timing {field.name} must be a positive int, got {value!r}"
                )
        if self.tRC < self.tRAS + self.tRP:
            raise ConfigError(
                f"tRC ({self.tRC}) must be >= tRAS + tRP "
                f"({self.tRAS} + {self.tRP})"
            )
        if self.tFAW < self.tRRD:
            raise ConfigError("tFAW must be >= tRRD")

    @property
    def read_latency(self) -> int:
        """Cycles from READ issue to last data beat (CL + tBURST)."""
        return self.CL + self.tBURST

    @property
    def write_latency(self) -> int:
        """Cycles from WRITE issue to last data beat (CWL + tBURST)."""
        return self.CWL + self.tBURST


# DDR3-1066 (533 MHz bus), 7-7-7 grade — the configuration in the TCM paper.
DDR3_1066 = DRAMTimings(
    name="DDR3-1066",
    tCK_ps=1875,
    CL=7,
    CWL=6,
    tBURST=4,
    tRCD=7,
    tRP=7,
    tRAS=20,
    tRC=27,
    tRRD=4,
    tFAW=20,
    tCCD=4,
    tRTP=4,
    tWR=8,
    tWTR=4,
    tRTW=5,
    tRTRS=2,
    tREFI=4160,
    tRFC=86,
)

# DDR3-1333 (667 MHz bus), 9-9-9 grade.
DDR3_1333 = DRAMTimings(
    name="DDR3-1333",
    tCK_ps=1500,
    CL=9,
    CWL=7,
    tBURST=4,
    tRCD=9,
    tRP=9,
    tRAS=24,
    tRC=33,
    tRRD=4,
    tFAW=20,
    tCCD=4,
    tRTP=5,
    tWR=10,
    tWTR=5,
    tRTW=6,
    tRTRS=2,
    tREFI=5200,
    tRFC=107,
)

# DDR3-1600 (800 MHz bus), 11-11-11 grade — our default.
DDR3_1600 = DRAMTimings(
    name="DDR3-1600",
    tCK_ps=1250,
    CL=11,
    CWL=8,
    tBURST=4,
    tRCD=11,
    tRP=11,
    tRAS=28,
    tRC=39,
    tRRD=5,
    tFAW=24,
    tCCD=4,
    tRTP=6,
    tWR=12,
    tWTR=6,
    tRTW=7,
    tRTRS=2,
    tREFI=6240,
    tRFC=128,
)

PRESETS = {
    preset.name: preset for preset in (DDR3_1066, DDR3_1333, DDR3_1600)
}


def preset(name: str) -> DRAMTimings:
    """Look up a timing preset by datasheet name (e.g. ``"DDR3-1600"``)."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ConfigError(f"unknown DRAM preset {name!r}; known: {known}") from None


def scaled_timings(timings: DRAMTimings, clock_ratio: int) -> DRAMTimings:
    """Convert a preset from DRAM bus cycles to CPU cycles.

    ``clock_ratio`` is the integer number of CPU cycles per DRAM bus cycle
    (e.g. 4 for 3.2 GHz cores on an 800 MHz bus).
    """
    if clock_ratio < 1:
        raise ConfigError(f"clock_ratio must be >= 1, got {clock_ratio}")
    if clock_ratio == 1:
        return timings
    scaled = {}
    for field in dataclasses.fields(timings):
        value = getattr(timings, field.name)
        if field.name in ("name", "tCK_ps"):
            scaled[field.name] = value
        else:
            scaled[field.name] = value * clock_ratio
    scaled["name"] = f"{timings.name}@x{clock_ratio}"
    return DRAMTimings(**scaled)
