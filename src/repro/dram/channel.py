"""Channel-level DRAM state: command bus, data bus, and turnaround rules.

The channel is the interface the memory controller drives. It aggregates the
three constraint levels — bank horizons, rank activation windows, and the
shared command/data buses — into ``earliest_*`` queries the controller uses
both to pick commands and to event-skip to the next interesting cycle.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ProtocolError
from .bank import Bank
from .commands import Command, CommandType
from .rank import Rank
from .timing import DRAMTimings

# A long-past timestamp used to initialize "last event" trackers.
_NEVER = -(10**9)


class Channel:
    """One memory channel: ranks plus the shared command and data buses."""

    def __init__(
        self,
        channel_id: int,
        num_ranks: int,
        num_banks: int,
        timings: DRAMTimings,
        clock_ratio: int = 1,
        refresh_enabled: bool = True,
    ) -> None:
        self.channel_id = channel_id
        self.timings = timings
        self.clock_ratio = clock_ratio
        self.ranks: List[Rank] = [
            Rank(channel_id, r, num_banks, timings, refresh_enabled)
            for r in range(num_ranks)
        ]
        # Command bus: one command per DRAM bus cycle.
        self._next_cmd_free = 0
        # Data bus bookkeeping for CAS-to-CAS constraints. Rank-indexed
        # state lives in flat lists (struct-of-arrays): ranks are dense
        # small integers and these fields sit on the hottest query path.
        self._last_cas_issue_by_rank: List[Optional[int]] = [None] * num_ranks
        self._last_cas_rank: Optional[int] = None
        self._last_data_end = _NEVER
        self._last_read_issue = _NEVER
        self._last_write_data_end_by_rank: List[Optional[int]] = (
            [None] * num_ranks
        )
        self.command_log: Optional[List[Command]] = None
        self.stat_commands = 0
        # Flight-recorder counters, bumped by the controller's fast
        # kernel: per-decision cas_floor computations vs per-rank cache
        # reuses. The reference kernel never touches them (stays zero).
        self.kc_cas_floor_computed = 0
        self.kc_cas_floor_skipped = 0

    # ------------------------------------------------------------------
    # Topology helpers.
    # ------------------------------------------------------------------
    def bank(self, rank: int, bank: int) -> Bank:
        """The :class:`Bank` object at (rank, bank)."""
        return self.ranks[rank].banks[bank]

    def enable_logging(self) -> None:
        """Record every issued command (used by the protocol validator)."""
        self.command_log = []

    # ------------------------------------------------------------------
    # Earliest-issue queries. Each returns an absolute CPU cycle; the
    # controller may issue the command at any cycle >= that value (subject
    # to the one-command-per-bus-cycle rule folded in here).
    # ------------------------------------------------------------------
    def command_bus_free_at(self) -> int:
        """Earliest cycle the command bus has a free slot."""
        return self._next_cmd_free

    def earliest_activate(self, rank: int, bank: int) -> int:
        """Earliest legal ACTIVATE to (rank, bank), all constraints."""
        r = self.ranks[rank]
        return max(
            self._next_cmd_free,
            r.banks[bank].activate_ready_at(),
            r.activate_ready_at(),
        )

    def earliest_precharge(self, rank: int, bank: int) -> int:
        """Earliest legal PRECHARGE to (rank, bank)."""
        return max(
            self._next_cmd_free,
            self.ranks[rank].banks[bank].precharge_ready_at(),
        )

    def cas_floor(self, rank: int, is_write: bool) -> int:
        """Bank-independent part of :meth:`earliest_cas`.

        Folds in the command bus, same-rank tCCD and tWTR, read-to-write
        turnaround, cross-rank tRTRS, and raw data-bus occupancy — every
        constraint shared by all banks of ``rank``. The controller's fast
        kernel computes this once per (rank, direction) per decision and
        combines it with each candidate bank's own horizon.
        """
        t = self.timings
        issue = self._next_cmd_free
        # Same-rank CAS-to-CAS spacing.
        last_same = self._last_cas_issue_by_rank[rank]
        if last_same is not None:
            ccd = last_same + t.tCCD
            if ccd > issue:
                issue = ccd
        # Data-bus occupancy: next burst starts after the previous ends,
        # with a tRTRS bubble when switching driving rank.
        if self._last_data_end != _NEVER:
            gap = t.tRTRS if self._last_cas_rank not in (None, rank) else 0
            data_lead = t.CWL if is_write else t.CL
            bus = self._last_data_end + gap - data_lead
            if bus > issue:
                issue = bus
        if is_write:
            # Read-to-write turnaround on the shared bus.
            if self._last_read_issue != _NEVER:
                rtw = self._last_read_issue + t.tRTW
                if rtw > issue:
                    issue = rtw
        else:
            # Write-to-read: tWTR after the last write data beat, same rank.
            last_wr = self._last_write_data_end_by_rank[rank]
            if last_wr is not None:
                wtr = last_wr + t.tWTR
                if wtr > issue:
                    issue = wtr
        return issue

    def earliest_cas(self, rank: int, bank: int, is_write: bool) -> int:
        """Earliest legal READ/WRITE to the open row of (rank, bank).

        Folds in bank tRCD, same-rank tCCD and tWTR, read-to-write
        turnaround, cross-rank tRTRS, and raw data-bus occupancy.
        """
        floor = self.cas_floor(rank, is_write)
        ready = self.ranks[rank].banks[bank].cas_ready_at(is_write)
        return ready if ready > floor else floor

    def earliest_refresh(self, rank: int) -> int:
        """Earliest legal REFRESH (requires all banks idle; bank horizons)."""
        r = self.ranks[rank]
        ready = self._next_cmd_free
        for bank in r.banks:
            # After a precharge the bank must have completed tRP before the
            # refresh can begin; earliest_activate already encodes that.
            ready = max(ready, bank.activate_ready_at())
        return ready

    # ------------------------------------------------------------------
    # Issue.
    # ------------------------------------------------------------------
    def issue(self, command: Command) -> int:
        """Apply ``command`` to the device state.

        Returns the last-data-beat cycle for CAS commands, the rank-free
        cycle for REFRESH, and 0 otherwise. Raises :class:`ProtocolError`
        for any illegal command — the device model is intentionally strict
        so controller bugs cannot silently corrupt timing.
        """
        now = command.cycle
        if command.channel != self.channel_id:
            raise ProtocolError(
                f"command for channel {command.channel} issued to "
                f"channel {self.channel_id}"
            )
        if now < self._next_cmd_free:
            raise ProtocolError(
                f"command bus busy until {self._next_cmd_free}, got {command}"
            )
        result = 0
        kind = command.kind
        # CAS first: half of all issued commands are READ/WRITE.
        if kind is CommandType.READ or kind is CommandType.WRITE:
            result = self._issue_cas(command)
        elif kind is CommandType.ACTIVATE:
            self._issue_activate(command)
        elif kind is CommandType.PRECHARGE:
            self.ranks[command.rank].banks[command.bank].precharge(now)
        elif kind is CommandType.REFRESH:
            result = self.ranks[command.rank].refresh(now)
        else:  # pragma: no cover - exhaustive over CommandType
            raise ProtocolError(f"unknown command kind {command.kind}")
        self._next_cmd_free = now + self.clock_ratio
        self.stat_commands += 1
        if self.command_log is not None:
            self.command_log.append(command)
        return result

    def _issue_activate(self, command: Command) -> None:
        rank = self.ranks[command.rank]
        if command.cycle < rank.activate_ready_at():
            raise ProtocolError(
                f"{command} violates tRRD/tFAW (rank ready "
                f"@{rank.activate_ready_at()})"
            )
        rank.banks[command.bank].activate(command.cycle, command.row)
        rank.record_activate(command.cycle)

    def _issue_cas(self, command: Command) -> int:
        is_write = command.kind is CommandType.WRITE
        rank = command.rank
        now = command.cycle
        earliest = self.earliest_cas(rank, command.bank, is_write)
        if now < earliest:
            raise ProtocolError(
                f"{command} violates bus/turnaround timing "
                f"(earliest @{earliest})"
            )
        bank = self.ranks[rank].banks[command.bank]
        row = bank.open_row
        if row is None:
            raise ProtocolError(f"{command} to a bank with no open row")
        if is_write:
            data_end = bank.write(now, row)
            self._last_write_data_end_by_rank[rank] = data_end
        else:
            data_end = bank.read(now, row)
            self._last_read_issue = now
        self._last_cas_issue_by_rank[rank] = now
        self._last_cas_rank = rank
        self._last_data_end = data_end
        return data_end

    # ------------------------------------------------------------------
    # Refresh bookkeeping surface for the controller.
    # ------------------------------------------------------------------
    def refresh_pending(self, now: int) -> List[int]:
        """Ranks with a refresh due at or before ``now``."""
        return [r.rank_id for r in self.ranks if r.refresh_pending(now)]

    def open_banks(self, rank: int) -> List[Tuple[int, int]]:
        """(bank_id, open_row) for every open bank in ``rank``."""
        out = []
        for bank in self.ranks[rank].banks:
            if bank.open_row is not None:
                out.append((bank.bank_id, bank.open_row))
        return out

    # ------------------------------------------------------------------
    # Observability (pull model: reads the stat counters, post-run).
    # ------------------------------------------------------------------
    def collect_metrics(self, registry) -> None:
        """Export device-level state into a metrics registry."""
        channel = str(self.channel_id)
        registry.counter(
            "repro_dram_commands_total", "DRAM commands issued on the bus"
        ).inc(self.stat_commands, channel=channel)
        refreshes = registry.counter(
            "repro_dram_refreshes_total", "REFRESH commands per rank"
        )
        open_rows = registry.gauge(
            "repro_dram_open_rows", "Banks left with an open row at collect"
        )
        for rank in self.ranks:
            refreshes.inc(
                rank.stat_refreshes, channel=channel, rank=str(rank.rank_id)
            )
            open_rows.set(
                len(self.open_banks(rank.rank_id)),
                channel=channel,
                rank=str(rank.rank_id),
            )
        floor = registry.counter(
            "repro_kernel_cas_floor_total",
            "Fast-kernel cas_floor evaluations: computed vs per-rank reuse",
        )
        floor.inc(self.kc_cas_floor_computed, channel=channel, result="computed")
        floor.inc(self.kc_cas_floor_skipped, channel=channel, result="skipped")
