"""DDR3 DRAM device model.

The model is organized the way the real device is: a :class:`~repro.dram.channel.Channel`
owns ranks, a :class:`~repro.dram.rank.Rank` owns banks and rank-wide timing
state (tRRD/tFAW windows, refresh), and a :class:`~repro.dram.bank.Bank` is a
row-buffer state machine. All timing parameters come from
:class:`~repro.dram.timing.DRAMTimings` presets expressed in DRAM bus cycles
and scaled to CPU cycles by the system's clock ratio.

:class:`~repro.dram.validator.ProtocolValidator` is an independent re-check of
the protocol used by the test suite: it replays observed command streams and
raises on any timing violation, so the device model and the validator guard
each other.
"""

from .commands import Command, CommandType
from .timing import DRAMTimings, DDR3_1066, DDR3_1333, DDR3_1600, scaled_timings
from .bank import Bank, BankState
from .rank import Rank
from .channel import Channel
from .validator import ProtocolValidator
from .power import EnergyReport, PowerParams, estimate_energy

__all__ = [
    "Command",
    "CommandType",
    "DRAMTimings",
    "DDR3_1066",
    "DDR3_1333",
    "DDR3_1600",
    "scaled_timings",
    "Bank",
    "BankState",
    "Rank",
    "Channel",
    "ProtocolValidator",
    "EnergyReport",
    "PowerParams",
    "estimate_energy",
]
