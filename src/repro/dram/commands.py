"""DRAM command vocabulary.

The controller drives the device exclusively through :class:`Command`
instances; the validator replays the same objects. Keeping the command a
frozen dataclass makes streams hashable and safe to log.
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Optional


class CommandType(enum.Enum):
    """The five DDR3 commands the model issues."""

    ACTIVATE = "ACT"
    READ = "RD"
    WRITE = "WR"
    PRECHARGE = "PRE"
    REFRESH = "REF"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# Column commands occupy the shared data bus; the other commands only use
# the command/address bus.
CAS_COMMANDS = frozenset({CommandType.READ, CommandType.WRITE})


class Command(NamedTuple):
    """One command as placed on a channel's command bus.

    ``cycle`` is the CPU-cycle timestamp at which the command was issued.
    ``row`` is meaningful only for ACTIVATE; REFRESH is rank-wide so ``bank``
    is -1 for it.

    A NamedTuple rather than a frozen dataclass: commands are created on
    the controller's hot path (one per issued DRAM command), and tuple
    construction is several times cheaper while staying immutable,
    hashable, and safe to log.
    """

    cycle: int
    kind: CommandType
    channel: int
    rank: int
    bank: int
    row: int = -1
    thread_id: Optional[int] = None

    def is_cas(self) -> bool:
        """True for READ/WRITE, the commands that move data."""
        return self.kind in CAS_COMMANDS

    def same_bank(self, other: "Command") -> bool:
        """True if ``other`` addresses the same (channel, rank, bank)."""
        return (
            self.channel == other.channel
            and self.rank == other.rank
            and self.bank == other.bank
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        target = f"ch{self.channel}/rk{self.rank}/bk{self.bank}"
        if self.kind is CommandType.ACTIVATE:
            target += f"/row{self.row}"
        return f"@{self.cycle} {self.kind.value} {target}"
