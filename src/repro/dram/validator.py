"""Independent DDR3 protocol checker.

:class:`ProtocolValidator` replays a command stream and verifies every
inter-command timing rule from first principles, sharing no state with the
device model in :mod:`repro.dram.bank`/``rank``/``channel``. The test suite
attaches it to full-system runs, so the device model and the validator guard
each other: a bug in either produces a loud, attributable failure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ProtocolError
from .commands import Command, CommandType
from .timing import DRAMTimings

_NEVER = -(10**9)


@dataclass
class _BankView:
    open_row: Optional[int] = None
    last_activate: int = _NEVER
    last_precharge_done: int = _NEVER  # cycle bank becomes usable (PRE + tRP)
    last_read: int = _NEVER
    last_write_data_end: int = _NEVER
    activate_count: int = 0


@dataclass
class _RankView:
    recent_activates: Deque[int] = field(default_factory=lambda: deque(maxlen=4))
    blocked_until: int = _NEVER  # refresh blackout
    last_cas_issue: int = _NEVER
    last_write_data_end: int = _NEVER


class ProtocolValidator:
    """Replays DRAM commands for one channel and raises on violations.

    Feed it every command via :meth:`observe`, in issue order. Violations
    raise :class:`ProtocolError` with the rule name in the message.
    """

    def __init__(
        self,
        timings: DRAMTimings,
        num_ranks: int,
        num_banks: int,
        clock_ratio: int = 1,
    ) -> None:
        self.timings = timings
        self.clock_ratio = clock_ratio
        self._banks: Dict[Tuple[int, int], _BankView] = {
            (r, b): _BankView()
            for r in range(num_ranks)
            for b in range(num_banks)
        }
        self._ranks: Dict[int, _RankView] = {
            r: _RankView() for r in range(num_ranks)
        }
        self._last_cmd_cycle = _NEVER
        self._last_data_end = _NEVER
        self._last_data_rank: Optional[int] = None
        self._last_read_issue = _NEVER
        self.commands_checked = 0

    # ------------------------------------------------------------------
    def observe(self, cmd: Command) -> None:
        """Check one command against every applicable rule."""
        self._check_bus(cmd)
        rank = self._ranks[cmd.rank]
        if cmd.cycle < rank.blocked_until:
            self._fail(cmd, f"rank in tRFC blackout until {rank.blocked_until}")
        if cmd.kind is CommandType.ACTIVATE:
            self._check_activate(cmd)
        elif cmd.kind is CommandType.PRECHARGE:
            self._check_precharge(cmd)
        elif cmd.kind is CommandType.READ:
            self._check_cas(cmd, is_write=False)
        elif cmd.kind is CommandType.WRITE:
            self._check_cas(cmd, is_write=True)
        elif cmd.kind is CommandType.REFRESH:
            self._check_refresh(cmd)
        else:  # pragma: no cover - exhaustive
            self._fail(cmd, "unknown command kind")
        self._last_cmd_cycle = cmd.cycle
        self.commands_checked += 1

    def observe_all(self, commands: List[Command]) -> int:
        """Check a full stream; returns the number of commands checked."""
        for cmd in commands:
            self.observe(cmd)
        return self.commands_checked

    # ------------------------------------------------------------------
    def _fail(self, cmd: Command, rule: str) -> None:
        raise ProtocolError(f"protocol violation [{rule}]: {cmd}")

    def _check_bus(self, cmd: Command) -> None:
        if self._last_cmd_cycle != _NEVER:
            if cmd.cycle < self._last_cmd_cycle:
                self._fail(cmd, "commands out of order")
            if cmd.cycle - self._last_cmd_cycle < self.clock_ratio:
                self._fail(cmd, "command bus: one command per bus cycle")

    def _check_activate(self, cmd: Command) -> None:
        t = self.timings
        bank = self._banks[(cmd.rank, cmd.bank)]
        rank = self._ranks[cmd.rank]
        if bank.open_row is not None:
            self._fail(cmd, "ACT to a bank with an open row")
        if cmd.row < 0:
            self._fail(cmd, "ACT without a row")
        if cmd.cycle < bank.last_precharge_done:
            self._fail(cmd, "tRP")
        if bank.last_activate != _NEVER and cmd.cycle < bank.last_activate + t.tRC:
            self._fail(cmd, "tRC")
        if rank.recent_activates:
            if cmd.cycle < rank.recent_activates[-1] + t.tRRD:
                self._fail(cmd, "tRRD")
            if (
                len(rank.recent_activates) == 4
                and cmd.cycle < rank.recent_activates[0] + t.tFAW
            ):
                self._fail(cmd, "tFAW")
        bank.open_row = cmd.row
        bank.last_activate = cmd.cycle
        bank.activate_count += 1
        rank.recent_activates.append(cmd.cycle)

    def _check_precharge(self, cmd: Command) -> None:
        t = self.timings
        bank = self._banks[(cmd.rank, cmd.bank)]
        if bank.open_row is None:
            self._fail(cmd, "PRE to an idle bank")
        if cmd.cycle < bank.last_activate + t.tRAS:
            self._fail(cmd, "tRAS")
        if bank.last_read != _NEVER and cmd.cycle < bank.last_read + t.tRTP:
            self._fail(cmd, "tRTP")
        if (
            bank.last_write_data_end != _NEVER
            and cmd.cycle < bank.last_write_data_end + t.tWR
        ):
            self._fail(cmd, "tWR")
        bank.open_row = None
        bank.last_precharge_done = cmd.cycle + t.tRP

    def _check_cas(self, cmd: Command, is_write: bool) -> None:
        t = self.timings
        bank = self._banks[(cmd.rank, cmd.bank)]
        rank = self._ranks[cmd.rank]
        if bank.open_row is None:
            self._fail(cmd, "CAS to an idle bank")
        if cmd.cycle < bank.last_activate + t.tRCD:
            self._fail(cmd, "tRCD")
        if rank.last_cas_issue != _NEVER and cmd.cycle < rank.last_cas_issue + t.tCCD:
            self._fail(cmd, "tCCD")
        data_lead = t.CWL if is_write else t.CL
        data_start = cmd.cycle + data_lead
        data_end = data_start + t.tBURST
        if self._last_data_end != _NEVER:
            gap = (
                t.tRTRS
                if self._last_data_rank not in (None, cmd.rank)
                else 0
            )
            if data_start < self._last_data_end + gap:
                self._fail(cmd, "data bus overlap / tRTRS")
        if is_write:
            if (
                self._last_read_issue != _NEVER
                and cmd.cycle < self._last_read_issue + t.tRTW
            ):
                self._fail(cmd, "tRTW")
            rank.last_write_data_end = data_end
            bank.last_write_data_end = data_end
        else:
            if (
                rank.last_write_data_end != _NEVER
                and cmd.cycle < rank.last_write_data_end + t.tWTR
            ):
                self._fail(cmd, "tWTR")
            self._last_read_issue = cmd.cycle
            bank.last_read = cmd.cycle
        rank.last_cas_issue = cmd.cycle
        self._last_data_end = data_end
        self._last_data_rank = cmd.rank

    def _check_refresh(self, cmd: Command) -> None:
        t = self.timings
        rank = self._ranks[cmd.rank]
        for (r, _b), bank in self._banks.items():
            if r != cmd.rank:
                continue
            if bank.open_row is not None:
                self._fail(cmd, "REF with open banks")
            if cmd.cycle < bank.last_precharge_done:
                self._fail(cmd, "REF before tRP complete")
        rank.blocked_until = cmd.cycle + t.tRFC
