"""Rank-level DRAM state: ACTIVATE throttling and refresh.

The rank enforces the two cross-bank activation constraints (tRRD between any
two ACTIVATEs, and at most four ACTIVATEs in any tFAW window) and owns the
refresh schedule. Refresh is modelled as the standard all-bank auto-refresh:
every bank must be precharged, then the whole rank is busy for tRFC.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from ..errors import ProtocolError
from .bank import Bank, BankState
from .timing import DRAMTimings


class Rank:
    """A rank: a set of banks sharing activation and refresh resources."""

    def __init__(
        self,
        channel_id: int,
        rank_id: int,
        num_banks: int,
        timings: DRAMTimings,
        refresh_enabled: bool = True,
    ) -> None:
        self.channel_id = channel_id
        self.rank_id = rank_id
        self.timings = timings
        self.refresh_enabled = refresh_enabled
        self.banks: List[Bank] = [
            Bank(rank_id, b, timings) for b in range(num_banks)
        ]
        # Timestamps of the most recent ACTIVATEs, for the tFAW window.
        self._recent_activates: Deque[int] = deque(maxlen=4)
        self._last_activate = -(10**9)
        # activate_ready_at() is a pure function of the recorded ACT
        # history, so it is kept as a scalar updated on record_activate —
        # the controller reads it once per decision.
        self._act_ready = self._last_activate + timings.tRRD
        self.next_refresh_due = timings.tREFI if refresh_enabled else 1 << 62
        self.stat_refreshes = 0

    # ------------------------------------------------------------------
    # Activation constraints.
    # ------------------------------------------------------------------
    def activate_ready_at(self) -> int:
        """Earliest cycle any ACTIVATE is rank-legal (tRRD and tFAW)."""
        return self._act_ready

    def record_activate(self, now: int) -> None:
        """Account an ACTIVATE against the tRRD/tFAW windows."""
        if now < self._act_ready:
            raise ProtocolError(
                f"ACT @{now} violates rank rk{self.rank_id} tRRD/tFAW "
                f"(ready @{self._act_ready})"
            )
        recent = self._recent_activates
        recent.append(now)
        self._last_activate = now
        ready = now + self.timings.tRRD
        if len(recent) == 4:
            faw = recent[0] + self.timings.tFAW
            if faw > ready:
                ready = faw
        self._act_ready = ready

    # ------------------------------------------------------------------
    # Refresh.
    # ------------------------------------------------------------------
    def refresh_pending(self, now: int) -> bool:
        """True when a refresh is due at or before ``now``."""
        return self.refresh_enabled and now >= self.next_refresh_due

    def all_banks_idle(self) -> bool:
        """True when every bank is precharged (refresh precondition)."""
        return all(b.state is BankState.IDLE for b in self.banks)

    def refresh(self, now: int) -> int:
        """Perform an all-bank refresh; returns the cycle the rank frees up."""
        if not self.refresh_enabled:
            raise ProtocolError("refresh issued with refresh disabled")
        if not self.all_banks_idle():
            raise ProtocolError(
                f"REF @{now} with open banks in rk{self.rank_id}"
            )
        done = now + self.timings.tRFC
        for bank in self.banks:
            bank.block_until(done)
        # Schedule the next refresh one tREFI after this one was *due*, so a
        # late refresh does not drift the schedule.
        self.next_refresh_due += self.timings.tREFI
        self.stat_refreshes += 1
        return done

    # ------------------------------------------------------------------
    # Introspection helpers used by schedulers and stats.
    # ------------------------------------------------------------------
    def open_row_count(self) -> int:
        """Number of banks currently holding an open row."""
        return sum(1 for b in self.banks if b.state is BankState.ACTIVE)
