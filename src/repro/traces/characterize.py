"""Measured characterization: run a trace alone, read MPKI/RBH/BLP.

Static analysis (:func:`repro.workloads.analyze_trace`) reads intrinsic
properties off the record stream; this module measures what the *machine*
observes — post-cache MPKI, row-buffer hit rate, bank-level parallelism,
alone IPC — by replaying the trace on a single-core unpartitioned FR-FCFS
system, exactly the configuration ``Runner.alone_ipc`` uses for every
speedup denominator. The intensive/light classification reuses the
:data:`~repro.workloads.analysis.INTENSIVE_MPKI_THRESHOLD` convention the
partitioning policies key on, so an imported real trace slots into DBP's
thread classes on the same terms as the synthetic apps.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Dict, Optional

from ..cpu.trace import Trace
from ..errors import ExperimentError
from ..workloads.analysis import INTENSIVE_MPKI_THRESHOLD


@dataclass(frozen=True)
class TraceCharacterization:
    """Measured alone-run behaviour of one trace."""

    name: str
    digest: str
    horizon: int
    #: Post-LLC memory accesses per kilo-instruction, as the profiler saw.
    mpki: float
    #: Row-buffer hit rate among served requests.
    rbh: float
    #: Time-weighted mean banks holding outstanding requests.
    blp: float
    #: Fraction of data-bus cycles the thread kept busy.
    bandwidth: float
    ipc_alone: float
    llc_miss_rate: float
    records: int
    total_insts: int
    footprint_lines: int

    @property
    def intensive(self) -> bool:
        """Memory-intensive by the standard measured-MPKI convention."""
        return self.mpki >= INTENSIVE_MPKI_THRESHOLD

    @property
    def mpki_class(self) -> str:
        return "intensive" if self.intensive else "light"

    def as_dict(self) -> Dict[str, object]:
        doc = asdict(self)
        doc["class"] = self.mpki_class
        return doc

    def render(self) -> str:
        rows = [
            ("class", self.mpki_class),
            ("measured MPKI", f"{self.mpki:.2f}"),
            ("row-buffer hit rate", f"{self.rbh:.2f}"),
            ("bank-level parallelism", f"{self.blp:.2f}"),
            ("bandwidth share", f"{self.bandwidth:.3f}"),
            ("alone IPC", f"{self.ipc_alone:.3f}"),
            ("LLC miss rate", f"{self.llc_miss_rate:.2f}"),
            ("records", f"{self.records}"),
            ("instructions", f"{self.total_insts}"),
            ("footprint lines", f"{self.footprint_lines}"),
        ]
        width = max(len(label) for label, _ in rows)
        lines = [f"{self.name} (digest {self.digest[:12]}…):"]
        lines.extend(f"  {label:<{width}} : {value}" for label, value in rows)
        return "\n".join(lines)


def characterize_trace(
    trace: Trace,
    config=None,
    horizon: int = 200_000,
    ahead_limit: int = 8192,
) -> TraceCharacterization:
    """Measure one trace alone on the single-core FR-FCFS baseline system.

    Mirrors ``Runner.alone_ipc``'s configuration (one core, unpartitioned,
    FR-FCFS) so the numbers are commensurable with every alone-run
    baseline in the repo. Neither the shared policy nor FR-FCFS has an
    epoch cadence, so one post-run profiler snapshot covers the whole run.
    """
    from ..config import SystemConfig
    from ..sim.system import System

    if horizon <= 0:
        raise ExperimentError("characterization horizon must be positive")
    base = config if config is not None else SystemConfig()
    alone = replace(base, num_cores=1).with_scheduler("frfcfs")
    system = System(
        alone, [trace], horizon=horizon, ahead_limit=ahead_limit
    )
    result = system.run()
    thread = result.threads[0]
    if thread.retired_insts <= 0:
        raise ExperimentError(
            f"characterization run of {trace.name!r} retired nothing "
            f"(horizon {horizon} too short?)"
        )
    profile = system.profiler.snapshot(horizon).threads[0]
    return TraceCharacterization(
        name=trace.name,
        digest=trace.digest,
        horizon=horizon,
        mpki=profile.mpki,
        rbh=profile.rbh,
        blp=profile.blp,
        bandwidth=profile.bandwidth,
        ipc_alone=thread.ipc,
        llc_miss_rate=thread.llc_miss_rate,
        records=len(trace),
        total_insts=trace.total_insts,
        footprint_lines=trace.footprint_lines(),
    )
