""".rtrc — the versioned binary on-disk trace format.

This is the canonical interchange format of the workload trace library,
replacing the ad-hoc ``save_trace`` text format for anything that needs to
be fast, self-describing, or tamper-evident. Layout::

    magic    4 bytes  b"RTRC"
    version  u16      FORMAT_VERSION (little-endian, like every field)
    hlen     u32      header length in bytes
    header   hlen     UTF-8 JSON: name, records, total_insts, digest,
                      provenance (free-form dict: source path, importer,
                      transform chain, ...)
    blocks   *        until `records` records have been read:
        count  u32    records in this block (<= BLOCK_RECORDS)
        clen   u32    compressed payload length
        data   clen   zlib-compressed, struct-packed records

Records pack as ``<IQB``: gap (u32 instructions), vline (u64 virtual cache
line), flags (bit 0 = write). The header's ``digest`` is
:attr:`repro.cpu.trace.Trace.digest` — recomputed and verified on load, so
a truncated or bit-flipped file can never silently produce a different
workload. Every malformed-input path raises :class:`TraceError` naming the
file and the offending block, mirroring the text loaders' ``file:line``
diagnostics.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import BinaryIO, Dict, List, Optional, Tuple

from ..cpu.trace import Trace, TraceRecord
from ..errors import TraceError

MAGIC = b"RTRC"
FORMAT_VERSION = 1

#: Records per compressed block. Small enough that a truncated tail loses
#: little, large enough that zlib sees real redundancy.
BLOCK_RECORDS = 8192

_PREAMBLE = struct.Struct("<4sHI")  # magic, version, header length
_BLOCK = struct.Struct("<II")  # record count, compressed length
_RECORD = struct.Struct("<IQB")  # gap, vline, flags

#: Refuse absurd header/block claims instead of allocating gigabytes.
_MAX_HEADER_BYTES = 16 * 1024 * 1024
_MAX_BLOCK_BYTES = 256 * 1024 * 1024


def save_rtrc(
    trace: Trace, path: str, provenance: Optional[Dict[str, object]] = None
) -> str:
    """Write ``trace`` to ``path`` in .rtrc form; returns its digest."""
    header = {
        "name": trace.name,
        "records": len(trace.records),
        "total_insts": trace.total_insts,
        "digest": trace.digest,
        "provenance": dict(provenance or {}),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(
            _PREAMBLE.pack(MAGIC, FORMAT_VERSION, len(header_bytes))
        )
        handle.write(header_bytes)
        for start in range(0, len(trace.records), BLOCK_RECORDS):
            block = trace.records[start : start + BLOCK_RECORDS]
            packed = bytearray()
            for index, record in enumerate(block, start=start):
                if record.gap > 0xFFFFFFFF:
                    raise TraceError(
                        f"{path}: record {index}: gap {record.gap} "
                        f"exceeds the format's 32-bit limit"
                    )
                packed += _RECORD.pack(
                    record.gap, record.vline, int(record.is_write)
                )
            payload = zlib.compress(bytes(packed), 6)
            handle.write(_BLOCK.pack(len(block), len(payload)))
            handle.write(payload)
    return trace.digest


def _read_exact(handle: BinaryIO, n: int, path: str, what: str) -> bytes:
    data = handle.read(n)
    if len(data) != n:
        raise TraceError(
            f"{path}: truncated {what} (wanted {n} bytes, got {len(data)})"
        )
    return data


def read_rtrc_header(path: str) -> Dict[str, object]:
    """Parse and validate just the header of an .rtrc file."""
    with open(path, "rb") as handle:
        return _parse_header(handle, path)


def _parse_header(handle: BinaryIO, path: str) -> Dict[str, object]:
    magic, version, hlen = _PREAMBLE.unpack(
        _read_exact(handle, _PREAMBLE.size, path, "preamble")
    )
    if magic != MAGIC:
        raise TraceError(f"{path}: not an .rtrc trace (bad magic {magic!r})")
    if version != FORMAT_VERSION:
        raise TraceError(
            f"{path}: unsupported .rtrc version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    if hlen > _MAX_HEADER_BYTES:
        raise TraceError(f"{path}: corrupt header length {hlen}")
    header_bytes = _read_exact(handle, hlen, path, "header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise TraceError(f"{path}: corrupt header JSON ({error})") from None
    for field, kind in (
        ("name", str),
        ("records", int),
        ("digest", str),
    ):
        if not isinstance(header.get(field), kind):
            raise TraceError(
                f"{path}: header missing or mistyped field {field!r}"
            )
    if header["records"] < 1:
        raise TraceError(f"{path}: header claims an empty trace")
    return header


def load_rtrc(path: str, verify_digest: bool = True) -> Trace:
    """Read an .rtrc trace; digest-verified unless told otherwise."""
    trace, _header = read_rtrc(path, verify_digest=verify_digest)
    return trace


def read_rtrc(
    path: str, verify_digest: bool = True
) -> Tuple[Trace, Dict[str, object]]:
    """Read an .rtrc trace and its full header (provenance included)."""
    with open(path, "rb") as handle:
        header = _parse_header(handle, path)
        expected = int(header["records"])
        records: List[TraceRecord] = []
        block_index = 0
        while len(records) < expected:
            where = f"{path}: block {block_index}"
            raw = handle.read(_BLOCK.size)
            if len(raw) != _BLOCK.size:
                raise TraceError(
                    f"{where}: truncated block header "
                    f"({len(records)} of {expected} records read)"
                )
            count, clen = _BLOCK.unpack(raw)
            if not 0 < count <= BLOCK_RECORDS:
                raise TraceError(f"{where}: corrupt record count {count}")
            if clen > _MAX_BLOCK_BYTES:
                raise TraceError(f"{where}: corrupt payload length {clen}")
            payload = _read_exact(handle, clen, path, f"block {block_index}")
            try:
                packed = zlib.decompress(payload)
            except zlib.error as error:
                raise TraceError(
                    f"{where}: corrupt compressed payload ({error})"
                ) from None
            if len(packed) != count * _RECORD.size:
                raise TraceError(
                    f"{where}: payload holds {len(packed)} bytes, "
                    f"expected {count * _RECORD.size}"
                )
            for gap, vline, flags in _RECORD.iter_unpack(packed):
                if flags not in (0, 1):
                    raise TraceError(
                        f"{where}: corrupt record flags {flags:#x}"
                    )
                records.append(TraceRecord(gap, vline, bool(flags)))
            block_index += 1
        if len(records) != expected:
            raise TraceError(
                f"{path}: block {block_index - 1} overran the header's "
                f"record count ({len(records)} > {expected})"
            )
        if handle.read(1):
            raise TraceError(f"{path}: trailing data after the last block")
    trace = Trace(str(header["name"]), records)
    if verify_digest and trace.digest != header["digest"]:
        raise TraceError(
            f"{path}: content digest mismatch — header says "
            f"{header['digest'][:16]}…, records hash to "
            f"{trace.digest[:16]}… (file corrupt or tampered)"
        )
    return trace, header
