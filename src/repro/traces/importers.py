"""Importers for external plain-text memory-trace formats.

Two families of real-trace dumps are understood, both reconstructed into
canonical :class:`~repro.cpu.trace.TraceRecord` streams:

* **ChampSim-style** — ``<instr-count> <address> <R|W>`` per line. The
  instruction counter is cumulative, so compute gaps are the deltas:
  ``gap_i = instr_i - instr_{i-1} - 1`` (the record itself is the one
  memory instruction). Counters must be non-decreasing.
* **DRAMSim/Ramulator-style** — ``<address> <cycle> <op>`` per line, where
  ``op`` is ``R``/``W``/``READ``/``WRITE`` or a DRAMSim2 transaction type
  (``P_MEM_RD``, ``P_MEM_WR``, ``P_FETCH``). These dumps carry cycles, not
  instruction counts; gaps are reconstructed under the standard 1-IPC
  front-end assumption: ``gap_i = cycle_i - cycle_{i-1} - 1``. Cycles must
  be non-decreasing.

Addresses are byte addresses — hex with a ``0x`` prefix or decimal — and
map to virtual cache lines as ``address >> 6`` (64-byte lines). Malformed
input always raises :class:`TraceError` naming ``file:line``, never a raw
traceback, matching the repo's ``ConfigError`` diagnostics style.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..cpu.trace import Trace, TraceRecord
from ..errors import TraceError

#: 64-byte cache lines: byte address -> virtual line number.
LINE_SHIFT = 6

_READ_OPS = frozenset({"R", "READ", "RD", "P_MEM_RD", "P_FETCH"})
_WRITE_OPS = frozenset({"W", "WRITE", "WR", "P_MEM_WR"})

#: fmt name -> importer; ``auto`` sniffs via :func:`detect_format`.
FORMATS = ("auto", "champsim", "dramsim", "rtrc", "text")


def _parse_int(field: str, where: str, what: str) -> int:
    """An int from decimal or 0x-prefixed hex, with file:line diagnostics."""
    try:
        value = int(field, 0)
    except ValueError:
        raise TraceError(
            f"{where}: non-integer {what} {field!r}"
        ) from None
    if value < 0:
        raise TraceError(f"{where}: negative {what} {field!r}")
    return value


def _parse_op(field: str, where: str) -> bool:
    """True for a write, False for a read; errors on anything else."""
    op = field.upper()
    if op in _WRITE_OPS:
        return True
    if op in _READ_OPS:
        return False
    raise TraceError(
        f"{where}: unknown operation {field!r} "
        f"(expected one of R/W/READ/WRITE/P_MEM_RD/P_MEM_WR/P_FETCH)"
    )


def _data_lines(path: str):
    """Yield (line_no, stripped_line) skipping blanks and # comments."""
    with open(path, "r", encoding="ascii", errors="replace") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            yield line_no, stripped


def import_champsim(path: str, name: Optional[str] = None) -> Trace:
    """Import a ChampSim-style ``instr-count address R/W`` text trace."""
    records: List[TraceRecord] = []
    prev_instr: Optional[int] = None
    for line_no, line in _data_lines(path):
        where = f"{path}:{line_no}"
        fields = line.split()
        if len(fields) != 3:
            raise TraceError(
                f"{where}: expected 3 fields "
                f"(instr-count address R/W), got {len(fields)}: {line!r}"
            )
        instr = _parse_int(fields[0], where, "instruction count")
        address = _parse_int(fields[1], where, "address")
        is_write = _parse_op(fields[2], where)
        if prev_instr is None:
            gap = instr
        else:
            if instr < prev_instr:
                raise TraceError(
                    f"{where}: instruction count went backwards "
                    f"({prev_instr} -> {instr})"
                )
            gap = max(0, instr - prev_instr - 1)
        prev_instr = instr
        records.append(TraceRecord(gap, address >> LINE_SHIFT, is_write))
    if not records:
        raise TraceError(f"{path}: no trace records found")
    return Trace(name or _default_name(path), records)


def import_dramsim(path: str, name: Optional[str] = None) -> Trace:
    """Import a DRAMSim/Ramulator-style ``address cycle op`` text trace."""
    records: List[TraceRecord] = []
    prev_cycle: Optional[int] = None
    for line_no, line in _data_lines(path):
        where = f"{path}:{line_no}"
        fields = line.split()
        if len(fields) != 3:
            raise TraceError(
                f"{where}: expected 3 fields (address cycle op), "
                f"got {len(fields)}: {line!r}"
            )
        address = _parse_int(fields[0], where, "address")
        cycle = _parse_int(fields[1], where, "cycle")
        is_write = _parse_op(fields[2], where)
        if prev_cycle is None:
            gap = 0
        else:
            if cycle < prev_cycle:
                raise TraceError(
                    f"{where}: cycle count went backwards "
                    f"({prev_cycle} -> {cycle})"
                )
            # 1-IPC reconstruction: idle cycles between two accesses stand
            # in for the compute instructions the dump does not carry.
            gap = max(0, cycle - prev_cycle - 1)
        prev_cycle = cycle
        records.append(TraceRecord(gap, address >> LINE_SHIFT, is_write))
    if not records:
        raise TraceError(f"{path}: no trace records found")
    return Trace(name or _default_name(path), records)


def _default_name(path: str) -> str:
    base = path.replace("\\", "/").rsplit("/", 1)[-1]
    return base.rsplit(".", 1)[0] if "." in base else base


def detect_format(path: str) -> str:
    """Sniff a trace file's format from its first bytes / data line.

    Returns ``rtrc``, ``text`` (the native ``#trace`` format), ``champsim``
    or ``dramsim``. Auto-detection of the two external text formats keys on
    the ``0x`` hex-address column; ambiguous all-decimal dumps must name
    their format explicitly.
    """
    with open(path, "rb") as handle:
        head = handle.read(6)
    if head[:4] == b"RTRC":
        return "rtrc"
    for line_no, line in _data_lines(path):
        fields = line.split()
        where = f"{path}:{line_no}"
        if len(fields) != 3:
            raise TraceError(
                f"{where}: cannot detect trace format from {line!r} "
                f"(expected 3 fields)"
            )
        if fields[0].lower().startswith("0x"):
            return "dramsim"
        if fields[1].lower().startswith("0x"):
            return "champsim"
        if fields[2] in ("R", "W") and fields[1].isdigit():
            # Native text records are `gap vline R|W` — but so is an
            # all-decimal ChampSim dump. The native format always opens
            # with its `#trace` header, which _data_lines skipped; a bare
            # decimal file is therefore ambiguous by construction.
            raise TraceError(
                f"{where}: ambiguous all-decimal trace line {line!r}; "
                f"pass the format explicitly (champsim, dramsim or text)"
            )
        raise TraceError(
            f"{where}: cannot detect trace format from {line!r}"
        )
    # Only comments/blank lines — the native loader would also fail, but
    # with a clearer message downstream.
    raise TraceError(f"{path}: no data lines to detect a format from")


def resolve_format(path: str, fmt: str = "auto") -> str:
    """Validate ``fmt``, sniffing the file when it is ``auto``."""
    if fmt not in FORMATS:
        raise TraceError(
            f"unknown trace format {fmt!r}; known: {', '.join(FORMATS)}"
        )
    if fmt != "auto":
        return fmt
    # The native text format is only detectable by its `#trace` header.
    try:
        with open(path, "r", encoding="ascii", errors="replace") as f:
            first = f.readline()
    except OSError as error:
        raise TraceError(f"{path}: cannot read trace ({error})") from None
    if first.startswith("#trace"):
        return "text"
    return detect_format(path)


def import_trace(
    path: str, fmt: str = "auto", name: Optional[str] = None
) -> Trace:
    """Import a trace in any supported format (``auto`` sniffs).

    The returned trace is canonical — replayable, transformable, savable
    to ``.rtrc`` — regardless of the source dialect.
    """
    from ..cpu.trace import load_trace
    from .format import load_rtrc

    fmt = resolve_format(path, fmt)
    importers: Dict[str, Callable[[str], Trace]] = {
        "champsim": lambda p: import_champsim(p, name=name),
        "dramsim": lambda p: import_dramsim(p, name=name),
        "rtrc": load_rtrc,
        "text": load_trace,
    }
    trace = importers[fmt](path)
    if name is not None and trace.name != name:
        trace = Trace(name, trace.records)
    return trace
