"""TraceSource — where the experiment Runner gets its workloads.

``Runner.trace_for`` used to *be* the synthetic generator; the trace
library turns "app name -> trace" into a pluggable resolution step. A
:class:`TraceSource` answers two questions about an app name:

* :meth:`trace_for` — the trace to replay (possibly seed-dependent);
* :meth:`digest_for` — a content digest when the trace is **not** a pure
  function of (name, seed, target_insts), i.e. a library trace. The
  Runner folds these digests into its in-memory and persistent store keys,
  which is what keeps the content-addressed store correct for
  non-synthetic workloads. Synthetic apps return None: their identity is
  already fully captured by (profile, seed, target_insts).

:class:`DefaultTraceSource` resolves the in-process registry first (so a
deliberate ``override=True`` shadowing wins), then synthetic profiles,
then the on-disk default library — the same order everywhere a name is
looked up.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..cpu.trace import Trace
from ..errors import ConfigError
from .registry import lookup_registered, registered_names


class TraceSource:
    """Resolves application names to replayable traces."""

    def trace_for(self, app: str, seed: int, target_insts: int) -> Trace:
        raise NotImplementedError

    def digest_for(self, app: str) -> Optional[str]:
        """Content digest for non-seed-keyed apps; None for synthetic."""
        raise NotImplementedError

    def cache_key(self, app: str, seed: int, target_insts: int) -> Tuple:
        """What a cached trace/alone-run for ``app`` is keyed by.

        A library trace is keyed by content digest (seed and length do not
        affect it); a synthetic one by the full generator input.
        """
        digest = self.digest_for(app)
        if digest is not None:
            return (app, digest)
        return (app, seed, target_insts)


class SyntheticTraceSource(TraceSource):
    """The classic path: generate from a registered app profile."""

    def trace_for(self, app: str, seed: int, target_insts: int) -> Trace:
        from ..workloads import generate_trace, get_profile

        return generate_trace(
            get_profile(app), seed=seed, target_insts=target_insts
        )

    def digest_for(self, app: str) -> Optional[str]:
        return None


class LibraryTraceSource(TraceSource):
    """Registered library traces only (no synthetic fallback)."""

    def trace_for(self, app: str, seed: int, target_insts: int) -> Trace:
        entry = lookup_registered(app)
        if entry is None:
            raise ConfigError(
                f"unknown library trace {app!r}; registered: "
                f"{', '.join(registered_names()) or '(none)'}"
            )
        return entry.load()

    def digest_for(self, app: str) -> Optional[str]:
        entry = lookup_registered(app)
        if entry is None:
            raise ConfigError(f"unknown library trace {app!r}")
        return entry.digest


class DefaultTraceSource(TraceSource):
    """Registry-first, synthetic-second resolution (the Runner default)."""

    def __init__(self) -> None:
        self._synthetic = SyntheticTraceSource()
        self._library = LibraryTraceSource()

    def _is_library(self, app: str) -> bool:
        from ..workloads.profiles import APP_PROFILES

        if lookup_registered(app, autoload=False) is not None:
            return True
        if app in APP_PROFILES:
            return False
        # Unknown both ways: give the on-disk default library one chance
        # before the synthetic path raises its unknown-app error.
        return lookup_registered(app) is not None

    def trace_for(self, app: str, seed: int, target_insts: int) -> Trace:
        if self._is_library(app):
            return self._library.trace_for(app, seed, target_insts)
        return self._synthetic.trace_for(app, seed, target_insts)

    def digest_for(self, app: str) -> Optional[str]:
        if self._is_library(app):
            return self._library.digest_for(app)
        return None
