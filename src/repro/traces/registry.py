"""Registration of library traces as first-class applications.

A registered trace is addressable everywhere a synthetic profile name is:
in :class:`~repro.workloads.mixes.Mix` definitions, in
``Runner.run_apps``, in the campaign grid. The registry is deliberately
import-light (core trace types and errors only) so the workloads package
and the experiment runner can consult it without import cycles.

Resolution order everywhere an app name is looked up:

1. this in-process registry (explicit registrations win, including
   deliberate ``override=True`` shadowing of a synthetic profile);
2. the synthetic :data:`~repro.workloads.profiles.APP_PROFILES`;
3. the on-disk default library (loaded lazily, once) — this is what lets
   campaign *worker processes* resolve library apps they were never
   explicitly told about: the manifest travels on disk, not in pickles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cpu.trace import Trace
from ..errors import ConfigError


@dataclass
class RegisteredTrace:
    """One library trace registered as an application."""

    name: str
    #: :attr:`Trace.digest` — binds store keys to the exact record stream.
    digest: str
    #: Path of the backing ``.rtrc`` file; None for in-memory registration.
    path: Optional[str] = None
    records: int = 0
    total_insts: int = 0
    #: Measured (preferred) or intrinsic memory intensity classification.
    intensive: bool = False
    #: Characterization measurements (mpki/rbh/blp/...) when available.
    characterization: Dict[str, float] = field(default_factory=dict)
    source_format: str = "rtrc"
    imported_from: str = ""
    #: Loaded trace, cached after first resolve.
    trace: Optional[Trace] = None

    def load(self) -> Trace:
        """The backing trace, loading (and digest-verifying) on demand."""
        if self.trace is None:
            if self.path is None:
                raise ConfigError(
                    f"library app {self.name!r} has no backing file"
                )
            from .format import load_rtrc

            trace = load_rtrc(self.path)
            if trace.digest != self.digest:
                raise ConfigError(
                    f"library app {self.name!r}: file {self.path} holds "
                    f"digest {trace.digest[:16]}…, registry expects "
                    f"{self.digest[:16]}… (library mutated?)"
                )
            self.trace = trace
        return self.trace


#: name -> registration. Mutated only through the functions below.
LIBRARY_APPS: Dict[str, RegisteredTrace] = {}

_autoload_done = False


def register_trace(entry: RegisteredTrace, override: bool = False) -> None:
    """Make a library trace addressable by name.

    Collisions with synthetic profiles or existing registrations are
    errors unless ``override=True`` — shadowing a synthetic app changes
    what every experiment referencing that name simulates, so it must be
    asked for explicitly (round-trip fidelity tests do exactly that).
    """
    from ..workloads.profiles import APP_PROFILES

    if not override:
        if entry.name in APP_PROFILES:
            raise ConfigError(
                f"library trace name {entry.name!r} collides with a "
                f"synthetic app profile; pick another name or pass "
                f"override=True to shadow it deliberately"
            )
        existing = LIBRARY_APPS.get(entry.name)
        if existing is not None and existing.digest != entry.digest:
            raise ConfigError(
                f"library trace {entry.name!r} is already registered with "
                f"digest {existing.digest[:16]}…; unregister it first or "
                f"pass override=True"
            )
    LIBRARY_APPS[entry.name] = entry


def unregister_trace(name: str) -> None:
    """Remove one registration (missing names are fine)."""
    LIBRARY_APPS.pop(name, None)


def clear_registry() -> None:
    """Forget every registration and allow the default library to reload."""
    global _autoload_done
    LIBRARY_APPS.clear()
    _autoload_done = False


def lookup_registered(
    name: str, autoload: bool = True
) -> Optional[RegisteredTrace]:
    """The registration for ``name``, if any.

    On a miss, the default on-disk library is loaded once per process (when
    ``autoload``) — campaign workers and fresh CLI invocations resolve
    library apps through this path.
    """
    entry = LIBRARY_APPS.get(name)
    if entry is None and autoload:
        _autoload_default_library()
        entry = LIBRARY_APPS.get(name)
    return entry


def registered_names() -> List[str]:
    """Sorted names currently registered (no autoload side effect)."""
    return sorted(LIBRARY_APPS)


def library_digests(apps) -> Dict[str, str]:
    """{app: digest} for the library-resolved apps among ``apps``.

    Synthetic apps are omitted: their traces are pure functions of
    (profile, seed, target_insts), already in every run key. Registry
    shadowing wins over synthetic names, mirroring trace resolution.
    """
    digests: Dict[str, str] = {}
    for app in apps:
        entry = lookup_registered(app)
        if entry is not None:
            digests[app] = entry.digest
    return digests


def _autoload_default_library() -> None:
    """Load the default on-disk library's manifest, once per process.

    Never raises: a missing or unreadable default library just means no
    extra names resolve. Explicit :class:`~repro.traces.library.
    TraceLibrary` use reports errors loudly; the implicit fallback must
    not break synthetic-only workflows.
    """
    global _autoload_done
    if _autoload_done:
        return
    _autoload_done = True
    from ..errors import ReproError
    from .library import TraceLibrary, default_library_dir

    root = default_library_dir()
    try:
        if not (root / "manifest.json").is_file():
            return
        TraceLibrary(root).register_all(override=False, strict=False)
    except (OSError, ReproError):  # pragma: no cover - defensive
        pass
