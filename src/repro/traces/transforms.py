"""Trace transforms: shape an imported trace before registering it.

Real-trace dumps rarely arrive run-ready: they open with a warmup phase,
cover more memory than a small simulated machine should map, or need to be
spliced into phased workloads. Every transform returns a **new**
:class:`~repro.cpu.trace.Trace` (traces are immutable) and composes with
every other, so an import pipeline is just function application::

    trace = import_trace("app.trace")
    trace = skip_warmup(trace, insts=1_000_000)
    trace = remap_footprint(trace, max_pages=8192)
    trace = slice_records(trace, stop=20_000)
"""

from __future__ import annotations

import bisect
from typing import Optional

from ..cpu.trace import Trace, TraceRecord, concatenate
from ..errors import TraceError
from ..workloads.synthetic import LINES_PER_PAGE


def slice_records(
    trace: Trace,
    start: int = 0,
    stop: Optional[int] = None,
    name: Optional[str] = None,
) -> Trace:
    """The records in ``[start, stop)``, as a standalone trace."""
    if start < 0:
        raise TraceError(f"slice start must be >= 0, got {start}")
    end = len(trace.records) if stop is None else stop
    records = trace.records[start:end]
    if not records:
        raise TraceError(
            f"slice [{start}:{end}) of trace {trace.name!r} "
            f"({len(trace.records)} records) is empty"
        )
    return Trace(name or f"{trace.name}[{start}:{end}]", records)


def skip_warmup(
    trace: Trace, insts: int, name: Optional[str] = None
) -> Trace:
    """Drop the leading records covering the first ``insts`` instructions.

    The standard methodology move: real dumps include a cache/branch
    warmup phase whose memory behaviour is not the program's steady state.
    """
    if insts < 0:
        raise TraceError(f"warmup instruction count must be >= 0, got {insts}")
    # cumulative_insts[i] counts instructions through record i; keep the
    # first record whose cumulative count exceeds the warmup window.
    first = bisect.bisect_left(trace.cumulative_insts, insts + 1)
    if first >= len(trace.records):
        raise TraceError(
            f"warmup of {insts} instructions consumes all of trace "
            f"{trace.name!r} ({trace.total_insts} instructions)"
        )
    if first == 0:
        return trace
    return Trace(name or trace.name, trace.records[first:])


def remap_footprint(
    trace: Trace, max_pages: int, name: Optional[str] = None
) -> Trace:
    """Fold the virtual footprint into at most ``max_pages`` 4 KB pages.

    Page-granular modulo folding: the line offset within each page is
    preserved, so sequential runs — and therefore row-buffer locality —
    survive, while the page working set shrinks to something a small
    simulated memory can map without exhausting frames.
    """
    if max_pages < 1:
        raise TraceError(f"max_pages must be >= 1, got {max_pages}")
    records = [
        TraceRecord(
            r.gap,
            (r.vline // LINES_PER_PAGE % max_pages) * LINES_PER_PAGE
            + r.vline % LINES_PER_PAGE,
            r.is_write,
        )
        for r in trace.records
    ]
    return Trace(name or trace.name, records)


def splice_phases(name: str, *phases: Trace) -> Trace:
    """Concatenate traces back-to-back as one phased workload.

    A thin, validating wrapper over :func:`repro.cpu.trace.concatenate` so
    the library's transform vocabulary is complete in one module.
    """
    if not phases:
        raise TraceError("splice_phases needs at least one phase")
    return concatenate(name, phases)
