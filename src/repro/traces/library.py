"""The on-disk workload trace library: ``.rtrc`` files + ``manifest.json``.

A library is a directory of digest-verified ``.rtrc`` traces catalogued by
one ``manifest.json``::

    {
      "version": 1,
      "traces": {
        "<name>": {
          "file": "<name>.rtrc",
          "digest": "<sha256 of the record stream>",
          "records": ..., "total_insts": ...,
          "source_format": "champsim" | "dramsim" | "text" | "rtrc"
                           | "synthetic",
          "imported_from": "<original path or generator note>",
          "class": "intensive" | "light",
          "characterization": {"mpki": ..., "rbh": ..., "blp": ..., ...}
        }, ...
      }
    }

``import_file`` is the end-to-end path the CLI's ``traces import`` drives:
parse an external dump, optionally characterize it alone through the
Runner machinery, persist the ``.rtrc``, update the manifest atomically,
and register the trace as a first-class app. The manifest's digests are
what the campaign store folds into ``run_key`` for non-synthetic apps.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from ..cpu.trace import Trace, save_trace
from ..errors import ConfigError, TraceError
from .characterize import TraceCharacterization, characterize_trace
from .format import read_rtrc, save_rtrc
from .importers import import_trace, resolve_format
from .registry import RegisteredTrace, register_trace

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"


def default_library_dir() -> Path:
    """Where the trace library lives by default.

    ``REPRO_TRACE_LIBRARY`` overrides; otherwise ``benchmarks/traces/
    library`` in a source checkout, falling back to
    ``~/.cache/repro-dbp/traces`` for installed copies — the same
    convention as the campaign result store.
    """
    env = os.environ.get("REPRO_TRACE_LIBRARY")
    if env:
        return Path(env)
    root = Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root / "benchmarks" / "traces" / "library"
    return Path.home() / ".cache" / "repro-dbp" / "traces"


class TraceLibrary:
    """One library directory and its manifest (lazily loaded)."""

    def __init__(self, root=None) -> None:
        self.root = Path(root) if root is not None else default_library_dir()
        self._manifest: Optional[Dict[str, Dict[str, object]]] = None

    # ------------------------------------------------------------------
    # Manifest I/O.
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def entries(self) -> Dict[str, Dict[str, object]]:
        """name -> manifest entry (loaded once, cached)."""
        if self._manifest is None:
            self._manifest = self._load_manifest()
        return self._manifest

    def _load_manifest(self) -> Dict[str, Dict[str, object]]:
        path = self.manifest_path
        try:
            text = path.read_text()
        except OSError:
            return {}
        try:
            doc = json.loads(text)
            if not isinstance(doc, dict) or not isinstance(
                doc.get("traces"), dict
            ):
                raise ValueError("manifest is not an object with 'traces'")
            if doc.get("version") != MANIFEST_VERSION:
                raise ValueError(
                    f"unsupported manifest version {doc.get('version')!r}"
                )
        except ValueError as error:
            raise ConfigError(f"{path}: corrupt library manifest ({error})")
        return dict(doc["traces"])

    def _write_manifest(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        doc = {"version": MANIFEST_VERSION, "traces": self.entries()}
        tmp = self.manifest_path.with_name(
            f"{MANIFEST_NAME}.tmp.{os.getpid()}"
        )
        tmp.write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, self.manifest_path)

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self.entries())

    def entry(self, name: str) -> Dict[str, object]:
        entries = self.entries()
        if name not in entries:
            known = ", ".join(sorted(entries)) or "(library is empty)"
            raise ConfigError(
                f"unknown library trace {name!r} in {self.root}; "
                f"known: {known}"
            )
        return entries[name]

    def path_for(self, name: str) -> Path:
        return self.root / str(self.entry(name)["file"])

    def get(self, name: str) -> Trace:
        """Load (digest-verified) the named trace from the library."""
        entry = self.entry(name)
        trace, _header = read_rtrc(str(self.path_for(name)))
        if trace.digest != str(entry["digest"]):
            raise TraceError(
                f"{self.path_for(name)}: digest does not match the "
                f"manifest ({trace.digest[:16]}… vs "
                f"{str(entry['digest'])[:16]}…)"
            )
        if trace.name != name:
            trace = Trace(name, trace.records)
        return trace

    # ------------------------------------------------------------------
    # Ingest.
    # ------------------------------------------------------------------
    def import_file(
        self,
        path: str,
        name: Optional[str] = None,
        fmt: str = "auto",
        characterize: bool = True,
        config=None,
        horizon: int = 200_000,
        override: bool = False,
        register: bool = True,
    ) -> RegisteredTrace:
        """Import an external trace file end-to-end.

        Parse (``fmt='auto'`` sniffs), optionally measure MPKI/RBH/BLP on
        the alone-run baseline, persist as ``<name>.rtrc``, record in the
        manifest, and register the name as a first-class app.
        """
        fmt = resolve_format(path, fmt)
        trace = import_trace(path, fmt=fmt, name=name)
        return self.add(
            trace,
            characterize=characterize,
            config=config,
            horizon=horizon,
            source_format=fmt,
            imported_from=str(path),
            override=override,
            register=register,
        )

    def add(
        self,
        trace: Trace,
        characterize: bool = True,
        config=None,
        horizon: int = 200_000,
        source_format: str = "rtrc",
        imported_from: str = "",
        override: bool = False,
        register: bool = True,
    ) -> RegisteredTrace:
        """Add an in-memory trace to the library (the importers' backend)."""
        name = trace.name
        if not name or "/" in name or name != name.strip():
            raise ConfigError(f"invalid library trace name {name!r}")
        if name in self.entries() and not override:
            existing = str(self.entries()[name]["digest"])
            if existing != trace.digest:
                raise ConfigError(
                    f"library trace {name!r} already exists with digest "
                    f"{existing[:16]}…; pass override=True to replace it"
                )
        measured: Optional[TraceCharacterization] = None
        if characterize:
            measured = characterize_trace(trace, config=config, horizon=horizon)
            intensive = measured.intensive
        else:
            # Fall back to the static convention on the intrinsic rate.
            from ..workloads.analysis import INTENSIVE_MPKI_THRESHOLD

            intensive = trace.intrinsic_mpki >= INTENSIVE_MPKI_THRESHOLD
        self.root.mkdir(parents=True, exist_ok=True)
        filename = f"{name}.rtrc"
        provenance = {
            "imported_from": imported_from,
            "source_format": source_format,
        }
        save_rtrc(trace, str(self.root / filename), provenance=provenance)
        entry_doc: Dict[str, object] = {
            "file": filename,
            "digest": trace.digest,
            "records": len(trace),
            "total_insts": trace.total_insts,
            "source_format": source_format,
            "imported_from": imported_from,
            "class": "intensive" if intensive else "light",
            "characterization": (
                measured.as_dict() if measured is not None else {}
            ),
        }
        self.entries()[name] = entry_doc
        self._write_manifest()
        registration = self._registration(name, entry_doc)
        registration.trace = trace
        if register:
            register_trace(registration, override=override)
        return registration

    # ------------------------------------------------------------------
    # Export and registration.
    # ------------------------------------------------------------------
    def export(self, name: str, dest: str, fmt: str = "rtrc") -> str:
        """Write one library trace to ``dest`` as ``rtrc`` or ``text``."""
        trace = self.get(name)
        if fmt == "rtrc":
            provenance = {
                "imported_from": str(self.path_for(name)),
                "source_format": "rtrc",
            }
            save_rtrc(trace, dest, provenance=provenance)
        elif fmt == "text":
            save_trace(trace, dest)
        else:
            raise TraceError(
                f"unknown export format {fmt!r}; known: rtrc, text"
            )
        return dest

    def _registration(
        self, name: str, entry: Dict[str, object]
    ) -> RegisteredTrace:
        characterization = entry.get("characterization") or {}
        numeric = {
            key: float(value)
            for key, value in characterization.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        return RegisteredTrace(
            name=name,
            digest=str(entry["digest"]),
            path=str(self.root / str(entry["file"])),
            records=int(entry.get("records", 0)),
            total_insts=int(entry.get("total_insts", 0)),
            intensive=entry.get("class") == "intensive",
            characterization=numeric,
            source_format=str(entry.get("source_format", "rtrc")),
            imported_from=str(entry.get("imported_from", "")),
        )

    def register(self, name: str, override: bool = False) -> RegisteredTrace:
        """Register one catalogued trace as an app in this process."""
        registration = self._registration(name, self.entry(name))
        register_trace(registration, override=override)
        return registration

    def register_all(
        self, override: bool = False, strict: bool = True
    ) -> List[RegisteredTrace]:
        """Register every catalogued trace; non-strict skips collisions."""
        registered: List[RegisteredTrace] = []
        for name in self.names():
            try:
                registered.append(self.register(name, override=override))
            except ConfigError:
                if strict:
                    raise
        return registered
