"""Workload trace library: bring real memory traces into the pipeline.

The simulator's original workloads are synthetic SPEC-like generators;
this package is the escape hatch. It provides:

* :mod:`~repro.traces.format` — the versioned ``.rtrc`` binary trace
  format (struct-packed, block-compressed, digest-verified);
* :mod:`~repro.traces.importers` — ChampSim-style and DRAMSim/
  Ramulator-style text-dump importers with ``file:line`` diagnostics;
* :mod:`~repro.traces.transforms` — slice / warmup-skip / footprint
  remap / phase splice;
* :mod:`~repro.traces.characterize` — measure MPKI/RBH/BLP by running a
  trace alone on the FR-FCFS baseline;
* :mod:`~repro.traces.library` — the on-disk catalog
  (``manifest.json`` + ``.rtrc`` files) behind
  ``repro-dbp traces import|list|info|export``;
* :mod:`~repro.traces.registry` / :mod:`~repro.traces.source` — register
  imported traces as first-class apps, resolvable in ``Mix`` definitions,
  ``Runner`` runs, and campaign grids, with content digests folded into
  the persistent store's run keys.
"""

from .format import FORMAT_VERSION, load_rtrc, read_rtrc, read_rtrc_header, save_rtrc
from .importers import (
    FORMATS,
    detect_format,
    import_champsim,
    import_dramsim,
    import_trace,
    resolve_format,
)
from .transforms import remap_footprint, skip_warmup, slice_records, splice_phases
from .characterize import TraceCharacterization, characterize_trace
from .registry import (
    LIBRARY_APPS,
    RegisteredTrace,
    clear_registry,
    library_digests,
    lookup_registered,
    register_trace,
    registered_names,
    unregister_trace,
)
from .source import (
    DefaultTraceSource,
    LibraryTraceSource,
    SyntheticTraceSource,
    TraceSource,
)
from .library import TraceLibrary, default_library_dir

__all__ = [
    "FORMAT_VERSION",
    "save_rtrc",
    "load_rtrc",
    "read_rtrc",
    "read_rtrc_header",
    "FORMATS",
    "detect_format",
    "resolve_format",
    "import_trace",
    "import_champsim",
    "import_dramsim",
    "slice_records",
    "skip_warmup",
    "remap_footprint",
    "splice_phases",
    "TraceCharacterization",
    "characterize_trace",
    "RegisteredTrace",
    "LIBRARY_APPS",
    "register_trace",
    "unregister_trace",
    "clear_registry",
    "lookup_registered",
    "registered_names",
    "library_digests",
    "TraceSource",
    "SyntheticTraceSource",
    "LibraryTraceSource",
    "DefaultTraceSource",
    "TraceLibrary",
    "default_library_dir",
]
