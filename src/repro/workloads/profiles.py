"""SPEC-CPU2006-like application profiles.

Each profile parameterizes the synthetic trace generator. The numbers are
calibrated to the published memory characterizations this paper family
reports (MPKI and row-buffer locality tables in the TCM and MCP papers):
the absolute values need not be exact — experiment T2 measures and reports
what the generator actually produces on our substrate — but the *relative
structure* (which apps are intensive, streaming, bank-parallel) is what
drives every policy under study.

Profile fields:

* ``mpki``        — target memory accesses per kilo-instruction (post-LLC;
  traces are generated mostly cache-cold so the intrinsic rate survives).
* ``row_locality``— fraction of accesses that continue the current
  sequential run (→ row-buffer hits).
* ``streams``     — concurrent sequential streams; more streams spread
  outstanding requests over more banks (→ bank-level parallelism).
* ``write_frac``  — fraction of accesses that are stores.
* ``footprint_mb``— virtual working set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigError


@dataclass(frozen=True)
class AppProfile:
    """Generator parameters for one synthetic application.

    ``burst`` is the mean number of memory accesses issued back-to-back
    (a parallel-miss cluster). Bursts spread across the app's streams, so
    ``burst`` is what chiefly determines measured bank-level parallelism:
    a pointer-chasing app with serial dependent misses has burst ~1 even if
    its footprint is scattered, while a stencil touching eight arrays per
    iteration has burst ~8. Defaults to ``streams``.
    """

    name: str
    mpki: float
    row_locality: float
    streams: int
    write_frac: float
    footprint_mb: int
    burst: int = 0  # 0 means "same as streams"

    def __post_init__(self) -> None:
        if self.burst == 0:
            object.__setattr__(self, "burst", self.streams)
        if self.burst < 1:
            raise ConfigError(f"{self.name}: burst must be >= 1")
        if self.mpki <= 0:
            raise ConfigError(f"{self.name}: mpki must be positive")
        if not 0.0 <= self.row_locality < 1.0:
            raise ConfigError(f"{self.name}: row_locality must be in [0, 1)")
        if self.streams < 1:
            raise ConfigError(f"{self.name}: streams must be >= 1")
        if not 0.0 <= self.write_frac <= 1.0:
            raise ConfigError(f"{self.name}: write_frac must be in [0, 1]")
        if self.footprint_mb < 1:
            raise ConfigError(f"{self.name}: footprint_mb must be >= 1")

    @property
    def intensive(self) -> bool:
        """Memory-intensive by the standard MPKI >= 1 convention."""
        return self.mpki >= 1.0


def _profile(
    name: str,
    mpki: float,
    row_locality: float,
    streams: int,
    write_frac: float,
    footprint_mb: int,
    burst: int = 0,
) -> Tuple[str, AppProfile]:
    return name, AppProfile(
        name, mpki, row_locality, streams, write_frac, footprint_mb, burst
    )


APP_PROFILES: Dict[str, AppProfile] = dict(
    [
        # -- heavily memory-intensive ---------------------------------
        # mcf: pointer chasing, poor locality, many banks touched.
        _profile("mcf", 16.0, 0.20, 12, 0.25, 48, burst=10),
        # libquantum: the canonical single-stream streamer.
        _profile("libquantum", 25.0, 0.97, 1, 0.25, 32, burst=3),
        # lbm: multi-stream stencil, high locality, write heavy.
        _profile("lbm", 30.0, 0.88, 8, 0.40, 64, burst=10),
        # milc: strided lattice sweeps.
        _profile("milc", 24.0, 0.70, 4, 0.30, 48, burst=6),
        # soplex: sparse solver, mixed locality.
        _profile("soplex", 26.0, 0.75, 4, 0.20, 32, burst=6),
        # leslie3d: multi-array stencil.
        _profile("leslie3d", 20.0, 0.80, 6, 0.30, 48, burst=8),
        # GemsFDTD: large FDTD arrays, moderate locality, parallel banks.
        _profile("GemsFDTD", 15.0, 0.55, 6, 0.30, 64, burst=8),
        # bwaves: streaming solver.
        _profile("bwaves", 18.0, 0.85, 6, 0.20, 48, burst=8),
        # omnetpp: event simulator, scattered heap.
        _profile("omnetpp", 10.0, 0.40, 6, 0.30, 32, burst=6),
        # sphinx3: acoustic scoring over big tables.
        _profile("sphinx3", 12.0, 0.65, 4, 0.10, 32, burst=5),
        # -- moderately intensive -------------------------------------
        _profile("astar", 9.0, 0.35, 4, 0.25, 24, burst=2),
        _profile("wrf", 8.0, 0.70, 4, 0.30, 32),
        _profile("zeusmp", 4.8, 0.60, 4, 0.30, 32),
        _profile("cactusADM", 4.5, 0.50, 4, 0.35, 32),
        _profile("xalancbmk", 2.1, 0.55, 3, 0.25, 16),
        _profile("bzip2", 1.2, 0.60, 2, 0.30, 8),
        # -- memory-non-intensive -------------------------------------
        _profile("hmmer", 0.8, 0.80, 2, 0.30, 4),
        _profile("h264ref", 0.5, 0.80, 2, 0.30, 4),
        _profile("gcc", 0.4, 0.60, 2, 0.25, 8),
        _profile("gobmk", 0.3, 0.50, 2, 0.20, 4),
        _profile("namd", 0.2, 0.70, 2, 0.15, 4),
        _profile("calculix", 0.1, 0.70, 2, 0.20, 4),
        _profile("povray", 0.05, 0.60, 1, 0.20, 2),
        _profile("gamess", 0.05, 0.70, 1, 0.20, 2),
    ]
)


def get_profile(name: str) -> AppProfile:
    """Look up a *synthetic* application profile by name.

    Library-registered traces are apps too, but have no generator profile;
    resolve those through :func:`validate_app` / :func:`app_intensive` or
    the Runner's trace source.
    """
    try:
        return APP_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(APP_PROFILES))
        raise ConfigError(f"unknown app {name!r}; known: {known}") from None


def validate_app(name: str) -> None:
    """Check that ``name`` is a known app — synthetic or library trace."""
    from ..traces.registry import lookup_registered, registered_names

    if name in APP_PROFILES or lookup_registered(name) is not None:
        return
    known = ", ".join(sorted(APP_PROFILES))
    library = ", ".join(registered_names())
    message = f"unknown app {name!r}; synthetic apps: {known}"
    if library:
        message += f"; library traces: {library}"
    raise ConfigError(message)


def app_intensive(name: str) -> bool:
    """Memory-intensive classification for any app — synthetic or library.

    Synthetic apps use the profile's target MPKI; library traces use the
    measured (or intrinsic) classification stored at registration. The
    registry wins on deliberate shadowing, mirroring trace resolution.
    """
    from ..traces.registry import lookup_registered

    entry = lookup_registered(name, autoload=False)
    if entry is not None:
        return entry.intensive
    if name in APP_PROFILES:
        return APP_PROFILES[name].intensive
    entry = lookup_registered(name)
    if entry is not None:
        return entry.intensive
    validate_app(name)  # raises with the full known-apps message
    raise ConfigError(f"unknown app {name!r}")  # pragma: no cover


def profiles_by_intensity() -> Tuple[List[AppProfile], List[AppProfile]]:
    """(intensive, non-intensive) profiles, each sorted by MPKI descending."""
    intensive = sorted(
        (p for p in APP_PROFILES.values() if p.intensive),
        key=lambda p: -p.mpki,
    )
    light = sorted(
        (p for p in APP_PROFILES.values() if not p.intensive),
        key=lambda p: -p.mpki,
    )
    return intensive, light
