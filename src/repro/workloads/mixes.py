"""Multiprogrammed workload mixes (the paper's Table 3 equivalent).

Mixes follow the standard construction of this paper family: 4-core
combinations spanning intensity categories — all memory-intensive (H4),
three intensive plus one light (H3L1), balanced (H2L2), one intensive
(H1L3), and medium/mixed — plus 2-core and 8-core variants for the core-
count sensitivity study (experiment F7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigError
from .profiles import app_intensive, validate_app


@dataclass(frozen=True)
class Mix:
    """One multiprogrammed workload.

    Apps may be synthetic profile names or library-registered trace names
    — both validate eagerly and both count toward intensity.
    """

    name: str
    apps: Tuple[str, ...]
    category: str

    def __post_init__(self) -> None:
        for app in self.apps:
            validate_app(app)  # validate names eagerly

    @property
    def num_cores(self) -> int:
        return len(self.apps)

    def intensive_count(self) -> int:
        """Apps with MPKI >= 1 (memory-intensive by convention)."""
        return sum(1 for app in self.apps if app_intensive(app))


MIXES: Dict[str, Mix] = {
    mix.name: mix
    for mix in (
        # ---- 4-core mixes (the main evaluation set) ----------------
        Mix("M1", ("libquantum", "lbm", "mcf", "milc"), "H4"),
        Mix("M2", ("mcf", "soplex", "leslie3d", "GemsFDTD"), "H4"),
        Mix("M3", ("lbm", "bwaves", "libquantum", "sphinx3"), "H4"),
        Mix("M4", ("mcf", "lbm", "h264ref", "gcc"), "H2L2"),
        Mix("M5", ("libquantum", "milc", "namd", "povray"), "H2L2"),
        Mix("M6", ("soplex", "GemsFDTD", "bzip2", "calculix"), "H3L1"),
        Mix("M7", ("mcf", "h264ref", "gcc", "povray"), "H1L3"),
        Mix("M8", ("lbm", "namd", "gobmk", "gamess"), "H1L3"),
        Mix("M9", ("astar", "zeusmp", "cactusADM", "wrf"), "M4"),
        Mix("M10", ("omnetpp", "sphinx3", "xalancbmk", "bzip2"), "M4"),
        # ---- 2-core mixes (F7 sweep) --------------------------------
        Mix("D1", ("mcf", "libquantum"), "H2"),
        Mix("D2", ("lbm", "h264ref"), "H1L1"),
        Mix("D3", ("soplex", "milc"), "H2"),
        # ---- 8-core mixes (F7 sweep) --------------------------------
        Mix(
            "O1",
            (
                "libquantum",
                "lbm",
                "mcf",
                "milc",
                "soplex",
                "leslie3d",
                "GemsFDTD",
                "bwaves",
            ),
            "H8",
        ),
        Mix(
            "O2",
            (
                "mcf",
                "lbm",
                "libquantum",
                "sphinx3",
                "h264ref",
                "gcc",
                "namd",
                "povray",
            ),
            "H4L4",
        ),
        Mix(
            "O3",
            (
                "omnetpp",
                "astar",
                "zeusmp",
                "wrf",
                "bzip2",
                "gobmk",
                "calculix",
                "gamess",
            ),
            "M8",
        ),
    )
}

#: The mixes every main figure sweeps (4-core evaluation set).
MAIN_MIXES: List[str] = [f"M{i}" for i in range(1, 11)]


def get_mix(name: str) -> Mix:
    """Look up a mix by name."""
    try:
        return MIXES[name]
    except KeyError:
        known = ", ".join(sorted(MIXES))
        raise ConfigError(f"unknown mix {name!r}; known: {known}") from None


def adhoc_mix(spec: str) -> Mix:
    """Build an unnamed mix from ``app1+app2+...`` (library apps welcome).

    The CLI accepts this anywhere a mix name goes, which is how an
    imported library trace gets run against synthetic apps without
    editing the registered mix table.
    """
    apps = tuple(app for app in spec.split("+") if app)
    if len(apps) < 1:
        raise ConfigError(f"ad-hoc mix spec {spec!r} names no apps")
    return Mix(spec, apps, "adhoc")


def resolve_mix(name: str) -> Mix:
    """A registered mix by name, or an ``app1+app2`` ad-hoc mix."""
    if "+" in name:
        return adhoc_mix(name)
    return get_mix(name)


def mixes_for_cores(num_cores: int) -> List[Mix]:
    """All defined mixes with exactly ``num_cores`` applications."""
    return [m for m in MIXES.values() if m.num_cores == num_cores]
