"""Synthetic trace generation from application profiles.

The generator models a program as ``streams`` concurrent sequential walkers
over disjoint regions of the virtual footprint. Each access either continues
its stream's current sequential run (probability ``row_locality`` — these
become row-buffer hits) or jumps to a random location in the stream's region
(a row miss). Compute gaps between accesses are exponentially distributed
around the value that yields the profile's target MPKI.

Because streams live in different pages — and the OS spreads pages over
banks — a profile with many streams naturally exhibits high bank-level
parallelism, which is precisely the property DBP's demand estimator keys on.
"""

from __future__ import annotations

from typing import List, Optional

from ..cpu.trace import Trace, TraceRecord
from ..errors import TraceError
from ..utils import clamp, make_rng
from .profiles import AppProfile

LINES_PER_PAGE = 64  # 4 KB pages of 64 B lines


class _Stream:
    """One sequential walker over a contiguous page region."""

    __slots__ = ("base_page", "region_pages", "page", "line")

    def __init__(self, base_page: int, region_pages: int) -> None:
        self.base_page = base_page
        self.region_pages = region_pages
        self.page = 0
        self.line = 0

    def vline(self) -> int:
        return (self.base_page + self.page) * LINES_PER_PAGE + self.line

    def advance_sequential(self) -> None:
        self.line += 1
        if self.line >= LINES_PER_PAGE:
            self.line = 0
            self.page = (self.page + 1) % self.region_pages

    def jump(self, rng) -> None:
        self.page = rng.randrange(self.region_pages)
        self.line = rng.randrange(LINES_PER_PAGE)


def generate_trace(
    profile: AppProfile,
    seed: int = 1,
    target_insts: int = 4_000_000,
    min_records: int = 512,
    max_records: int = 40_000,
    length_override: Optional[int] = None,
) -> Trace:
    """Generate a trace realizing ``profile``.

    ``target_insts`` sizes the trace: the record count is chosen so the
    trace covers roughly that many instructions before looping (clamped to
    [min_records, max_records] to bound memory). ``length_override`` pins
    the record count exactly (used by tests).
    """
    if length_override is not None:
        num_records = length_override
    else:
        num_records = int(
            clamp(
                target_insts * profile.mpki / 1000.0, min_records, max_records
            )
        )
    if num_records < 1:
        raise TraceError("trace must contain at least one record")
    rng = make_rng(seed, "trace", profile.name)
    insts_per_access = 1000.0 / profile.mpki
    footprint_pages = max(
        profile.streams, profile.footprint_mb * (1 << 20) // 4096
    )
    region = max(1, footprint_pages // profile.streams)
    streams: List[_Stream] = []
    for index in range(profile.streams):
        stream = _Stream(index * region, region)
        stream.jump(rng)
        streams.append(stream)
    records: List[TraceRecord] = []
    cursor = 0
    while len(records) < num_records:
        # One burst: `b` accesses issued nearly back to back (they land in
        # the same ROB window, creating memory-level parallelism), then a
        # long compute stretch sized to keep the target MPKI.
        b = max(1, min(2 * profile.burst, round(rng.expovariate(1.0 / profile.burst))))
        b = min(b, num_records - len(records))
        small_gaps = [rng.randrange(3) for _ in range(b - 1)]
        big_mean = max(0.0, b * insts_per_access - b - sum(small_gaps))
        big_gap = int(rng.expovariate(1.0 / big_mean)) if big_mean > 0 else 0
        gaps = [big_gap] + small_gaps
        for j in range(b):
            stream = streams[(cursor + j) % len(streams)]
            if rng.random() < profile.row_locality:
                stream.advance_sequential()
            else:
                stream.jump(rng)
            is_write = rng.random() < profile.write_frac
            records.append(TraceRecord(gaps[j], stream.vline(), is_write))
        cursor += b
    return Trace(profile.name, records)
