"""Trace analysis: characterize a workload before simulating it.

Computes the static properties of a :class:`~repro.cpu.trace.Trace` that
predict its memory behaviour — intensity, sequential-run structure (row
locality), burst structure (bank-level parallelism potential), footprint,
reuse. Used by the ``repro-dbp traces`` CLI command and handy when
designing custom application profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..cpu.trace import Trace
from ..workloads.synthetic import LINES_PER_PAGE

#: The paper family's convention: an app with MPKI >= 1 is memory-intensive
#: and worth dedicated banks. The same threshold drives
#: :attr:`~repro.workloads.profiles.AppProfile.intensive`, DBP's demand
#: estimator default, and the trace library's characterization pass.
INTENSIVE_MPKI_THRESHOLD = 1.0


def _percentile(sorted_values: Sequence[int], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return float(sorted_values[index])


@dataclass(frozen=True)
class TraceAnalysis:
    """Static characterization of one trace."""

    name: str
    records: int
    total_insts: int
    intrinsic_mpki: float
    write_fraction: float
    footprint_pages: int
    footprint_lines: int
    reuse_fraction: float  # lines touched more than once
    mean_gap: float
    p95_gap: float
    mean_run_length: float  # consecutive vline+1 chains
    mean_burst_size: float  # consecutive records with gap <= 2
    max_burst_size: int

    @property
    def intensive(self) -> bool:
        """Memory-intensive by intrinsic MPKI (pre-cache upper bound)."""
        return self.intrinsic_mpki >= INTENSIVE_MPKI_THRESHOLD

    def render(self) -> str:
        rows = [
            ("records", f"{self.records}"),
            ("instructions", f"{self.total_insts}"),
            ("intrinsic MPKI", f"{self.intrinsic_mpki:.2f}"),
            ("write fraction", f"{self.write_fraction:.2f}"),
            (
                "footprint",
                f"{self.footprint_pages} pages "
                f"({self.footprint_pages * 4} KB)",
            ),
            ("line reuse", f"{self.reuse_fraction:.2f}"),
            ("gap mean / p95", f"{self.mean_gap:.1f} / {self.p95_gap:.0f}"),
            ("mean seq-run length", f"{self.mean_run_length:.2f}"),
            (
                "burst size mean / max",
                f"{self.mean_burst_size:.2f} / {self.max_burst_size}",
            ),
        ]
        width = max(len(label) for label, _ in rows)
        lines = [f"{self.name}:"]
        lines.extend(f"  {label:<{width}} : {value}" for label, value in rows)
        return "\n".join(lines)


def analyze_trace(trace: Trace) -> TraceAnalysis:
    """Compute a :class:`TraceAnalysis` for one trace."""
    records = trace.records
    gaps = sorted(r.gap for r in records)
    writes = sum(1 for r in records if r.is_write)
    touched: Dict[int, int] = {}
    for record in records:
        touched[record.vline] = touched.get(record.vline, 0) + 1
    reused = sum(1 for count in touched.values() if count > 1)
    # Sequential run lengths: chains of vline -> vline + 1.
    run_lengths: List[int] = []
    current = 1
    for prev, cur in zip(records, records[1:]):
        if cur.vline == prev.vline + 1:
            current += 1
        else:
            run_lengths.append(current)
            current = 1
    run_lengths.append(current)
    # Burst sizes: consecutive records with tiny compute gaps.
    burst_sizes: List[int] = []
    burst = 1
    for record in records[1:]:
        if record.gap <= 2:
            burst += 1
        else:
            burst_sizes.append(burst)
            burst = 1
    burst_sizes.append(burst)
    pages = {r.vline // LINES_PER_PAGE for r in records}
    return TraceAnalysis(
        name=trace.name,
        records=len(records),
        total_insts=trace.total_insts,
        intrinsic_mpki=trace.intrinsic_mpki,
        write_fraction=writes / len(records),
        footprint_pages=len(pages),
        footprint_lines=len(touched),
        reuse_fraction=reused / len(touched) if touched else 0.0,
        mean_gap=sum(gaps) / len(gaps),
        p95_gap=_percentile(gaps, 0.95),
        mean_run_length=sum(run_lengths) / len(run_lengths),
        mean_burst_size=sum(burst_sizes) / len(burst_sizes),
        max_burst_size=max(burst_sizes),
    )
