"""Synthetic SPEC-like workloads and multiprogrammed mixes.

The paper evaluates multiprogrammed SPEC CPU2006 mixes. SPEC binaries and
their traces are proprietary, so this package substitutes synthetic trace
generators whose *memory behaviour* — MPKI, row-buffer locality, bank-level
parallelism, footprint, write mix — is calibrated to published
characterizations of each benchmark (see DESIGN.md, "Substitutions"). The
partitioning and scheduling policies under study only ever observe those
properties, which is what makes the substitution sound.
"""

from .profiles import (
    AppProfile,
    APP_PROFILES,
    app_intensive,
    get_profile,
    profiles_by_intensity,
    validate_app,
)
from .synthetic import generate_trace
from .mixes import Mix, MIXES, adhoc_mix, get_mix, mixes_for_cores, resolve_mix
from .analysis import (
    INTENSIVE_MPKI_THRESHOLD,
    TraceAnalysis,
    analyze_trace,
)

__all__ = [
    "AppProfile",
    "APP_PROFILES",
    "get_profile",
    "validate_app",
    "app_intensive",
    "profiles_by_intensity",
    "generate_trace",
    "Mix",
    "MIXES",
    "get_mix",
    "adhoc_mix",
    "resolve_mix",
    "mixes_for_cores",
    "INTENSIVE_MPKI_THRESHOLD",
    "TraceAnalysis",
    "analyze_trace",
]
