"""Synthetic SPEC-like workloads and multiprogrammed mixes.

The paper evaluates multiprogrammed SPEC CPU2006 mixes. SPEC binaries and
their traces are proprietary, so this package substitutes synthetic trace
generators whose *memory behaviour* — MPKI, row-buffer locality, bank-level
parallelism, footprint, write mix — is calibrated to published
characterizations of each benchmark (see DESIGN.md, "Substitutions"). The
partitioning and scheduling policies under study only ever observe those
properties, which is what makes the substitution sound.
"""

from .profiles import AppProfile, APP_PROFILES, get_profile, profiles_by_intensity
from .synthetic import generate_trace
from .mixes import Mix, MIXES, get_mix, mixes_for_cores
from .analysis import TraceAnalysis, analyze_trace

__all__ = [
    "AppProfile",
    "APP_PROFILES",
    "get_profile",
    "profiles_by_intensity",
    "generate_trace",
    "Mix",
    "MIXES",
    "get_mix",
    "mixes_for_cores",
    "TraceAnalysis",
    "analyze_trace",
]
