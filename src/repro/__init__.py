"""repro: a full reproduction of Dynamic Bank Partitioning (HPCA 2014).

The package implements, from scratch, every system the paper needs — a
DDR3 memory-system simulator (device timing model, multi-channel controller,
five request schedulers), an OS page-coloring layer, private caches, an
event-driven core model, synthetic SPEC-like workloads — plus the paper's
contribution: Dynamic Bank Partitioning and its DBP-TCM combination, with
equal bank partitioning and memory channel partitioning as baselines.

Quickstart::

    from repro import Runner, get_mix

    runner = Runner(horizon=200_000)
    for approach in ("shared-frfcfs", "ebp", "dbp"):
        result = runner.run_mix(get_mix("M1"), approach)
        print(approach, result.metrics.summary)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reconstructed table and figure.
"""

from .config import (
    CacheConfig,
    ControllerConfig,
    CoreConfig,
    DRAMOrganization,
    OSConfig,
    SystemConfig,
)
from .core import (
    APPROACHES,
    Approach,
    BankDemandEstimator,
    DBPConfig,
    DemandConfig,
    DynamicBankPartitioning,
    ThreadProfiler,
    get_approach,
)
from .baselines import (
    EqualBankPartitioning,
    MCPConfig,
    MemoryChannelPartitioning,
    PartitionPolicy,
    SharedPolicy,
)
from .errors import (
    AllocationError,
    ConfigError,
    ExperimentError,
    MappingError,
    ProtocolError,
    ReproError,
    SimulationError,
    TraceError,
)
from .metrics import (
    MetricSummary,
    harmonic_speedup,
    max_slowdown,
    slowdowns,
    summarize,
    weighted_speedup,
)
from .campaign import (
    CampaignResult,
    CampaignSpec,
    ResultStore,
    RunOutcome,
    RunSpec,
    run_campaign,
)
from .sim import Engine, RunResult, Runner, System, SystemResult, WorkloadRunMetrics
from .workloads import (
    APP_PROFILES,
    AppProfile,
    MIXES,
    Mix,
    generate_trace,
    get_mix,
    get_profile,
    mixes_for_cores,
)

__version__ = "1.0.0"

__all__ = [
    # configuration
    "SystemConfig",
    "DRAMOrganization",
    "CoreConfig",
    "CacheConfig",
    "ControllerConfig",
    "OSConfig",
    # contribution
    "DynamicBankPartitioning",
    "DBPConfig",
    "BankDemandEstimator",
    "DemandConfig",
    "ThreadProfiler",
    "Approach",
    "APPROACHES",
    "get_approach",
    # baselines
    "PartitionPolicy",
    "SharedPolicy",
    "EqualBankPartitioning",
    "MemoryChannelPartitioning",
    "MCPConfig",
    # workloads
    "AppProfile",
    "APP_PROFILES",
    "get_profile",
    "generate_trace",
    "Mix",
    "MIXES",
    "get_mix",
    "mixes_for_cores",
    # campaigns
    "CampaignSpec",
    "CampaignResult",
    "RunSpec",
    "RunOutcome",
    "ResultStore",
    "run_campaign",
    # simulation
    "Engine",
    "System",
    "SystemResult",
    "Runner",
    "RunResult",
    "WorkloadRunMetrics",
    # metrics
    "MetricSummary",
    "weighted_speedup",
    "harmonic_speedup",
    "max_slowdown",
    "slowdowns",
    "summarize",
    # errors
    "ReproError",
    "ConfigError",
    "ProtocolError",
    "MappingError",
    "AllocationError",
    "TraceError",
    "SimulationError",
    "ExperimentError",
]
