"""The campaign subsystem's high-level entry points.

* :func:`run_campaign` — plan-and-execute for CLI/script use, with the
  persistent store on by default.
* :func:`sweep_metrics` — the drop-in engine behind
  ``repro.experiments.catalog._metric_sweep``: executes a (mix x approach)
  grid through a Runner's scope, fanning out over ``runner.jobs`` worker
  processes and adopting every result into the Runner's in-memory cache so
  later figures that share runs (e.g. F3 after F2) stay free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..errors import ExperimentError
from ..workloads import get_mix
from .executor import CampaignResult, ProgressFn, execute
from .spec import CampaignSpec, RunSpec, plan_sweep
from .store import ResultStore, default_store_dir


def run_campaign(
    plan: Union[CampaignSpec, Sequence[RunSpec]],
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    retries: int = 1,
    timeout: Optional[float] = None,
    progress: Optional[ProgressFn] = None,
    persist: bool = True,
    backoff: float = 0.25,
    quarantine_after: int = 2,
    max_pool_respawns: int = 3,
    safepoint_every: Optional[int] = None,
    checkpoint_dir: Optional[object] = None,
    faults: Optional[object] = None,
    spans: Optional[object] = None,
) -> CampaignResult:
    """Execute a campaign spec (or an explicit plan) and return outcomes.

    With ``persist`` (the default) results land in ``store`` — created at
    :func:`~repro.campaign.store.default_store_dir` when not given — so a
    re-run of the same campaign is served from disk and an interrupted one
    resumes where it stopped. The supervision knobs (``backoff``,
    ``quarantine_after``, ``max_pool_respawns``, ``safepoint_every``,
    ``checkpoint_dir``, ``faults``) and the ``spans`` trace-output path
    pass straight through to :func:`~repro.campaign.executor.execute`.
    """
    specs = plan.plan() if isinstance(plan, CampaignSpec) else list(plan)
    if persist and store is None:
        store = ResultStore(default_store_dir())
    return execute(
        specs,
        jobs=jobs,
        store=store if persist else None,
        retries=retries,
        timeout=timeout,
        progress=progress,
        backoff=backoff,
        quarantine_after=quarantine_after,
        max_pool_respawns=max_pool_respawns,
        safepoint_every=safepoint_every,
        checkpoint_dir=checkpoint_dir,
        faults=faults,
        spans=spans,
    )


def sweep_metrics(
    runner,
    mixes: Sequence[str],
    approaches: Sequence[str],
) -> Dict[str, Dict[str, List[float]]]:
    """Run mixes x approaches through ``runner``; per-approach WS/MS/HS lists.

    Exactly the contract of the old serial ``_metric_sweep``: when
    ``runner.jobs <= 1`` it *is* the serial path (same Runner, same order),
    so metrics are bit-identical; with more jobs the missing cells fan out
    through the campaign executor and the Runner adopts the results.
    """
    out: Dict[str, Dict[str, List[float]]] = {
        approach: {"ws": [], "ms": [], "hs": []} for approach in approaches
    }
    if runner.jobs > 1:
        missing = [
            spec
            for spec in plan_sweep(runner, mixes, approaches)
            if runner.cached_run(spec.apps, spec.approach) is None
        ]
        if missing:
            campaign = execute(
                missing, jobs=runner.jobs, store=runner.store
            )
            failures = campaign.failed + campaign.quarantined
            if failures:
                first = failures[0]
                raise ExperimentError(
                    f"{len(failures)} of {len(missing)} sweep runs "
                    f"failed or were quarantined; "
                    f"first: {first.spec.label} — {first.error}"
                )
            for outcome in campaign.outcomes:
                runner.adopt_result(
                    outcome.spec.apps, outcome.spec.approach, outcome.result
                )
    for mix_name in mixes:
        mix = get_mix(mix_name)
        for approach in approaches:
            metrics = runner.run_mix(mix, approach).metrics
            out[approach]["ws"].append(metrics.weighted_speedup)
            out[approach]["ms"].append(metrics.max_slowdown)
            out[approach]["hs"].append(metrics.harmonic_speedup)
    return out
