"""Campaign progress lines and the end-of-campaign report.

:class:`ProgressPrinter` is the executor's ``progress`` callback for
interactive use: one line per settled run with running counts, the run's
wall-clock, and an ETA extrapolated from the mean executed-run time and the
worker count. :func:`render_report` turns a finished
:class:`~repro.campaign.executor.CampaignResult` into the paper-style text
table the CLI prints.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Dict, Iterable, List, Optional

from .executor import CampaignResult, RunOutcome
from .store import ResultStore


class ProgressPrinter:
    """Prints one status line per settled run, with counts and an ETA."""

    def __init__(
        self,
        total: int,
        jobs: int = 1,
        stream: Optional[IO[str]] = None,
        enabled: bool = True,
    ) -> None:
        self.total = total
        self.jobs = max(1, jobs)
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.started = time.perf_counter()
        self._executed_walls: List[float] = []
        self.completed = 0
        self.cached = 0
        self.failed = 0
        self.quarantined = 0
        #: Budget-consuming attempts across every settled run.
        self.attempts = 0

    def __call__(self, outcome: RunOutcome, done: int, total: int) -> None:
        if outcome.status == "ok":
            self.completed += 1
            self._executed_walls.append(outcome.wall_clock)
        elif outcome.status == "cached":
            self.cached += 1
        elif outcome.status == "quarantined":
            self.quarantined += 1
        else:
            self.failed += 1
        self.attempts += outcome.attempts
        if not self.enabled:
            return
        width = len(str(self.total))
        line = (
            f"[{done:>{width}}/{total}] {outcome.spec.label:<28} "
            f"{outcome.status:<6}"
        )
        if outcome.status == "ok":
            line += f" {outcome.wall_clock:6.1f}s"
            if outcome.attempts > 1:
                line += f" (attempt {outcome.attempts})"
        elif outcome.status in ("failed", "quarantined"):
            line += f" after {outcome.attempts} attempt(s) ({outcome.error})"
        eta = self._eta(done)
        if eta is not None:
            line += f"  eta {eta:.0f}s"
        print(line, file=self.stream, flush=True)

    def _eta(self, done: int) -> Optional[float]:
        remaining = self.total - done
        if remaining <= 0 or not self._executed_walls:
            return None
        mean = sum(self._executed_walls) / len(self._executed_walls)
        return remaining * mean / self.jobs


def aggregate_telemetry(
    outcomes: Iterable[RunOutcome],
) -> Optional[Dict[str, object]]:
    """Merge per-run telemetry summaries across a campaign.

    Each worker's :class:`RunResult` carries the
    :meth:`TelemetryRecorder.summary` digest of its own run (cached runs
    carry the digest persisted with the store entry). Counter-like fields
    sum, queue depths take the max. Returns None when no outcome carried
    telemetry at all — the campaign ran without recording.
    """
    summed = (
        "epochs",
        "quanta",
        "policy_epochs",
        "dropped_epochs",
        "migration_casses",
        "repartitions",
        "pages_migrated",
        "streamed_epochs",
    )
    maxed = ("max_read_queue_depth", "max_write_queue_depth")
    outcomes = list(outcomes)
    merged: Dict[str, object] = {key: 0 for key in summed + maxed}
    merged["runs"] = 0
    seen = False
    for outcome in outcomes:
        summary = outcome.result.telemetry if outcome.result else None
        if not summary:
            continue
        seen = True
        merged["runs"] += 1
        for key in summed:
            if key in summary:
                merged[key] += summary[key]
        for key in maxed:
            merged[key] = max(merged[key], summary.get(key, 0))
    if not seen:
        return None
    # Fields no run reported (e.g. repartitions under static policies)
    # would read as a misleading 0 — drop them instead.
    for key in summed:
        if merged[key] == 0 and not any(
            key in (o.result.telemetry or {})
            for o in outcomes
            if o.result is not None
        ):
            del merged[key]
    return merged


def render_report(
    result: CampaignResult, store: Optional[ResultStore] = None
) -> str:
    """The finished campaign as a text table plus a summary block."""
    from ..experiments.report import render_table

    columns = [
        "mix", "approach", "seed", "horizon", "status", "tries", "ws", "hs",
        "ms", "secs",
    ]
    rows: List[List[object]] = []
    for outcome in result.outcomes:
        spec = outcome.spec
        metrics = outcome.result.metrics if outcome.result else None
        rows.append(
            [
                spec.mix_name or "+".join(spec.apps),
                spec.approach,
                spec.seed,
                spec.horizon,
                outcome.status,
                outcome.attempts,
                metrics.weighted_speedup if metrics else "-",
                metrics.harmonic_speedup if metrics else "-",
                metrics.max_slowdown if metrics else "-",
                round(outcome.wall_clock, 1),
            ]
        )
    executed = result.executed
    parts = [render_table(columns, rows), ""]
    parts.append(
        f"runs: {len(result.outcomes)} total, {len(executed)} executed, "
        f"{len(result.cached)} cached "
        f"({100.0 * result.cache_hit_rate:.0f}% hit rate), "
        f"{len(result.failed)} failed, "
        f"{len(result.quarantined)} quarantined"
    )
    parts.append(f"campaign wall-clock: {result.wall_clock:.1f}s")
    if result.time_lost_to_faults > 0 or result.pool_respawns > 0:
        parts.append(
            f"faults: {result.time_lost_to_faults:.1f}s lost to failed "
            f"attempts, {result.pool_respawns} pool respawn(s)"
        )
    recovered = [
        o for o in result.executed if o.failure is not None
    ]
    for outcome in recovered:
        parts.append(
            f"RECOVERED on attempt {outcome.attempts}: "
            f"{outcome.spec.label} — "
            f"{outcome.failure.attempts[-1].error_type} on earlier tries"
        )
    telemetry = aggregate_telemetry(result.outcomes)
    if telemetry is not None:
        fields = ", ".join(
            f"{key}={telemetry[key]}"
            for key in sorted(telemetry)
            if key != "runs"
        )
        parts.append(
            f"telemetry: {telemetry['runs']} recorded run(s); {fields}"
        )
    if store is not None:
        stats = store.stats
        parts.append(
            f"store: {stats.hits} hits, {stats.misses} misses, "
            f"{stats.writes} writes, {stats.corrupt} quarantined, "
            f"{stats.wall_saved:.1f}s of simulation re-served from disk "
            f"({store.root})"
        )
    for outcome in result.failed:
        parts.append(
            f"FAILED after {outcome.attempts} attempt(s): "
            f"{outcome.spec.label} — {outcome.error}"
        )
    for outcome in result.quarantined:
        reason = outcome.failure.reason if outcome.failure else outcome.error
        parts.append(
            f"QUARANTINED after {outcome.attempts} attempt(s): "
            f"{outcome.spec.label} — {reason} ({outcome.error})"
        )
    return "\n".join(parts)
