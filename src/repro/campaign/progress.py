"""Campaign progress lines and the end-of-campaign report.

:class:`ProgressPrinter` is the executor's ``progress`` callback for
interactive use: one line per settled run with running counts, the run's
wall-clock, and an ETA extrapolated from the mean executed-run time and the
worker count. :func:`render_report` turns a finished
:class:`~repro.campaign.executor.CampaignResult` into the paper-style text
table the CLI prints.
"""

from __future__ import annotations

import sys
import time
from typing import IO, List, Optional

from .executor import CampaignResult, RunOutcome
from .store import ResultStore


class ProgressPrinter:
    """Prints one status line per settled run, with counts and an ETA."""

    def __init__(
        self,
        total: int,
        jobs: int = 1,
        stream: Optional[IO[str]] = None,
        enabled: bool = True,
    ) -> None:
        self.total = total
        self.jobs = max(1, jobs)
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.started = time.perf_counter()
        self._executed_walls: List[float] = []
        self.completed = 0
        self.cached = 0
        self.failed = 0

    def __call__(self, outcome: RunOutcome, done: int, total: int) -> None:
        if outcome.status == "ok":
            self.completed += 1
            self._executed_walls.append(outcome.wall_clock)
        elif outcome.status == "cached":
            self.cached += 1
        else:
            self.failed += 1
        if not self.enabled:
            return
        width = len(str(self.total))
        line = (
            f"[{done:>{width}}/{total}] {outcome.spec.label:<28} "
            f"{outcome.status:<6}"
        )
        if outcome.status == "ok":
            line += f" {outcome.wall_clock:6.1f}s"
        elif outcome.status == "failed":
            line += f" ({outcome.error})"
        eta = self._eta(done)
        if eta is not None:
            line += f"  eta {eta:.0f}s"
        print(line, file=self.stream, flush=True)

    def _eta(self, done: int) -> Optional[float]:
        remaining = self.total - done
        if remaining <= 0 or not self._executed_walls:
            return None
        mean = sum(self._executed_walls) / len(self._executed_walls)
        return remaining * mean / self.jobs


def render_report(
    result: CampaignResult, store: Optional[ResultStore] = None
) -> str:
    """The finished campaign as a text table plus a summary block."""
    from ..experiments.report import render_table

    columns = [
        "mix", "approach", "seed", "horizon", "status", "ws", "hs", "ms",
        "secs",
    ]
    rows: List[List[object]] = []
    for outcome in result.outcomes:
        spec = outcome.spec
        metrics = outcome.result.metrics if outcome.result else None
        rows.append(
            [
                spec.mix_name or "+".join(spec.apps),
                spec.approach,
                spec.seed,
                spec.horizon,
                outcome.status,
                metrics.weighted_speedup if metrics else "-",
                metrics.harmonic_speedup if metrics else "-",
                metrics.max_slowdown if metrics else "-",
                round(outcome.wall_clock, 1),
            ]
        )
    executed = result.executed
    parts = [render_table(columns, rows), ""]
    parts.append(
        f"runs: {len(result.outcomes)} total, {len(executed)} executed, "
        f"{len(result.cached)} cached "
        f"({100.0 * result.cache_hit_rate:.0f}% hit rate), "
        f"{len(result.failed)} failed"
    )
    parts.append(f"campaign wall-clock: {result.wall_clock:.1f}s")
    if store is not None:
        stats = store.stats
        parts.append(
            f"store: {stats.hits} hits, {stats.misses} misses, "
            f"{stats.writes} writes, {stats.corrupt} quarantined, "
            f"{stats.wall_saved:.1f}s of simulation re-served from disk "
            f"({store.root})"
        )
    for outcome in result.failed:
        parts.append(
            f"FAILED after {outcome.attempts} attempt(s): "
            f"{outcome.spec.label} — {outcome.error}"
        )
    return "\n".join(parts)
