"""Campaign planning: expand an experiment grid into picklable run specs.

A campaign is a grid of fully independent simulations —
(mix x approach x seed x horizon) — and a :class:`RunSpec` is one cell of
that grid, carrying everything a worker process needs to reproduce the run
from scratch. Approaches travel *by registry name* (policy instances hold
simulation state and are not picklable); workers resolve the name and build
a fresh policy, which is also what binds the store key to the resolved
policy/scheduler rather than the label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..core.integration import get_approach
from ..errors import ExperimentError
from ..workloads import resolve_mix
from .store import run_key, runner_fingerprint

#: The F2/F3 headline grid's approaches — the campaign CLI default.
DEFAULT_APPROACHES: Tuple[str, ...] = ("shared-frfcfs", "ebp", "dbp")


def _mix_trace_digests(apps: Sequence[str]) -> Tuple[Tuple[str, str], ...]:
    """Sorted (app, digest) pairs for the library traces among ``apps``."""
    from ..traces.registry import library_digests

    return tuple(sorted(library_digests(apps).items()))


@dataclass(frozen=True)
class RunSpec:
    """One simulation run, fully described and picklable."""

    apps: Tuple[str, ...]
    approach: str
    config: SystemConfig = field(default_factory=SystemConfig)
    seed: int = 1
    horizon: int = 400_000
    target_insts: int = 4_000_000
    ahead_limit: int = 8192
    validate: bool = False
    mix_name: Optional[str] = None
    #: Record per-epoch telemetry in the worker and attach its summary to
    #: the store entry. Deliberately NOT part of :meth:`key` — telemetry
    #: never changes simulation results, so traced and untraced runs share
    #: one store entry.
    telemetry: bool = False
    #: ``(app, digest)`` pairs for every app in ``apps`` that resolves to a
    #: library trace. Part of :meth:`key` (library traces are addressed by
    #: content, not name); empty for all-synthetic specs, which keeps those
    #: keys byte-identical to pre-library campaigns.
    trace_digests: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.apps:
            raise ExperimentError("a RunSpec needs at least one app")
        if self.horizon <= 0:
            raise ExperimentError("horizon must be positive")

    @property
    def label(self) -> str:
        """Short human-readable identity for progress lines and errors."""
        mix = self.mix_name or "+".join(self.apps)
        return f"{mix}/{self.approach} s{self.seed} h{self.horizon}"

    def key(self) -> str:
        """The content-addressed store key of this run."""
        return run_key(
            self.config,
            self.apps,
            self.approach,
            seed=self.seed,
            horizon=self.horizon,
            target_insts=self.target_insts,
            ahead_limit=self.ahead_limit,
            validate=self.validate,
            trace_digests=dict(self.trace_digests),
        )

    def runner_key(self) -> str:
        """Fingerprint of the Runner this spec needs (apps/approach aside)."""
        return runner_fingerprint(
            self.config,
            seed=self.seed,
            horizon=self.horizon,
            target_insts=self.target_insts,
            ahead_limit=self.ahead_limit,
            validate=self.validate,
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A named experiment grid; :meth:`plan` expands it to RunSpecs."""

    name: str = "campaign"
    mixes: Tuple[str, ...] = ()
    approaches: Tuple[str, ...] = DEFAULT_APPROACHES
    seeds: Tuple[int, ...] = (1,)
    horizons: Tuple[int, ...] = (400_000,)
    config: SystemConfig = field(default_factory=SystemConfig)
    target_insts: int = 4_000_000
    ahead_limit: int = 8192
    validate: bool = False
    telemetry: bool = False

    def __post_init__(self) -> None:
        if not self.mixes:
            raise ExperimentError("a campaign needs at least one mix")
        if not self.approaches:
            raise ExperimentError("a campaign needs at least one approach")
        if not self.seeds or not self.horizons:
            raise ExperimentError("a campaign needs seeds and horizons")
        for name in self.mixes:
            resolve_mix(name)  # validate names before any work happens
        for name in self.approaches:
            get_approach(name)

    def plan(self) -> List[RunSpec]:
        """Every cell of the grid, in deterministic sweep order."""
        specs: List[RunSpec] = []
        for horizon in self.horizons:
            for seed in self.seeds:
                for mix_name in self.mixes:
                    mix = resolve_mix(mix_name)
                    digests = _mix_trace_digests(mix.apps)
                    for approach in self.approaches:
                        specs.append(
                            RunSpec(
                                apps=tuple(mix.apps),
                                approach=approach,
                                config=self.config,
                                seed=seed,
                                horizon=horizon,
                                target_insts=self.target_insts,
                                ahead_limit=self.ahead_limit,
                                validate=self.validate,
                                mix_name=mix.name,
                                telemetry=self.telemetry,
                                trace_digests=digests,
                            )
                        )
        return specs


def plan_sweep(
    runner,
    mixes: Sequence[str],
    approaches: Sequence[str],
) -> List[RunSpec]:
    """RunSpecs mirroring what ``runner.run_mix`` would do for a grid.

    The specs inherit every scope field of the Runner, so the store keys
    (and therefore the results) are identical to the serial path's.
    """
    specs: List[RunSpec] = []
    for mix_name in mixes:
        mix = resolve_mix(mix_name)
        digests = tuple(sorted(runner.library_digests(mix.apps).items()))
        for approach in approaches:
            specs.append(
                RunSpec(
                    apps=tuple(mix.apps),
                    approach=approach,
                    config=runner.config,
                    seed=runner.seed,
                    horizon=runner.horizon,
                    target_insts=runner.target_insts,
                    ahead_limit=runner.ahead_limit,
                    validate=runner.validate,
                    mix_name=mix.name,
                    trace_digests=digests,
                )
            )
    return specs
