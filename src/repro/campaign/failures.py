"""Failure taxonomy and structured failure records for campaigns.

Every error a run can die of falls into one of four classes, and the
supervisor's reaction is a pure function of the class:

=================  ==========================================  ==============
class              typical causes                              reaction
=================  ==========================================  ==============
``transient``      injected/transient env error, OSError,      retry with
                   MemoryError, torn checkpoint flush          backoff;
                                                               charges budget
``deterministic``  ConfigError, SimulationError, any other     retry once to
                   exception raised by the run itself          confirm, then
                                                               quarantine
``timeout``        per-run deadline expired                    retry (from
                                                               the last
                                                               checkpoint if
                                                               one exists);
                                                               charges budget
``infrastructure`` worker process died (BrokenProcessPool),    requeue without
                   pool respawn                                charging the
                                                               spec's budget
=================  ==========================================  ==============

A spec that exhausts its budget or trips quarantine settles with a
:class:`FailureRecord` — error class, per-attempt tracebacks, wall-clock
lost — persisted next to the results it failed to produce (see
``ResultStore.put_failure``), so no run can ever be lost *silently*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List


class FailureClass(Enum):
    """What kind of failure an error represents (see module docstring)."""

    TRANSIENT = "transient"
    DETERMINISTIC = "deterministic"
    TIMEOUT = "timeout"
    INFRASTRUCTURE = "infrastructure"


def classify_failure(error: BaseException) -> FailureClass:
    """Map one caught exception onto the four-way taxonomy.

    The checks are ordered most-specific first: the injected
    ``TransientFaultError`` subclasses ``ReproError``, and ``TimeoutError``
    is an ``OSError`` subclass on CPython 3.10+, so neither may fall
    through to a broader bucket.
    """
    from concurrent.futures.process import BrokenProcessPool

    from ..faults.injectors import TransientFaultError
    from .executor import RunTimeoutError

    if isinstance(error, RunTimeoutError):
        return FailureClass.TIMEOUT
    if isinstance(error, TransientFaultError):
        return FailureClass.TRANSIENT
    if isinstance(error, BrokenProcessPool):
        return FailureClass.INFRASTRUCTURE
    if isinstance(error, (OSError, MemoryError)):
        return FailureClass.TRANSIENT
    return FailureClass.DETERMINISTIC


@dataclass
class FailureAttempt:
    """One failed try of one spec, as the supervisor saw it."""

    #: Budget-consuming attempt number at the time of the failure
    #: (infrastructure losses are refunded, so this can repeat).
    attempt: int
    #: Monotonic count of hand-offs to a worker, including ones whose
    #: worker died before reporting anything.
    submission: int
    error_class: str
    error_type: str
    message: str
    traceback: str = ""
    #: Parent-observed seconds between hand-off and the failure.
    wall_clock: float = 0.0
    #: Unix timestamp of the failure (forensics only).
    at: float = 0.0

    def to_doc(self) -> Dict[str, object]:
        return {
            "attempt": self.attempt,
            "submission": self.submission,
            "error_class": self.error_class,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "wall_clock": round(self.wall_clock, 3),
            "at": self.at,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "FailureAttempt":
        return cls(
            attempt=int(doc.get("attempt", 0)),
            submission=int(doc.get("submission", 0)),
            error_class=str(doc.get("error_class", "")),
            error_type=str(doc.get("error_type", "")),
            message=str(doc.get("message", "")),
            traceback=str(doc.get("traceback", "")),
            wall_clock=float(doc.get("wall_clock", 0.0)),
            at=float(doc.get("at", 0.0)),
        )


#: Bump on incompatible changes to the persisted failure-record layout.
RECORD_VERSION = 1


@dataclass
class FailureRecord:
    """The full failure history of one spec, persisted with the store."""

    key: str
    label: str
    #: "failed" (budget exhausted), "quarantined" (poison spec), or
    #: "recovered" (succeeded after at least one failed attempt — kept for
    #: forensics; the result itself lives in the store).
    resolution: str
    final_class: str
    reason: str
    attempts: List[FailureAttempt] = field(default_factory=list)
    #: Total parent-observed seconds lost to the failed attempts.
    time_lost: float = 0.0

    @property
    def last_error(self) -> str:
        if not self.attempts:
            return ""
        last = self.attempts[-1]
        return f"{last.error_type}: {last.message}"

    def to_doc(self) -> Dict[str, object]:
        return {
            "record_version": RECORD_VERSION,
            "key": self.key,
            "label": self.label,
            "resolution": self.resolution,
            "final_class": self.final_class,
            "reason": self.reason,
            "time_lost": round(self.time_lost, 3),
            "attempts": [attempt.to_doc() for attempt in self.attempts],
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "FailureRecord":
        return cls(
            key=str(doc.get("key", "")),
            label=str(doc.get("label", "")),
            resolution=str(doc.get("resolution", "")),
            final_class=str(doc.get("final_class", "")),
            reason=str(doc.get("reason", "")),
            time_lost=float(doc.get("time_lost", 0.0)),
            attempts=[
                FailureAttempt.from_doc(item)
                for item in doc.get("attempts", [])
            ],
        )
