"""Persistent, content-addressed result store.

Every simulation run in this reproduction is a pure function of its inputs:
the :class:`~repro.config.SystemConfig`, the application list, the approach
(resolved to its partitioning policy and scheduler, with parameters), the
trace seed and length, and the horizon. The store exploits that purity: the
SHA-256 of a canonical JSON encoding of those inputs addresses one JSON
entry under ``benchmarks/results/store/``, so any process that reproduces
the same inputs — a later CLI invocation, a benchmark session, a campaign
worker — gets the finished :class:`~repro.sim.runner.RunResult` for free.

Properties the executor and the benches rely on:

* **Atomic writes** — entries are written to a temp file in the same
  directory and ``os.replace``d into place, so a killed worker can never
  leave a half-written entry behind.
* **Corruption quarantine** — an entry that fails to decode is renamed to
  ``<entry>.corrupt`` (kept for post-mortem) and treated as a miss. An
  entry that decodes but carries a *different* ``STORE_VERSION`` is merely
  stale, not malformed: it is skipped (and counted separately) but left in
  place, since a recompute overwrites the same path anyway.
* **Accounting** — hits, misses, writes, stale skips, quarantined
  entries, and the simulated wall-clock a hit avoided re-paying are all
  counted on the store instance, for campaign reports and bench session
  summaries.
* **Index hook** — unless constructed with ``index=False``, every ``put``
  also upserts one row into the SQLite index maintained beside the blobs
  (``<root>/index.sqlite``, see :mod:`repro.results.db`), so the queryable
  view of a shared store stays fresh without a separate sync pass. Index
  trouble never fails a put: the blobs are the source of truth and the
  index can always be rebuilt with ``repro-dbp results index``.

``STORE_VERSION`` is the code-version salt in every key: bump it whenever a
change alters simulation results so stale entries can never be served.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..core.integration import get_approach
from ..metrics import MetricSummary
from ..sim.runner import RunResult, WorkloadRunMetrics
from ..sim.system import SystemResult, ThreadResult

#: Salt hashed into every key. Bump on any change that alters what a
#: simulation computes, so old entries become unreachable rather than wrong.
#: 2: independent scheduler-quantum/policy-epoch cadences; migration traffic
#:    excluded from per-thread accounting; read latency measured at data
#:    return (CL + tBURST included).
STORE_VERSION = 2


# ---------------------------------------------------------------------------
# Keys.
# ---------------------------------------------------------------------------
def _canonical(doc: object) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), default=repr)


def run_key(
    config: SystemConfig,
    apps: Sequence[str],
    approach: str,
    *,
    seed: int,
    horizon: int,
    target_insts: int,
    ahead_limit: int = 8192,
    validate: bool = False,
    trace_digests: Optional[Mapping[str, str]] = None,
) -> str:
    """Content hash addressing one (config, apps, approach, seed, horizon) run.

    The approach is resolved through the registry so the key binds the
    *resolved* policy and scheduler (names and parameters), not just the
    label: two registrations sharing a label can never collide.

    ``trace_digests`` maps library-trace app names to their
    :attr:`~repro.cpu.trace.Trace.digest`. Library traces are *not* pure
    functions of (name, seed, target_insts) — the file behind a name can
    change — so their content digests must be part of the address. The
    field is folded in only when non-empty, which leaves every
    all-synthetic key (and the results already stored under it) untouched.
    """
    spec = get_approach(approach)
    doc = {
        "store_version": STORE_VERSION,
        "config": dataclasses.asdict(config),
        "apps": list(apps),
        "approach": {
            "name": spec.name,
            "policy": spec.policy,
            "policy_params": dict(spec.policy_params),
            "scheduler": spec.scheduler,
            "scheduler_params": dict(spec.scheduler_params),
        },
        "seed": seed,
        "horizon": horizon,
        "target_insts": target_insts,
        "ahead_limit": ahead_limit,
        "validate": bool(validate),
    }
    if trace_digests:
        doc["library_traces"] = {
            str(app): str(digest)
            for app, digest in dict(trace_digests).items()
        }
    return hashlib.sha256(_canonical(doc).encode("utf-8")).hexdigest()


def runner_fingerprint(
    config: SystemConfig,
    *,
    seed: int,
    horizon: int,
    target_insts: int,
    ahead_limit: int = 8192,
    validate: bool = False,
) -> str:
    """Hash of everything a Runner needs besides (apps, approach).

    Campaign workers key their process-local Runner cache on this, so runs
    sharing a configuration reuse traces and alone-run baselines.
    """
    doc = {
        "store_version": STORE_VERSION,
        "config": dataclasses.asdict(config),
        "seed": seed,
        "horizon": horizon,
        "target_insts": target_insts,
        "ahead_limit": ahead_limit,
        "validate": bool(validate),
    }
    return hashlib.sha256(_canonical(doc).encode("utf-8")).hexdigest()


def default_store_dir() -> Path:
    """Where results persist by default.

    ``REPRO_STORE`` overrides; otherwise ``benchmarks/results/store`` in a
    source checkout, falling back to ``~/.cache/repro-dbp/store`` for
    installed copies.
    """
    env = os.environ.get("REPRO_STORE")
    if env:
        return Path(env)
    root = Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root / "benchmarks" / "results" / "store"
    return Path.home() / ".cache" / "repro-dbp" / "store"


# ---------------------------------------------------------------------------
# RunResult <-> JSON codec.
# ---------------------------------------------------------------------------
def encode_run_result(result: RunResult) -> Dict[str, object]:
    """A JSON-encodable document holding the complete RunResult."""
    metrics = result.metrics
    system = result.system
    return {
        "metrics": {
            "mix": metrics.mix,
            "approach": metrics.approach,
            "apps": list(metrics.apps),
            "summary": {
                "weighted_speedup": metrics.summary.weighted_speedup,
                "harmonic_speedup": metrics.summary.harmonic_speedup,
                "max_slowdown": metrics.summary.max_slowdown,
            },
            "slowdowns": {str(t): s for t, s in metrics.slowdowns.items()},
        },
        "system": {
            "horizon": system.horizon,
            "threads": {
                str(t): dataclasses.asdict(thread)
                for t, thread in system.threads.items()
            },
            "total_commands": system.total_commands,
            "total_refreshes": system.total_refreshes,
            "pages_migrated": system.pages_migrated,
            "engine_events": system.engine_events,
            "bus_utilization": {
                str(c): u for c, u in system.bus_utilization.items()
            },
        },
        "alone_ipcs": {str(t): v for t, v in result.alone_ipcs.items()},
        "shared_ipcs": {str(t): v for t, v in result.shared_ipcs.items()},
        "telemetry": result.telemetry,
        "metrics_snapshot": result.metrics_snapshot,
    }


def result_digest(result: RunResult) -> str:
    """Content hash of a RunResult's canonical JSON encoding.

    Two runs whose digests match produced bit-identical metrics, thread
    accounting, and telemetry — the fidelity check the trace-library
    round-trip tests and the CI smoke job rely on.
    """
    doc = encode_run_result(result)
    return hashlib.sha256(_canonical(doc).encode("utf-8")).hexdigest()


def decode_run_result(doc: Dict[str, object]) -> RunResult:
    """Rebuild a RunResult from :func:`encode_run_result` output.

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed input;
    the store turns those into quarantine.
    """
    m = doc["metrics"]
    summary = MetricSummary(
        weighted_speedup=float(m["summary"]["weighted_speedup"]),
        harmonic_speedup=float(m["summary"]["harmonic_speedup"]),
        max_slowdown=float(m["summary"]["max_slowdown"]),
    )
    metrics = WorkloadRunMetrics(
        mix=m["mix"],
        approach=m["approach"],
        summary=summary,
        slowdowns={int(t): float(s) for t, s in m["slowdowns"].items()},
        apps=tuple(m["apps"]),
    )
    s = doc["system"]
    system = SystemResult(
        horizon=int(s["horizon"]),
        threads={
            int(t): ThreadResult(**thread) for t, thread in s["threads"].items()
        },
        total_commands=int(s["total_commands"]),
        total_refreshes=int(s["total_refreshes"]),
        pages_migrated=int(s["pages_migrated"]),
        engine_events=int(s["engine_events"]),
        bus_utilization={
            int(c): float(u) for c, u in s["bus_utilization"].items()
        },
    )
    return RunResult(
        metrics=metrics,
        system=system,
        alone_ipcs={int(t): float(v) for t, v in doc["alone_ipcs"].items()},
        shared_ipcs={int(t): float(v) for t, v in doc["shared_ipcs"].items()},
        telemetry=doc.get("telemetry"),
        metrics_snapshot=doc.get("metrics_snapshot"),
    )


# ---------------------------------------------------------------------------
# The store.
# ---------------------------------------------------------------------------
@dataclass
class StoreStats:
    """Accounting for one store handle (process-local)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    #: Readable entries skipped because they carry another STORE_VERSION.
    #: Distinct from ``corrupt``: stale entries are well-formed and stay
    #: on disk; malformed ones are quarantined.
    stale: int = 0
    #: Put-time index upserts that failed (the blob still persisted).
    index_errors: int = 0
    #: Simulated-run wall-clock seconds that hits avoided re-paying.
    wall_saved: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "stale": self.stale,
            "index_errors": self.index_errors,
            "wall_saved": round(self.wall_saved, 3),
        }


class ResultStore:
    """Content-addressed run results on disk (safe for concurrent writers).

    With ``index`` (the default) every put also upserts into the SQLite
    index colocated with the blobs; pass ``index=False`` for a read-only
    or index-free handle (e.g. when a sync pass owns the index).
    """

    def __init__(self, root, index: bool = True) -> None:
        self.root = Path(root)
        self.stats = StoreStats()
        self.index_enabled = index
        self._index = None

    def path_for(self, key: str) -> Path:
        """Entry path; two-character sharding keeps directories small."""
        return self.root / key[:2] / f"{key}.json"

    def index_path(self) -> Path:
        """Where this store's SQLite index lives (whether or not it exists)."""
        from ..results.db import index_path_for

        return index_path_for(self.root)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Tuple[RunResult, float]]:
        """The stored (result, original wall-clock) for ``key``, or None.

        Counts a hit or miss. A malformed entry (undecodable JSON, wrong
        key, broken result document) is quarantined to ``<entry>.corrupt``
        and counted as corrupt; a well-formed entry written by a different
        ``STORE_VERSION`` is merely counted stale and left in place — the
        recompute will overwrite the same path.
        """
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            # Decode inside the guard: a bit-flipped blob can be invalid
            # UTF-8 just as easily as invalid JSON, and both must
            # quarantine rather than crash the campaign's cache scan.
            doc = json.loads(raw.decode("utf-8"))
            if doc.get("key") != key:
                raise ValueError("entry key does not match its path")
            version = doc.get("version")
            if version != STORE_VERSION:
                self.stats.stale += 1
                self.stats.misses += 1
                return None
            result = decode_run_result(doc["result"])
            wall_clock = float(doc.get("wall_clock", 0.0))
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.wall_saved += wall_clock
        return result, wall_clock

    def put(
        self,
        key: str,
        result: RunResult,
        wall_clock: float,
        describe: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Persist one run atomically; last concurrent writer wins."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "version": STORE_VERSION,
            "key": key,
            "spec": describe or {},
            "wall_clock": wall_clock,
            "result": encode_run_result(result),
        }
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, path)
        self.stats.writes += 1
        self._index_put(doc, path)
        return path

    def _index_put(self, doc: Dict[str, object], path: Path) -> None:
        """Upsert the put into the colocated index; never fail the put."""
        if not self.index_enabled:
            return
        try:
            if self._index is None:
                from ..results.db import ResultIndex

                self._index = ResultIndex(self.index_path())
            self._index.upsert_doc(
                doc, mtime=path.stat().st_mtime, source="put"
            )
        except (OSError, sqlite3.Error, ValueError, KeyError, TypeError):
            # A broken/contended index must not lose a finished simulation;
            # `results index` rebuilds the rows from the blob later.
            self.stats.index_errors += 1

    # ------------------------------------------------------------------
    # Failure records (the supervisor's forensics; see campaign.failures).
    # They live under ``failures/<shard>/<key>.json`` — three path levels,
    # so the two-level ``*/*.json`` result-blob globs never see them.
    # ------------------------------------------------------------------
    def failure_path_for(self, key: str) -> Path:
        return self.root / "failures" / key[:2] / f"{key}.json"

    def put_failure(self, key: str, doc: Dict[str, object]) -> Path:
        """Persist one failure record atomically (same contract as put)."""
        path = self.failure_path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, path)
        return path

    def get_failure(self, key: str) -> Optional[Dict[str, object]]:
        """The persisted failure record for ``key``, or None.

        An unreadable record returns None rather than raising: failure
        records are forensics, never inputs to a simulation.
        """
        try:
            doc = json.loads(self.failure_path_for(key).read_text())
        except (OSError, ValueError):
            return None
        return doc if isinstance(doc, dict) else None

    def clear_failure(self, key: str) -> None:
        """Drop the failure record for ``key`` (the spec now has a result)."""
        try:
            self.failure_path_for(key).unlink()
        except OSError:
            pass

    def iter_failures(self) -> Iterator[Tuple[str, Dict[str, object]]]:
        """Every readable failure record on disk as (key, document)."""
        root = self.root / "failures"
        if not root.is_dir():
            return
        for path in sorted(root.glob("*/*.json")):
            try:
                doc = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(doc, dict):
                yield path.stem, doc

    # ------------------------------------------------------------------
    # Entry iteration (the index's sync feed and the store CLI).
    # ------------------------------------------------------------------
    def iter_blobs(self) -> Iterator[Tuple[str, Path]]:
        """Every entry on disk as (key, path), without decoding."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            yield path.stem, path

    def load_doc(self, path) -> Dict[str, object]:
        """The full JSON document of one entry.

        Raises ``OSError`` on unreadable files and ``ValueError`` on
        undecodable JSON; never quarantines (reading is not serving).
        """
        doc = json.loads(Path(path).read_text())
        if not isinstance(doc, dict):
            raise ValueError(f"store entry {path} is not a JSON object")
        return doc

    def quarantined_paths(self) -> List[Path]:
        """Every ``.corrupt``-quarantined entry on disk."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.corrupt"))

    def orphaned_tmp_paths(self) -> List[Path]:
        """Leftover ``.tmp.<pid>`` files from writers that died mid-put."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json.tmp.*"))

    def stale_paths(self) -> List[Path]:
        """Entries whose document version differs from STORE_VERSION.

        Reads every blob — O(store); meant for ``store gc --stale``, not
        hot paths. Malformed entries are not reported here (they are
        ``gc``'s quarantine listing's business once ``get`` renames them).
        """
        out: List[Path] = []
        for _key, path in self.iter_blobs():
            try:
                doc = self.load_doc(path)
            except (OSError, ValueError):
                continue
            if doc.get("version") != STORE_VERSION:
                out.append(path)
        return out

    def disk_stats(self) -> Dict[str, object]:
        """Disk-level accounting: entry/quarantine/tmp counts and bytes."""
        entries = quarantined = tmp = 0
        entry_bytes = quarantined_bytes = 0
        for _key, path in self.iter_blobs():
            entries += 1
            entry_bytes += _size_of(path)
        for path in self.quarantined_paths():
            quarantined += 1
            quarantined_bytes += _size_of(path)
        tmp = len(self.orphaned_tmp_paths())
        index_path = self.index_path()
        return {
            "root": str(self.root),
            "entries": entries,
            "entry_bytes": entry_bytes,
            "quarantined": quarantined,
            "quarantined_bytes": quarantined_bytes,
            "tmp_files": tmp,
            "index_exists": index_path.is_file(),
            "index_bytes": _size_of(index_path),
        }

    def purge_quarantined(self) -> Tuple[int, int]:
        """Delete every quarantined entry; returns (files, bytes freed)."""
        return _unlink_all(self.quarantined_paths())

    def purge_orphaned_tmp(self) -> Tuple[int, int]:
        """Delete leftover temp files; returns (files, bytes freed)."""
        return _unlink_all(self.orphaned_tmp_paths())

    def purge_stale(self) -> Tuple[int, int]:
        """Delete other-version entries; returns (files, bytes freed)."""
        return _unlink_all(self.stale_paths())

    # ------------------------------------------------------------------
    def _quarantine(self, path: Path) -> None:
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:  # pragma: no cover - raced or read-only store
            pass

    def entry_count(self) -> int:
        """Number of valid-looking entries on disk (no decode attempted)."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


def _size_of(path: Path) -> int:
    try:
        return path.stat().st_size
    except OSError:  # pragma: no cover - raced with a concurrent gc
        return 0


def _unlink_all(paths: Sequence[Path]) -> Tuple[int, int]:
    count = freed = 0
    for path in paths:
        size = _size_of(path)
        try:
            path.unlink()
        except OSError:  # pragma: no cover - raced or read-only store
            continue
        count += 1
        freed += size
    return count, freed
