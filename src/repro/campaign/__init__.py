"""Experiment-campaign subsystem: plan, execute, persist, report.

The reconstructed evaluation is a grid of fully independent
(mix x approach x seed x horizon) simulations. This package turns such a
grid into a *campaign*:

* :mod:`~repro.campaign.spec` **plans** — expands a
  :class:`CampaignSpec` into picklable :class:`RunSpec` cells (approaches
  travel by registry name; workers rebuild the policies);
* :mod:`~repro.campaign.executor` **executes** — fans the plan out over a
  process pool with bounded retries, per-run timeouts, and graceful
  serial degradation;
* :mod:`~repro.campaign.store` **persists** — a content-addressed
  :class:`ResultStore` under ``benchmarks/results/store/`` makes re-runs
  free and interrupted campaigns resumable;
* :mod:`~repro.campaign.progress` **reports** — per-run progress with ETA
  and the final table/summary.

Entry points: :func:`run_campaign` for scripts and the
``repro-dbp campaign`` CLI; :func:`sweep_metrics` for the experiment
catalog's sweeps.
"""

from .executor import (
    CampaignResult,
    RunOutcome,
    RunTimeoutError,
    execute,
    execute_one,
)
from .failures import (
    FailureAttempt,
    FailureClass,
    FailureRecord,
    classify_failure,
)
from .api import run_campaign, sweep_metrics
from .progress import ProgressPrinter, aggregate_telemetry, render_report
from .spec import DEFAULT_APPROACHES, CampaignSpec, RunSpec, plan_sweep
from .store import (
    STORE_VERSION,
    ResultStore,
    StoreStats,
    default_store_dir,
    run_key,
    runner_fingerprint,
)

__all__ = [
    "CampaignSpec",
    "RunSpec",
    "plan_sweep",
    "DEFAULT_APPROACHES",
    "CampaignResult",
    "RunOutcome",
    "RunTimeoutError",
    "execute",
    "execute_one",
    "FailureAttempt",
    "FailureClass",
    "FailureRecord",
    "classify_failure",
    "run_campaign",
    "sweep_metrics",
    "ProgressPrinter",
    "aggregate_telemetry",
    "render_report",
    "ResultStore",
    "StoreStats",
    "STORE_VERSION",
    "default_store_dir",
    "run_key",
    "runner_fingerprint",
]
