"""Supervised parallel campaign execution over ``concurrent.futures``.

The executor turns a list of :class:`~repro.campaign.spec.RunSpec` into
:class:`RunOutcome`s under a supervisor that guarantees *no spec is ever
lost silently*: every planned run settles as executed, cached, failed, or
explicitly quarantined — the latter two with a structured
:class:`~repro.campaign.failures.FailureRecord` persisted into the result
store.

Supervision rules (see :mod:`repro.campaign.failures` for the taxonomy):

* runs already in the :class:`~repro.campaign.store.ResultStore` are served
  from disk (``status="cached"``) without touching a worker;
* the rest fan out over a ``ProcessPoolExecutor``; each worker keeps a
  process-local Runner per configuration fingerprint and persists its
  result to the store *before* returning, so a campaign killed mid-flight
  resumes from everything that finished;
* a failed attempt is classified: **transient** errors and **timeouts**
  consume one unit of the spec's bounded retry budget and requeue with
  exponential backoff; **deterministic** errors are retried once to
  confirm and then *quarantine* the spec (a poison spec must not burn the
  campaign's wall-clock); a **worker crash** (``BrokenProcessPool``) is an
  infrastructure failure — the pool is respawned and every in-flight spec
  requeues *without* being charged, since innocents die with the pool;
* a spec repeatedly present when the pool dies is itself quarantined after
  ``max_pool_respawns`` losses, and a pool that keeps dying with no
  progress at all degrades the remainder to serial in-process execution;
* with ``safepoint_every``/``checkpoint_dir`` set, workers checkpoint
  mid-run state periodically and a retried spec *resumes from its last
  checkpoint* — resumed results are bit-identical to uninterrupted ones
  (pinned by the kernel-golden checkpoint grid);
* per-run timeouts are enforced with ``SIGALRM`` where possible and fall
  back to a watchdog thread raising an async exception elsewhere, so a
  deadline is never silently unenforced;
* when ``jobs=1``, or the platform cannot provide a process pool, the whole
  plan runs serially in-process under the same supervision rules — same
  code path a worker runs, so metrics are bit-identical either way.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import signal
import threading
import time
import traceback as traceback_module
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..sim.runner import RunResult
from ..telemetry.spans import (
    SpanTracer,
    install_tracer,
    merge_trace_files,
    now_us,
    write_trace_file,
)
from .failures import FailureAttempt, FailureClass, FailureRecord, classify_failure
from .spec import RunSpec
from .store import ResultStore

#: Called after every settled run: (outcome, done_count, total_count).
ProgressFn = Callable[["RunOutcome", int, int], None]


class RunTimeoutError(ReproError):
    """A run exceeded the campaign's per-run timeout."""

    def __str__(self) -> str:
        # The watchdog injects this class via PyThreadState_SetAsyncExc,
        # which instantiates it with no arguments — failure records must
        # still read meaningfully, not "RunTimeoutError: ".
        return super().__str__() or "per-run timeout expired"


@dataclass
class RunOutcome:
    """What happened to one planned run."""

    spec: RunSpec
    status: str  # "ok" | "cached" | "failed" | "quarantined"
    result: Optional[RunResult] = None
    error: str = ""
    wall_clock: float = 0.0
    attempts: int = 0
    #: Structured failure history (also persisted into the store) when the
    #: run failed, was quarantined, or recovered after failed attempts.
    failure: Optional[FailureRecord] = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class CampaignResult:
    """Every outcome of one executed plan, in plan order."""

    outcomes: List[RunOutcome] = field(default_factory=list)
    wall_clock: float = 0.0
    #: Parent-observed seconds spent on attempts that ended in a failure.
    time_lost_to_faults: float = 0.0
    #: Times the worker pool had to be rebuilt after a worker death.
    pool_respawns: int = 0

    def with_status(self, status: str) -> List[RunOutcome]:
        return [o for o in self.outcomes if o.status == status]

    @property
    def executed(self) -> List[RunOutcome]:
        return self.with_status("ok")

    @property
    def cached(self) -> List[RunOutcome]:
        return self.with_status("cached")

    @property
    def failed(self) -> List[RunOutcome]:
        return self.with_status("failed")

    @property
    def quarantined(self) -> List[RunOutcome]:
        return self.with_status("quarantined")

    @property
    def unresolved(self) -> List[RunOutcome]:
        """Outcomes that neither produced a result nor settled a failure
        record — always empty under the supervisor's no-silent-loss
        guarantee; exposed so chaos tests can assert exactly that."""
        return [
            o
            for o in self.outcomes
            if not o.ok and o.failure is None
        ]

    @property
    def cache_hit_rate(self) -> float:
        return len(self.cached) / len(self.outcomes) if self.outcomes else 0.0


# ---------------------------------------------------------------------------
# Worker side. Everything here must be importable (top-level) and picklable.
# ---------------------------------------------------------------------------
_WORKER_RUNNERS: Dict[object, object] = {}
_WORKER_STORES: Dict[str, ResultStore] = {}


def _runner_for(
    spec: RunSpec,
    safepoint_every: Optional[int] = None,
    safepoint_dir: Optional[str] = None,
    submission: int = 1,
):
    """A process-local Runner matching the spec's scope (cached)."""
    from ..sim.runner import Runner
    from ..telemetry import TelemetryConfig

    telemetry = getattr(spec, "telemetry", False)
    key = (spec.runner_key(), telemetry)
    runner = _WORKER_RUNNERS.get(key)
    if runner is None:
        runner = Runner(
            config=spec.config,
            horizon=spec.horizon,
            seed=spec.seed,
            target_insts=spec.target_insts,
            validate=spec.validate,
            ahead_limit=spec.ahead_limit,
            telemetry=TelemetryConfig() if telemetry else None,
        )
        _WORKER_RUNNERS[key] = runner
    # Safepoint policy is per-campaign, not part of the runner's scope
    # (it never changes results), so refresh it on every hand-off.
    runner.safepoint_every = safepoint_every
    runner.safepoint_dir = safepoint_dir
    runner.fault_attempt = submission
    return runner


def _store_for(store_root: str) -> ResultStore:
    store = _WORKER_STORES.get(store_root)
    if store is None:
        store = ResultStore(store_root)
        _WORKER_STORES[store_root] = store
    return store


def execute_one(
    spec: RunSpec,
    submission: int = 1,
    safepoint_every: Optional[int] = None,
    safepoint_dir: Optional[str] = None,
) -> Tuple[RunResult, float]:
    """Run one spec in this process; returns (result, wall-clock seconds)."""
    from ..faults import maybe_fire

    runner = _runner_for(
        spec, safepoint_every, safepoint_dir, submission=submission
    )
    started = time.perf_counter()
    # Chaos harness hook: crash/hang/raise exactly like a faulty run would,
    # inside the timeout scope so injected hangs test the deadline too.
    maybe_fire("worker.run", key=spec.label, attempt=submission)
    result = runner.run_apps(
        list(spec.apps), spec.approach, mix_name=spec.mix_name
    )
    return result, time.perf_counter() - started


#: True only while a SIGALRM-enforced run is in flight. The repeating
#: interval timer means an alarm can already be queued for delivery at the
#: instant the timeout scope cancels it; that signal then lands *outside*
#: the scope — in the supervisor's settle path — where an unguarded raise
#: would abort the whole campaign. The handler checks this flag and turns
#: late deliveries into no-ops.
_ALARM_ARMED = False


def _alarm_handler(signum, frame):  # pragma: no cover - timing-dependent
    if _ALARM_ARMED:
        raise RunTimeoutError("per-run timeout expired")


def _async_raise(thread_id: int) -> None:
    """Raise RunTimeoutError asynchronously in ``thread_id``."""
    ctypes.pythonapi.PyThreadState_SetAsyncExc(
        ctypes.c_ulong(thread_id), ctypes.py_object(RunTimeoutError)
    )


class _Watchdog:
    """Deadline enforcement for threads SIGALRM cannot reach.

    A daemon thread that, once the deadline passes, injects
    :class:`RunTimeoutError` into the target thread via
    ``PyThreadState_SetAsyncExc`` — re-injecting every 50 ms until
    cancelled, in case the first lands in a frame that swallows it.
    """

    def __init__(self, timeout: float, thread_id: int) -> None:
        self._deadline = time.monotonic() + timeout
        self._thread_id = thread_id
        self._cancel = threading.Event()
        self._thread = threading.Thread(target=self._watch, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._cancel.set()
        self._thread.join(timeout=2.0)
        # An injection may still be pending on the target thread; a NULL
        # exc clears it so it cannot detonate in the caller after the
        # timeout scope has exited (mirrors the SIGALRM disarm flag).
        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(self._thread_id), None
        )

    def _watch(self) -> None:
        while not self._cancel.wait(0.05):
            if time.monotonic() < self._deadline:
                continue
            if self._cancel.is_set():
                return
            _async_raise(self._thread_id)


def _execute_with_timeout(
    spec: RunSpec,
    timeout: Optional[float],
    submission: int = 1,
    safepoint_every: Optional[int] = None,
    safepoint_dir: Optional[str] = None,
) -> Tuple[RunResult, float]:
    """Run one spec under a hard deadline.

    On a POSIX main thread the deadline is a repeating ``SIGALRM`` timer;
    anywhere else (Windows, or a caller driving the executor from a
    non-main thread) it falls back to a watchdog thread, with a warning
    naming the active mechanism — the timeout is never silently dropped.
    """
    if not timeout:
        return execute_one(spec, submission, safepoint_every, safepoint_dir)
    if (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):
        global _ALARM_ARMED
        signal.signal(signal.SIGALRM, _alarm_handler)
        # Repeating interval: if the first alarm lands while the interpreter
        # is inside a C-level callback that swallows exceptions (e.g. a GC
        # hook), the timeout would otherwise be silently lost. A re-firing
        # timer guarantees a later alarm reaches normal bytecode.
        _ALARM_ARMED = True
        signal.setitimer(signal.ITIMER_REAL, timeout, min(timeout, 0.05))
        try:
            return execute_one(
                spec, submission, safepoint_every, safepoint_dir
            )
        finally:
            # Disarm BEFORE cancelling: a signal queued in the gap is then
            # ignored by the handler instead of detonating in the caller.
            _ALARM_ARMED = False
            signal.setitimer(signal.ITIMER_REAL, 0)
    warnings.warn(
        "SIGALRM is unavailable off the POSIX main thread; enforcing the "
        f"{timeout}s per-run timeout with a watchdog thread "
        "(PyThreadState_SetAsyncExc)",
        RuntimeWarning,
        stacklevel=2,
    )
    watchdog = _Watchdog(timeout, threading.get_ident())
    watchdog.start()
    try:
        return execute_one(spec, submission, safepoint_every, safepoint_dir)
    finally:
        try:
            watchdog.stop()
        except RunTimeoutError:
            # A final injection landed inside stop() itself; the deadline
            # already did its job, don't let the echo escape the scope.
            pass


def _span_part_path(span_dir: str, spec: RunSpec, submission: int) -> str:
    """Unique per-attempt trace-part filename inside ``span_dir``."""
    digest = hashlib.sha256(spec.label.encode("utf-8")).hexdigest()[:8]
    safe = "".join(
        c if c.isalnum() or c in "-_+." else "_" for c in spec.label
    )[:40]
    return os.path.join(
        span_dir, f"{safe}-{digest}-s{submission}-p{os.getpid()}.json"
    )


def _worker(
    spec: RunSpec,
    store_root: Optional[str],
    timeout: Optional[float],
    submission: int = 1,
    fault_plan: Optional[Dict[str, object]] = None,
    safepoint_every: Optional[int] = None,
    safepoint_dir: Optional[str] = None,
    span_dir: Optional[str] = None,
) -> Tuple[RunResult, float]:
    """Pool entry point: run, persist to the store, return the result."""
    if fault_plan is not None:
        from ..faults import FaultPlan, install_plan

        install_plan(FaultPlan.from_doc(fault_plan))
    tracer = previous_tracer = None
    if span_dir is not None:
        # Per-attempt tracer: the Runner's span sites pick it up via
        # current_tracer(). The previous tracer is restored in the
        # finally so the serial path hands the supervisor its own
        # tracer back. A worker that dies mid-attempt (SIGKILL fault)
        # never writes its part file; the merge skips the hole and the
        # supervisor's lane still shows the attempt.
        tracer = SpanTracer(f"campaign-worker pid={os.getpid()}")
        previous_tracer = install_tracer(tracer)
    try:
        result, wall = _execute_with_timeout(
            spec, timeout, submission, safepoint_every, safepoint_dir
        )
        if store_root is not None:
            from ..faults import maybe_fire

            store = _store_for(store_root)
            key = spec.key()
            store.put(key, result, wall, describe=_describe(spec, result))
            # Chaos harness hook: damage the just-written blob, as a dying
            # disk or torn write would. The store's digest/decode checks
            # must catch it on the next read and quarantine rather than
            # serve garbage.
            maybe_fire(
                "store.put",
                key=spec.label,
                attempt=submission,
                path=store.path_for(key),
            )
    finally:
        if tracer is not None:
            install_tracer(previous_tracer)
            try:
                tracer.write(_span_part_path(span_dir, spec, submission))
            except OSError:
                pass  # tracing must never fail the run itself
    return result, wall


def _describe(spec: RunSpec, result: Optional[RunResult] = None) -> Dict[str, object]:
    doc: Dict[str, object] = {
        "mix": spec.mix_name or "+".join(spec.apps),
        "apps": list(spec.apps),
        "approach": spec.approach,
        "seed": spec.seed,
        "horizon": spec.horizon,
        "target_insts": spec.target_insts,
    }
    if spec.trace_digests:
        doc["trace_digests"] = dict(spec.trace_digests)
    if result is not None and result.telemetry is not None:
        doc["telemetry"] = result.telemetry
    return doc


# ---------------------------------------------------------------------------
# Parent side: the supervisor.
# ---------------------------------------------------------------------------
def _safe_key(spec: RunSpec) -> str:
    """``spec.key()``, resilient to specs whose key cannot be computed.

    An unknown approach makes ``key()`` itself raise (the registry lookup
    fails) — exactly the kind of spec that ends up needing a failure
    record, so the record falls back to hashing the label.
    """
    import hashlib

    try:
        return spec.key()
    except Exception:
        digest = hashlib.sha256(spec.label.encode("utf-8")).hexdigest()
        return f"unresolvable-{digest[:32]}"


@dataclass
class _SpecState:
    """The supervisor's bookkeeping for one not-yet-settled spec."""

    index: int
    spec: RunSpec
    #: Budget-consuming attempts (charged at hand-off, refunded for
    #: infrastructure losses the spec is not responsible for).
    attempts: int = 0
    #: Total hand-offs to a worker, never refunded — this is what fault
    #: injectors key on, so an injected crash with ``times=2`` converges.
    submissions: int = 0
    infra_losses: int = 0
    det_failures: int = 0
    failures: List[FailureAttempt] = field(default_factory=list)
    #: Wall-clock µs of the first hand-off (span tracing only): the
    #: supervisor's "run" span opens here and closes when the spec settles.
    started_us: int = 0


class _Supervisor:
    """Shared retry/backoff/quarantine logic for both execution modes."""

    def __init__(
        self,
        specs: Sequence[RunSpec],
        outcomes: Dict[int, RunOutcome],
        total: int,
        store: Optional[ResultStore],
        retries: int,
        timeout: Optional[float],
        progress: Optional[ProgressFn],
        backoff: float,
        quarantine_after: int,
        max_pool_respawns: int,
        safepoint_every: Optional[int],
        checkpoint_dir: Optional[str],
        fault_plan_doc: Optional[Dict[str, object]],
        tracer: Optional[SpanTracer] = None,
        span_dir: Optional[str] = None,
    ) -> None:
        self.specs = specs
        self.outcomes = outcomes
        self.total = total
        self.store = store
        self.store_root = str(store.root) if store is not None else None
        self.retries = retries
        self.timeout = timeout
        self.progress = progress
        self.backoff = backoff
        self.quarantine_after = quarantine_after
        self.max_pool_respawns = max_pool_respawns
        self.safepoint_every = safepoint_every
        self.checkpoint_dir = checkpoint_dir
        self.fault_plan_doc = fault_plan_doc
        self.states: Dict[int, _SpecState] = {}
        self.time_lost = 0.0
        self.pool_respawns = 0
        self.tracer = tracer
        self.span_dir = span_dir

    # -- span tracing ----------------------------------------------------
    def _mark_handoff(self, st: _SpecState) -> None:
        if self.tracer is not None and not st.started_us:
            st.started_us = now_us()

    def _span_attempt(self, st: _SpecState, name: str, wall: float, **args):
        """Record one attempt retrospectively on the spec's virtual lane."""
        if self.tracer is None:
            return
        end = now_us()
        duration = max(int(wall * 1e6), 1)
        self.tracer.complete(
            name,
            end - duration,
            duration,
            lane=self.tracer.lane(st.spec.label),
            **args,
        )

    # -- state -----------------------------------------------------------
    def state(self, index: int) -> _SpecState:
        st = self.states.get(index)
        if st is None:
            st = _SpecState(index=index, spec=self.specs[index])
            self.states[index] = st
        return st

    # -- settling --------------------------------------------------------
    def _settle(self, index: int, outcome: RunOutcome) -> None:
        self.outcomes[index] = outcome
        if self.tracer is not None:
            st = self.states.get(index)
            if st is not None and st.started_us:
                self.tracer.complete(
                    "run",
                    st.started_us,
                    now_us() - st.started_us,
                    lane=self.tracer.lane(outcome.spec.label),
                    status=outcome.status,
                    attempts=outcome.attempts,
                )
        if self.progress:
            self.progress(outcome, len(self.outcomes), self.total)

    def settle_ok(self, index: int, result: RunResult, wall: float) -> None:
        st = self.state(index)
        spec = st.spec
        self._span_attempt(
            st, "attempt", wall, submission=st.submissions, outcome="ok"
        )
        record = None
        if st.failures:
            record = self._record(
                st,
                resolution="recovered",
                final_class=st.failures[-1].error_class,
                reason=f"succeeded on attempt {st.attempts}",
            )
            self._persist(record)
        elif self.store is not None:
            self.store.clear_failure(_safe_key(spec))
        self._settle(
            index,
            RunOutcome(
                spec,
                "ok",
                result,
                wall_clock=wall,
                attempts=max(1, st.attempts),
                failure=record,
            ),
        )

    def settle_failure(
        self, index: int, resolution: str, cls: FailureClass, reason: str
    ) -> None:
        st = self.state(index)
        record = self._record(
            st, resolution=resolution, final_class=cls.value, reason=reason
        )
        self._persist(record)
        self._settle(
            index,
            RunOutcome(
                st.spec,
                resolution,
                error=record.last_error or reason,
                attempts=st.attempts,
                failure=record,
            ),
        )

    def _record(
        self, st: _SpecState, resolution: str, final_class: str, reason: str
    ) -> FailureRecord:
        return FailureRecord(
            key=_safe_key(st.spec),
            label=st.spec.label,
            resolution=resolution,
            final_class=final_class,
            reason=reason,
            attempts=list(st.failures),
            time_lost=sum(f.wall_clock for f in st.failures),
        )

    def _persist(self, record: FailureRecord) -> None:
        if self.store is not None:
            self.store.put_failure(record.key, record.to_doc())

    # -- the supervision decision ---------------------------------------
    def handle_failure(
        self, index: int, error: BaseException, tb: str, wall: float
    ) -> Optional[float]:
        """Classify one failed attempt; returns the requeue delay in
        seconds, or None when the spec settled (failed/quarantined)."""
        st = self.state(index)
        cls = classify_failure(error)
        self.time_lost += wall
        st.failures.append(
            FailureAttempt(
                attempt=st.attempts,
                submission=st.submissions,
                error_class=cls.value,
                error_type=type(error).__name__,
                message=str(error),
                traceback=tb,
                wall_clock=wall,
                at=time.time(),
            )
        )
        if cls is FailureClass.INFRASTRUCTURE:
            # The worker died; the spec may be an innocent bystander of
            # another spec's crash, so its budget is refunded — but a spec
            # present at every pool death is the likely culprit.
            st.attempts -= 1
            st.infra_losses += 1
            if st.infra_losses > self.max_pool_respawns:
                self.settle_failure(
                    index,
                    "quarantined",
                    cls,
                    reason=(
                        f"worker process died {st.infra_losses} times "
                        f"while this spec was in flight"
                    ),
                )
                return None
            return 0.0
        if cls is FailureClass.DETERMINISTIC:
            st.det_failures += 1
            if st.det_failures >= self.quarantine_after:
                self.settle_failure(
                    index,
                    "quarantined",
                    cls,
                    reason=(
                        f"{st.det_failures} deterministic failures; "
                        f"retrying cannot succeed"
                    ),
                )
                return None
        if st.attempts >= self.retries + 1:
            self.settle_failure(
                index,
                "failed",
                cls,
                reason=f"retry budget exhausted after {st.attempts} attempts",
            )
            return None
        return self.backoff * (2 ** max(0, st.attempts - 1))

    def _after_failure(
        self,
        index: int,
        error: BaseException,
        wall: float,
        ready: List[int],
        delayed: Dict[int, float],
    ) -> None:
        tb = "".join(
            traceback_module.format_exception(
                type(error), error, error.__traceback__
            )
        )
        delay = self.handle_failure(index, error, tb, wall)
        self._span_attempt(
            self.state(index),
            "fault-retry",
            wall,
            submission=self.state(index).submissions,
            error=type(error).__name__,
            requeued=delay is not None,
        )
        if delay is None:
            return
        if delay <= 0:
            ready.append(index)
        else:
            delayed[index] = time.monotonic() + delay

    # -- serial mode -----------------------------------------------------
    def run_serial(self, pending: Sequence[int]) -> None:
        from ..faults import runtime as faults_runtime

        if self.store is not None and self.store_root is not None:
            # Reuse the caller's store handle so its hit/write accounting
            # reflects the serial path exactly as before.
            _WORKER_STORES.setdefault(self.store_root, self.store)
        ready: List[int] = list(pending)
        delayed: Dict[int, float] = {}
        try:
            while ready or delayed:
                now = time.monotonic()
                for index, at in sorted(delayed.items(), key=lambda kv: kv[1]):
                    if at <= now:
                        ready.append(index)
                        del delayed[index]
                if not ready:
                    time.sleep(
                        max(0.005, min(delayed.values()) - time.monotonic())
                    )
                    continue
                index = ready.pop(0)
                st = self.state(index)
                st.submissions += 1
                st.attempts += 1
                self._mark_handoff(st)
                started = time.monotonic()
                try:
                    result, wall = _worker(
                        self.specs[index],
                        self.store_root,
                        self.timeout,
                        st.submissions,
                        self.fault_plan_doc,
                        self.safepoint_every,
                        self.checkpoint_dir,
                        self.span_dir,
                    )
                except Exception as error:
                    self._after_failure(
                        index,
                        error,
                        time.monotonic() - started,
                        ready,
                        delayed,
                    )
                else:
                    self.settle_ok(index, result, wall)
        finally:
            if self.fault_plan_doc is not None:
                # _worker installed the plan into *this* process; drop it
                # so later campaigns (and the caller) run fault-free.
                faults_runtime.reset()

    # -- pooled mode -----------------------------------------------------
    def run_pooled(self, pending: Sequence[int], jobs: int) -> None:
        ready: List[int] = list(pending)
        delayed: Dict[int, float] = {}
        pool: Optional[ProcessPoolExecutor] = None
        #: future -> (spec index, monotonic hand-off time)
        futures: Dict[object, Tuple[int, float]] = {}
        consecutive_respawns = 0

        def degrade_to_serial() -> None:
            remaining = sorted(
                set(ready)
                | set(delayed)
                | {index for index, _ in futures.values()}
            )
            ready.clear()
            delayed.clear()
            futures.clear()
            self.run_serial(remaining)

        try:
            while ready or delayed or futures:
                now = time.monotonic()
                for index, at in sorted(delayed.items(), key=lambda kv: kv[1]):
                    if at <= now:
                        ready.append(index)
                        del delayed[index]
                if pool is None and ready:
                    try:
                        pool = ProcessPoolExecutor(
                            max_workers=min(jobs, max(1, len(ready)))
                        )
                    except (OSError, ValueError, RuntimeError):
                        # No process pool on this platform/sandbox: degrade
                        # to serial for everything still unfinished.
                        degrade_to_serial()
                        return
                while ready and pool is not None:
                    index = ready.pop(0)
                    st = self.state(index)
                    st.submissions += 1
                    st.attempts += 1
                    self._mark_handoff(st)
                    try:
                        future = pool.submit(
                            _worker,
                            self.specs[index],
                            self.store_root,
                            self.timeout,
                            st.submissions,
                            self.fault_plan_doc,
                            self.safepoint_every,
                            self.checkpoint_dir,
                            self.span_dir,
                        )
                    except BrokenProcessPool:
                        st.submissions -= 1
                        st.attempts -= 1
                        ready.insert(0, index)
                        break
                    futures[future] = (index, time.monotonic())
                if not futures:
                    if ready and pool is not None:
                        # Every submit bounced off a broken pool: respawn.
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = None
                        self.pool_respawns += 1
                        consecutive_respawns += 1
                        if consecutive_respawns > self.max_pool_respawns:
                            warnings.warn(
                                f"worker pool died {consecutive_respawns} "
                                f"times in a row; finishing the remaining "
                                f"runs serially",
                                RuntimeWarning,
                            )
                            degrade_to_serial()
                            return
                    elif delayed:
                        time.sleep(
                            max(
                                0.005,
                                min(delayed.values()) - time.monotonic(),
                            )
                        )
                    continue
                wait_timeout = None
                if delayed:
                    wait_timeout = max(
                        0.0, min(delayed.values()) - time.monotonic()
                    )
                done, _ = wait(
                    set(futures),
                    timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    index, handed_off = futures.pop(future)
                    wall = time.monotonic() - handed_off
                    try:
                        result, run_wall = future.result()
                    except BrokenProcessPool as error:
                        broken = True
                        self._after_failure(
                            index, error, wall, ready, delayed
                        )
                    except Exception as error:  # raised inside the worker
                        consecutive_respawns = 0
                        self._after_failure(
                            index, error, wall, ready, delayed
                        )
                    else:
                        consecutive_respawns = 0
                        self.settle_ok(index, result, run_wall)
                if broken:
                    # The pool is unusable; in-flight futures are lost too.
                    # None of them is charged — the crash may belong to any
                    # one of them, and innocents must not lose budget.
                    for future, (index, handed_off) in list(futures.items()):
                        self._after_failure(
                            index,
                            BrokenProcessPool("worker process died"),
                            time.monotonic() - handed_off,
                            ready,
                            delayed,
                        )
                    futures.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    self.pool_respawns += 1
                    consecutive_respawns += 1
                    if consecutive_respawns > self.max_pool_respawns:
                        warnings.warn(
                            f"worker pool died {consecutive_respawns} times "
                            f"in a row; finishing the remaining runs "
                            f"serially",
                            RuntimeWarning,
                        )
                        degrade_to_serial()
                        return
        finally:
            if pool is not None:
                pool.shutdown(wait=True)


def execute(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    retries: int = 1,
    timeout: Optional[float] = None,
    progress: Optional[ProgressFn] = None,
    backoff: float = 0.25,
    quarantine_after: int = 2,
    max_pool_respawns: int = 3,
    safepoint_every: Optional[int] = None,
    checkpoint_dir: Optional[object] = None,
    faults: Optional[object] = None,
    spans: Optional[object] = None,
) -> CampaignResult:
    """Execute a plan under supervision; never raises for individual runs.

    ``retries`` bounds *additional* budget-consuming attempts after the
    first, so the default reports a run as failed once it has failed twice
    (infrastructure losses are not charged). ``backoff`` is the base of the
    exponential requeue delay. ``quarantine_after`` deterministic failures
    quarantine a spec; ``max_pool_respawns`` bounds both one spec's
    tolerated worker deaths and consecutive no-progress pool respawns.
    ``safepoint_every`` (cycles) makes workers checkpoint into
    ``checkpoint_dir`` (default: ``<store>/checkpoints``) and retries
    resume from the last checkpoint. ``faults`` injects a deterministic
    :class:`~repro.faults.FaultPlan` into every worker (chaos testing).
    ``spans`` names a Chrome-trace JSON file; every worker writes its own
    span part file next to it and the supervisor merges them — with its
    own scheduling spans — into one cross-process timeline at the end.
    """
    started = time.perf_counter()
    started_us = now_us()
    tracer: Optional[SpanTracer] = None
    span_dir: Optional[str] = None
    if spans is not None:
        span_dir = str(spans) + ".parts"
        os.makedirs(span_dir, exist_ok=True)
        # Stale parts from an earlier campaign pointed at the same output
        # would pollute the merge; a part written this run replaces them.
        for stale in os.listdir(span_dir):
            if stale.endswith(".json"):
                try:
                    os.remove(os.path.join(span_dir, stale))
                except OSError:
                    pass
        tracer = SpanTracer("campaign-supervisor")
    total = len(specs)
    outcomes: Dict[int, RunOutcome] = {}
    pending: List[int] = []
    for index, spec in enumerate(specs):
        hit = store.get(spec.key()) if store is not None else None
        if hit is not None:
            result, original_wall = hit
            store.clear_failure(spec.key())
            outcomes[index] = RunOutcome(
                spec, "cached", result, wall_clock=original_wall
            )
            if tracer is not None:
                tracer.instant(
                    "run-cached", lane=tracer.lane(spec.label), index=index
                )
            if progress:
                progress(outcomes[index], len(outcomes), total)
        else:
            pending.append(index)

    checkpoint_dir_str: Optional[str] = None
    if safepoint_every is not None:
        if checkpoint_dir is None and store is not None:
            checkpoint_dir = Path(store.root) / "checkpoints"
        if checkpoint_dir is None:
            warnings.warn(
                "safepoint_every ignored: no checkpoint_dir and no store "
                "to derive one from",
                RuntimeWarning,
            )
            safepoint_every = None
        else:
            Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)
            checkpoint_dir_str = str(checkpoint_dir)

    fault_plan_doc = faults.to_doc() if faults is not None else None

    supervisor = _Supervisor(
        specs,
        outcomes,
        total,
        store,
        retries,
        timeout,
        progress,
        backoff,
        quarantine_after,
        max_pool_respawns,
        safepoint_every,
        checkpoint_dir_str,
        fault_plan_doc,
        tracer=tracer,
        span_dir=span_dir,
    )
    if pending:
        if jobs > 1:
            supervisor.run_pooled(pending, jobs)
        else:
            supervisor.run_serial(pending)

    if tracer is not None and spans is not None:
        tracer.complete(
            "campaign",
            started_us,
            now_us() - started_us,
            runs=total,
            cached=total - len(pending),
            jobs=jobs,
        )
        parts = sorted(
            os.path.join(span_dir, name)
            for name in os.listdir(span_dir)
            if name.endswith(".json")
        )
        # Missing/absent parts are expected: a SIGKILLed worker never
        # flushes its tracer. The supervisor's own spans still record
        # the failed attempt, so the timeline stays complete.
        merged = merge_trace_files(parts, extra=[tracer.to_chrome()])
        write_trace_file(str(spans), merged)
        for part in parts:
            try:
                os.remove(part)
            except OSError:
                pass
        try:
            os.rmdir(span_dir)
        except OSError:
            pass

    ordered = [outcomes[i] for i in sorted(outcomes)]
    return CampaignResult(
        outcomes=ordered,
        wall_clock=time.perf_counter() - started,
        time_lost_to_faults=supervisor.time_lost,
        pool_respawns=supervisor.pool_respawns,
    )
